"""Low-Latency Block Cipher (LLBC) used for DAPPER's secure row-group hashing.

DAPPER-S and DAPPER-H randomise the mapping from DRAM rows to row-group
counters with a small keyed block cipher over the row-address space (21 bits
for the 2M rows of one rank in the baseline system), in the spirit of the
four-round low-latency ciphers used by CEASER and CUBE (and of SCARF).

The functional requirements are:

* **bijective** over an arbitrary (possibly odd) bit width ``n``, so that the
  hashed address space is exactly the row address space and every hashed
  address can be decrypted back to the original row for mitigation;
* **keyed**, with a small per-round key that can be refreshed cheaply every
  reset period (12 us analysis point) or refresh window (32 ms);
* **fast**, because it runs on every simulated activation.

We implement a balanced/unbalanced 4-round Feistel network with an xorshift-
based round function.  Feistel networks are bijections for any split of the
block, which handles odd widths such as 21 bits naturally.
"""

from __future__ import annotations

from repro.crypto.prng import SplitMix64

_MASK64 = (1 << 64) - 1


def _round_function(value: int, key: int, width: int) -> int:
    """Non-linear keyed mixing of ``value`` (width bits) under ``key``."""
    x = (value ^ key) & _MASK64
    x = (x * 0x9E3779B97F4A7C15) & _MASK64
    x ^= x >> 29
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 32
    return x & ((1 << width) - 1)


class LowLatencyBlockCipher:
    """A 4-round keyed Feistel permutation over ``block_bits``-bit values."""

    DEFAULT_ROUNDS = 4

    def __init__(self, block_bits: int, seed: int, rounds: int = DEFAULT_ROUNDS):
        if block_bits < 2:
            raise ValueError("block_bits must be at least 2")
        if rounds < 2:
            raise ValueError("at least two rounds are required for mixing")
        self.block_bits = block_bits
        self.rounds = rounds
        self._left_bits = block_bits // 2
        self._right_bits = block_bits - self._left_bits
        self._left_mask = (1 << self._left_bits) - 1
        self._right_mask = (1 << self._right_bits) - 1
        self._keys: list[int] = []
        self._key_epoch = 0
        self._seeder = SplitMix64(seed)
        self.rekey()

    # ------------------------------------------------------------------ #
    # Key management
    # ------------------------------------------------------------------ #

    @property
    def key_epoch(self) -> int:
        """Number of times the cipher has been re-keyed."""
        return self._key_epoch

    @property
    def round_keys(self) -> tuple[int, ...]:
        return tuple(self._keys)

    def rekey(self) -> None:
        """Draw a fresh set of round keys (DAPPER re-keys every reset period)."""
        self._keys = [self._seeder.next() for _ in range(self.rounds)]
        self._key_epoch += 1

    # ------------------------------------------------------------------ #
    # Permutation
    # ------------------------------------------------------------------ #

    def encrypt(self, value: int) -> int:
        """Encrypt a ``block_bits``-bit value."""
        self._check_range(value)
        left = value >> self._right_bits
        right = value & self._right_mask
        for round_index in range(self.rounds):
            key = self._keys[round_index]
            if round_index % 2 == 0:
                # Even rounds modify the left half using the right half.
                left ^= _round_function(right, key, self._left_bits)
                left &= self._left_mask
            else:
                right ^= _round_function(left, key, self._right_bits)
                right &= self._right_mask
        return (left << self._right_bits) | right

    def decrypt(self, value: int) -> int:
        """Invert :meth:`encrypt`."""
        self._check_range(value)
        left = value >> self._right_bits
        right = value & self._right_mask
        for round_index in reversed(range(self.rounds)):
            key = self._keys[round_index]
            if round_index % 2 == 0:
                left ^= _round_function(right, key, self._left_bits)
                left &= self._left_mask
            else:
                right ^= _round_function(left, key, self._right_bits)
                right &= self._right_mask
        return (left << self._right_bits) | right

    def _check_range(self, value: int) -> None:
        if not 0 <= value < (1 << self.block_bits):
            raise ValueError(
                f"value {value} out of range for {self.block_bits}-bit block"
            )
