"""Cryptographic substrates used by DAPPER: a low-latency block cipher (LLBC)
and the pseudo-random number generator that supplies its round keys.
"""

from repro.crypto.llbc import LowLatencyBlockCipher
from repro.crypto.prng import SplitMix64, XorShift64

__all__ = ["LowLatencyBlockCipher", "SplitMix64", "XorShift64"]
