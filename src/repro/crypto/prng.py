"""Deterministic pseudo-random number generators.

The simulator must be fully deterministic (same seed, same result) and must
not depend on Python's global :mod:`random` state, so every component that
needs randomness owns one of these small generators.

``SplitMix64`` is used to derive independent sub-seeds (one per core, one per
tracker, one per key schedule); ``XorShift64`` is the fast per-component
stream generator.
"""

from __future__ import annotations

try:  # numpy accelerates block generation; everything works without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


_MASK64 = (1 << 64) - 1

#: xorshift64* output multiplier.
_XS_MULT = 0x2545F4914F6CDD1D

#: Lane count used by the vectorized block generator.  The GF(2) jump matrix
#: advances every lane by ``_LANES`` steps at once, so one vectorized step
#: yields ``_LANES`` outputs of the *sequential* stream.
_LANES = 8192

#: Block generation only pays off past this size (seeding the lanes costs
#: ``_LANES`` scalar steps); smaller requests use a tight scalar loop, which
#: is itself much faster than per-call next_u64.
_VECTOR_THRESHOLD = 8192


def _xs_step(x: int) -> int:
    """One xorshift64 state transition (no output multiply)."""
    x ^= x >> 12
    x ^= (x << 25) & _MASK64
    x ^= x >> 27
    return x


def _xs_matmul(a: list[int], b: list[int]) -> list[int]:
    """Compose two GF(2) 64x64 matrices stored column-wise as uint64 rows.

    ``a[i]`` is the image of basis vector ``1 << i``; the product maps
    ``v -> a(b(v))``.
    """
    out = []
    for column in b:
        acc = 0
        bit = 0
        while column:
            if column & 1:
                acc ^= a[bit]
            column >>= 1
            bit += 1
        out.append(acc)
    return out


def _xs_jump_matrix(steps: int) -> list[int]:
    """Matrix of ``steps`` xorshift64 state transitions over GF(2)."""
    single = [_xs_step(1 << i) for i in range(64)]
    result = [1 << i for i in range(64)]  # identity
    power = single
    while steps:
        if steps & 1:
            result = _xs_matmul(power, result)
        power = _xs_matmul(power, power)
        steps >>= 1
    return result


_JUMP_CACHE: dict[int, "object"] = {}


def _jump_rows(steps: int):
    """The jump matrix as a numpy uint64 array, cached per step count."""
    rows = _JUMP_CACHE.get(steps)
    if rows is None:
        rows = _np.array(_xs_jump_matrix(steps), dtype=_np.uint64)
        _JUMP_CACHE[steps] = rows
    return rows


class SplitMix64:
    """SplitMix64 generator, mainly used for seeding other generators."""

    def __init__(self, seed: int):
        self._state = seed & _MASK64

    def next(self) -> int:
        """Return the next 64-bit value."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return (z ^ (z >> 31)) & _MASK64

    def derive(self, label: int) -> int:
        """Derive a reproducible sub-seed for component ``label``."""
        fork = SplitMix64((self._state ^ (label * 0xA24BAED4963EE407)) & _MASK64)
        return fork.next()


class XorShift64:
    """xorshift64* generator: fast, deterministic, and good enough for
    address-pattern and sampling decisions inside the simulator.

    The generator exposes two equivalent views of the *same* output stream:

    * the classic scalar calls (:meth:`next_u64` and friends), and
    * block access via :meth:`reserve`/:meth:`consume`/:meth:`take`, which
      pregenerate outputs in bulk (vectorized with numpy when available).

    Pregenerated outputs are buffered and drained by the scalar calls first,
    so interleaving scalar and block consumers never changes the emitted
    sequence -- a block-mode consumer sees exactly the values a scalar loop
    would have seen.  Note that ``_state`` runs *ahead* of the emitted stream
    while buffered outputs remain.
    """

    def __init__(self, seed: int):
        self._state = (seed & _MASK64) or 0x1234_5678_9ABC_DEF1
        self._block = None
        self._block_pos = 0

    def next_u64(self) -> int:
        block = self._block
        if block is not None:
            pos = self._block_pos
            if pos < len(block):
                self._block_pos = pos + 1
                return int(block[pos])
            self._block = None
        x = self._state
        x ^= (x >> 12) & _MASK64
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._state = x & _MASK64
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    # -- block access ------------------------------------------------------

    def reserve(self, count: int):
        """Ensure ``count`` outputs are buffered; return ``(block, pos)``.

        ``block[pos:pos + count]`` holds the next ``count`` outputs of the
        stream (a numpy uint64 array when numpy is available, else a list).
        The outputs are *not* consumed; call :meth:`consume` once used.
        """
        block = self._block
        pos = self._block_pos
        remaining = (len(block) - pos) if block is not None else 0
        if remaining >= count:
            return block, pos
        fresh = self._generate(count - remaining)
        if remaining:
            leftover = block[pos:]
            if _np is not None and isinstance(block, _np.ndarray):
                fresh = _np.concatenate([leftover, fresh])
            else:
                fresh = list(leftover) + list(fresh)
        self._block = fresh
        self._block_pos = 0
        return fresh, 0

    def consume(self, count: int) -> None:
        """Mark ``count`` reserved outputs as emitted."""
        block = self._block
        available = (len(block) - self._block_pos) if block is not None else 0
        if count > available:
            raise ValueError(f"consume({count}) exceeds {available} buffered outputs")
        self._block_pos += count

    def take(self, count: int):
        """Return (and consume) the next ``count`` outputs as one block."""
        block, pos = self.reserve(count)
        self._block_pos = pos + count
        return block[pos:pos + count]

    def _generate(self, count: int):
        """Generate the next ``count``-or-more outputs, advancing ``_state``."""
        if _np is None or count < _VECTOR_THRESHOLD:
            return self._generate_scalar(count)
        return self._generate_vector(count)

    def _generate_scalar(self, count: int):
        x = self._state
        out = [0] * count
        for i in range(count):
            x ^= x >> 12
            x = (x ^ (x << 25)) & _MASK64
            x ^= x >> 27
            out[i] = (x * _XS_MULT) & _MASK64
        self._state = x
        if _np is not None:
            return _np.array(out, dtype=_np.uint64)
        return out

    def _generate_vector(self, count: int):
        # Lane i starts at state s_{i+1}; applying the T^LANES jump matrix to
        # every lane advances the whole front by _LANES sequential steps, so
        # each vectorized application yields _LANES outputs of the sequential
        # stream (outputs are states times the xorshift64* multiplier).
        steps = -(-count // _LANES)
        jump = _jump_rows(_LANES)
        x = self._state
        lane_states = [0] * _LANES
        for i in range(_LANES):
            x ^= x >> 12
            x = (x ^ (x << 25)) & _MASK64
            x ^= x >> 27
            lane_states[i] = x
        lanes = _np.array(lane_states, dtype=_np.uint64)
        mult = _np.uint64(_XS_MULT)
        one = _np.uint64(1)
        out = _np.empty(steps * _LANES, dtype=_np.uint64)
        out[:_LANES] = lanes * mult
        for j in range(1, steps):
            advanced = _np.zeros(_LANES, dtype=_np.uint64)
            for b in range(64):
                advanced ^= ((lanes >> _np.uint64(b)) & one) * jump[b]
            lanes = advanced
            out[j * _LANES:(j + 1) * _LANES] = lanes * mult
        self._state = int(lanes[-1])
        return out

    def next_float(self) -> float:
        """Uniform float in [0, 1)."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def next_below(self, bound: int) -> int:
        """Uniform integer in [0, bound)."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next_u64() % bound

    def next_bits(self, bits: int) -> int:
        """Uniform integer with the requested number of bits."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        value = 0
        remaining = bits
        while remaining > 0:
            take = min(remaining, 64)
            value = (value << take) | (self.next_u64() >> (64 - take))
            remaining -= take
        return value
