"""Deterministic pseudo-random number generators.

The simulator must be fully deterministic (same seed, same result) and must
not depend on Python's global :mod:`random` state, so every component that
needs randomness owns one of these small generators.

``SplitMix64`` is used to derive independent sub-seeds (one per core, one per
tracker, one per key schedule); ``XorShift64`` is the fast per-component
stream generator.
"""

from __future__ import annotations


_MASK64 = (1 << 64) - 1


class SplitMix64:
    """SplitMix64 generator, mainly used for seeding other generators."""

    def __init__(self, seed: int):
        self._state = seed & _MASK64

    def next(self) -> int:
        """Return the next 64-bit value."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return (z ^ (z >> 31)) & _MASK64

    def derive(self, label: int) -> int:
        """Derive a reproducible sub-seed for component ``label``."""
        fork = SplitMix64((self._state ^ (label * 0xA24BAED4963EE407)) & _MASK64)
        return fork.next()


class XorShift64:
    """xorshift64* generator: fast, deterministic, and good enough for
    address-pattern and sampling decisions inside the simulator."""

    def __init__(self, seed: int):
        self._state = (seed & _MASK64) or 0x1234_5678_9ABC_DEF1

    def next_u64(self) -> int:
        x = self._state
        x ^= (x >> 12) & _MASK64
        x ^= (x << 25) & _MASK64
        x ^= (x >> 27) & _MASK64
        self._state = x & _MASK64
        return (x * 0x2545F4914F6CDD1D) & _MASK64

    def next_float(self) -> float:
        """Uniform float in [0, 1)."""
        return (self.next_u64() >> 11) / float(1 << 53)

    def next_below(self, bound: int) -> int:
        """Uniform integer in [0, bound)."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        return self.next_u64() % bound

    def next_bits(self, bits: int) -> int:
        """Uniform integer with the requested number of bits."""
        if bits <= 0:
            raise ValueError("bits must be positive")
        value = 0
        remaining = bits
        while remaining > 0:
            take = min(remaining, 64)
            value = (value << take) | (self.next_u64() >> (64 - take))
            remaining -= take
        return value
