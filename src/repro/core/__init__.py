"""The paper's contribution: the DAPPER Perf-Attack-resilient RowHammer trackers.

* :class:`DapperSTracker` -- the single-hash template (Section V).
* :class:`DapperHTracker` -- the full design with double hashing, per-bank
  bit-vectors and cross-table reset counters (Section VI).
"""

from repro.core.dapper_s import DapperSTracker
from repro.core.dapper_h import DapperHTracker
from repro.core.rgc import RowGroupCounterTable
from repro.core.bitvector import PerBankBitVector

__all__ = [
    "DapperSTracker",
    "DapperHTracker",
    "RowGroupCounterTable",
    "PerBankBitVector",
]
