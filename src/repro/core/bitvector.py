"""Per-bank bit-vectors for DAPPER-H's streaming-attack filter.

DAPPER-H attaches a per-bank bit-vector to every entry of its first RGC table.
The first activation a group sees from a given bank only sets the bank's bit
(it does not increment the counter); subsequent activations from a bank whose
bit is already set increment the counter and clear every other bank's bit.
This stops a streaming attack -- which touches every row once, spread across
banks -- from inflating the group counters, while a genuine aggressor that
hammers the same bank keeps incrementing normally.
"""

from __future__ import annotations


class PerBankBitVector:
    """Bit-vectors (one per RGC entry) over the banks of a rank."""

    def __init__(self, num_entries: int, num_banks: int):
        if num_entries < 1 or num_banks < 1:
            raise ValueError("num_entries and num_banks must be positive")
        self.num_entries = num_entries
        self.num_banks = num_banks
        self._bits = [0] * num_entries

    def observe(self, entry_index: int, bank_index: int) -> bool:
        """Observe an activation from ``bank_index`` for ``entry_index``.

        Returns ``True`` if the activation should increment the RGC (the
        bank's bit was already set); in that case every other bank's bit is
        cleared.  Returns ``False`` if the activation only set the bit.
        """
        if not 0 <= bank_index < self.num_banks:
            raise ValueError(f"bank index {bank_index} out of range")
        mask = 1 << bank_index
        current = self._bits[entry_index]
        if current & mask:
            self._bits[entry_index] = mask
            return True
        self._bits[entry_index] = current | mask
        return False

    def bits(self, entry_index: int) -> int:
        return self._bits[entry_index]

    def clear_entry(self, entry_index: int) -> None:
        self._bits[entry_index] = 0

    def reset_all(self) -> None:
        for index in range(self.num_entries):
            self._bits[index] = 0

    @property
    def storage_bytes(self) -> int:
        return self.num_entries * self.num_banks // 8
