"""DAPPER-S: the single-hash secure-tracking template (Section V).

DAPPER-S keeps one Row Group Counter (RGC) table per rank inside the memory
controller (no in-DRAM counters, so there is no counter traffic for an
attacker to amplify).  Rows are mapped to groups through a keyed low-latency
block cipher so an attacker cannot choose rows that share a counter.  When a
group counter reaches the mitigation threshold (NRH / 2), DAPPER-S decrypts
the group back to its member rows, refreshes the victims of every member, and
resets the counter.

DAPPER-S is deliberately the simple template: it already defeats the
counter-traffic Perf-Attacks of Hydra/START, but it remains vulnerable to the
two mapping-agnostic attacks (streaming and refresh) quantified in Figure 9,
and its single hash can be reverse-engineered by the Mapping-Capturing attack
analysed in Table II.  Those weaknesses motivate DAPPER-H.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.dram.address import RowAddress
from repro.trackers.base import (
    EMPTY_RESPONSE,
    GroupMitigation,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)
from repro.core.rgc import RowGroupCounterTable


class DapperSTracker(RowHammerTracker):
    """The DAPPER-S tracker (single secure hash, per-rank RGC table)."""

    name = "dapper-s"

    DEFAULT_GROUP_SIZE = 256

    def __init__(
        self,
        config: SystemConfig,
        group_size: int = DEFAULT_GROUP_SIZE,
        reset_period_ns: float | None = None,
    ):
        """``reset_period_ns`` optionally enables the short re-keying period
        analysed in Section V-D (e.g. 12 us); by default the table is reset
        and re-keyed once per refresh window like the rest of the design."""
        super().__init__(config)
        self.group_size = group_size
        self.reset_period_ns = reset_period_ns
        self._tables: dict[tuple[int, int], RowGroupCounterTable] = {}
        self._next_reset_ns = reset_period_ns
        self._seed = config.seed ^ 0x44505253  # "DPRS"

    # ------------------------------------------------------------------ #

    def _table(self, channel: int, rank: int) -> RowGroupCounterTable:
        key = (channel, rank)
        table = self._tables.get(key)
        if table is None:
            table = RowGroupCounterTable(
                rank_row_bits=self.org.rank_row_bits,
                group_size=self.group_size,
                seed=self._seed ^ (channel * 0x1_0001 + rank * 0x101),
            )
            self._tables[key] = table
        return table

    def _maybe_periodic_reset(self, now_ns: float) -> None:
        if self.reset_period_ns is None or now_ns < self._next_reset_ns:
            return
        for table in self._tables.values():
            table.reset_and_rekey()
        self.stats.periodic_resets += 1
        while self._next_reset_ns <= now_ns:
            self._next_reset_ns += self.reset_period_ns

    # ------------------------------------------------------------------ #

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self._note_activation()
        self._maybe_periodic_reset(now_ns)

        table = self._table(row.bank.channel, row.bank.rank)
        rank_row = row.rank_row_index(self.org)
        group = table.group_of(rank_row)
        count = table.increment(group)
        if count < self.mitigation_threshold:
            return EMPTY_RESPONSE

        # Mitigate the whole group: every member row's victims are refreshed.
        table.set_count(group, 0)
        self._note_mitigation(self.group_size)
        group_size = self.group_size
        mitigation = GroupMitigation(
            channel=row.bank.channel,
            rank=row.bank.rank,
            num_rows=group_size,
            rows_per_bank=group_size / self.org.banks_per_rank,
            covers=lambda rank_row_index, _table=table, _group=group: (
                _table.group_of(rank_row_index) == _group
            ),
            reason="dapper-s-group-refresh",
        )
        return TrackerResponse(group_mitigations=(mitigation,))

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        for table in self._tables.values():
            table.reset_and_rekey()
        self.stats.periodic_resets += 1
        return EMPTY_RESPONSE

    # ------------------------------------------------------------------ #

    def storage_report(self) -> StorageReport:
        groups_per_rank = (1 << self.org.rank_row_bits) // self.group_size
        sram_bytes = groups_per_rank * self.org.ranks_per_channel
        return StorageReport(sram_bytes=sram_bytes)

    # Introspection helpers used by tests and the security analysis ------

    def group_of(self, row: RowAddress) -> int:
        """Current group index of a row (depends on the key epoch)."""
        table = self._table(row.bank.channel, row.bank.rank)
        return table.group_of(row.rank_row_index(self.org))

    def group_count(self, channel: int, rank: int, group: int) -> int:
        return self._table(channel, rank).count(group)
