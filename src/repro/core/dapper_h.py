"""DAPPER-H: the full Perf-Attack-resilient tracker (Section VI).

DAPPER-H extends DAPPER-S with three mechanisms:

* **Double hashing.**  Two RGC tables, each with its own cipher, track every
  activation.  Mitigation triggers only when *both* group counters reach the
  mitigation threshold, and only the rows shared by the two groups (usually a
  single row) are refreshed -- defeating the refresh attack that exploited
  DAPPER-S's group-wide refreshes and making Mapping-Capturing attacks
  require guessing both mappings at once.
* **Per-bank bit-vector.**  Each entry of RGC table 1 carries a bank
  bit-vector: the first activation seen from a bank only sets the bank's bit,
  so a streaming attack that touches every row once (spread across banks)
  cannot inflate table 1.
* **Cross-table reset counters.**  After a mitigation the two group counters
  cannot simply be zeroed (other member rows may have pending activations
  tracked by the *other* table), so each group is reset to the maximum count
  its unrefreshed members hold in the opposite table.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.dram.address import BankAddress, RowAddress
from repro.trackers.base import (
    EMPTY_RESPONSE,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)
from repro.core.bitvector import PerBankBitVector
from repro.core.rgc import RowGroupCounterTable

try:  # numpy vectorizes the mitigation-time cross-table scan; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


class _RankState:
    """Both RGC tables plus the bit-vector for one rank."""

    def __init__(self, rank_row_bits: int, group_size: int, num_banks: int, seed: int):
        self.table1 = RowGroupCounterTable(rank_row_bits, group_size, seed ^ 0x1111)
        self.table2 = RowGroupCounterTable(rank_row_bits, group_size, seed ^ 0x2222)
        self.bitvector = PerBankBitVector(self.table1.num_groups, num_banks)
        # Cache of a group's members annotated with their group in the other
        # table; valid until the next re-keying.  The pair-list and the
        # array-form caches are kept separate so the scalar API stays usable
        # alongside the vectorized mitigation path.
        self.cross_cache_1: dict[int, list[tuple[int, int]]] = {}
        self.cross_cache_2: dict[int, list[tuple[int, int]]] = {}
        self.cross_array_cache_1: dict[int, tuple] = {}
        self.cross_array_cache_2: dict[int, tuple] = {}
        # (group1, group2) -> the mitigation scan's key-epoch-invariant
        # products: the shared rows and the two "other groups to read"
        # index arrays (see DapperHTracker._mitigate).
        self.pair_cache: dict[tuple[int, int], tuple] = {}

    def cross_members_1(self, group1: int) -> list[tuple[int, int]]:
        """Members of table-1 group ``group1`` as ``(rank_row, group2)`` pairs."""
        cached = self.cross_cache_1.get(group1)
        if cached is None:
            cached = [
                (member, self.table2.group_of(member))
                for member in self.table1.members(group1)
            ]
            self.cross_cache_1[group1] = cached
        return cached

    def cross_members_2(self, group2: int) -> list[tuple[int, int]]:
        """Members of table-2 group ``group2`` as ``(rank_row, group1)`` pairs."""
        cached = self.cross_cache_2.get(group2)
        if cached is None:
            cached = [
                (member, self.table1.group_of(member))
                for member in self.table2.members(group2)
            ]
            self.cross_cache_2[group2] = cached
        return cached

    def cross_arrays_1(self, group1: int):
        """:meth:`cross_members_1` as ``(members, groups2)`` int64 arrays."""
        cached = self.cross_array_cache_1.get(group1)
        if cached is None:
            members = self.table1.members(group1)
            cached = (
                _np.asarray(members, dtype=_np.int64),
                _np.asarray(
                    [self.table2.group_of(m) for m in members], dtype=_np.int64
                ),
            )
            self.cross_array_cache_1[group1] = cached
        return cached

    def cross_arrays_2(self, group2: int):
        """:meth:`cross_members_2` as ``(members, groups1)`` int64 arrays."""
        cached = self.cross_array_cache_2.get(group2)
        if cached is None:
            members = self.table2.members(group2)
            cached = (
                _np.asarray(members, dtype=_np.int64),
                _np.asarray(
                    [self.table1.group_of(m) for m in members], dtype=_np.int64
                ),
            )
            self.cross_array_cache_2[group2] = cached
        return cached

    def reset_and_rekey(self) -> None:
        self.table1.reset_and_rekey()
        self.table2.reset_and_rekey()
        self.bitvector.reset_all()
        self.cross_cache_1.clear()
        self.cross_cache_2.clear()
        self.cross_array_cache_1.clear()
        self.cross_array_cache_2.clear()
        self.pair_cache.clear()


class DapperHTracker(RowHammerTracker):
    """The DAPPER-H tracker (double hashing + bit-vector + reset counters)."""

    name = "dapper-h"

    DEFAULT_GROUP_SIZE = 256

    def __init__(
        self,
        config: SystemConfig,
        group_size: int = DEFAULT_GROUP_SIZE,
        use_bitvector: bool = True,
        use_reset_counters: bool = True,
    ):
        """``use_bitvector`` / ``use_reset_counters`` exist for the ablation
        benchmarks; the real design enables both."""
        super().__init__(config)
        self.group_size = group_size
        self.use_bitvector = use_bitvector
        self.use_reset_counters = use_reset_counters
        self._ranks: dict[tuple[int, int], _RankState] = {}
        self._seed = config.seed ^ 0x44505248  # "DPRH"
        # RowAddress -> (rank state, rank_row, bank index): the geometry is
        # fixed for the tracker's lifetime, so this never invalidates.
        self._row_memo: dict[RowAddress, tuple[_RankState, int, int]] = {}
        #: Count of mitigations by number of shared rows refreshed, used to
        #: validate the paper's claim that 99.9% of mitigations refresh a
        #: single row.
        self.shared_row_histogram: dict[int, int] = {}

    # ------------------------------------------------------------------ #

    def _rank_state(self, channel: int, rank: int) -> _RankState:
        key = (channel, rank)
        state = self._ranks.get(key)
        if state is None:
            state = _RankState(
                rank_row_bits=self.org.rank_row_bits,
                group_size=self.group_size,
                num_banks=self.org.banks_per_rank,
                seed=self._seed ^ (channel * 0x1_0001 + rank * 0x101),
            )
            self._ranks[key] = state
        return state

    # ------------------------------------------------------------------ #

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self.stats.activations_observed += 1  # inlined _note_activation
        memo = self._row_memo.get(row)
        if memo is None:
            org = self.org
            memo = (
                self._rank_state(row.bank.channel, row.bank.rank),
                row.rank_row_index(org),
                row.bank.rank_local_bank(org),
            )
            self._row_memo[row] = memo
        state, rank_row, bank_index = memo

        group1 = state.table1.group_of(rank_row)
        group2 = state.table2.group_of(rank_row)

        # Table 2 is always incremented; table 1 only when the bit-vector
        # confirms repeated activity from the same bank.
        count2 = state.table2.increment(group2)
        if self.use_bitvector:
            count_table1 = state.bitvector.observe(group1, bank_index)
        else:
            count_table1 = True
        if count_table1:
            count1 = state.table1.increment(group1)
        else:
            count1 = state.table1.count(group1)

        threshold = self.mitigation_threshold
        if count1 < threshold or count2 < threshold:
            return EMPTY_RESPONSE

        return self._mitigate(state, row, rank_row, group1, group2)

    # ------------------------------------------------------------------ #

    def _mitigate(
        self,
        state: _RankState,
        row: RowAddress,
        rank_row: int,
        group1: int,
        group2: int,
    ) -> TrackerResponse:
        """Refresh the rows shared by ``group1`` and ``group2`` and reset."""
        # Decrypt table-1's group and annotate each member with its table-2
        # group; shared rows are those whose table-2 group is ``group2``.
        #
        # Reset counters: a non-refreshed member of the mitigated group may
        # have accumulated up to its counter in the *other* table, so each
        # group is reset to the maximum such value rather than to zero
        # (Section VI-B step 3/4).  Groups that are themselves at or past the
        # mitigation threshold are excluded from this maximum: they are about
        # to trigger their own mitigation, and folding their (saturated)
        # counts back in would let a synchronised multi-row attack pin every
        # counter at the threshold and force a refresh storm.
        threshold = self.mitigation_threshold
        if _np is not None:
            # Vectorized cross-table scan: identical member sets and counter
            # reads as the scalar loops below; the reductions (max over
            # integer counts below the threshold) are order-independent.
            # Which rows are shared and which opposite-table groups each scan
            # reads depend only on the key epoch, so they are cached per
            # (group1, group2) pair -- mitigation-heavy attacks hammer the
            # same pair repeatedly.
            cached = state.pair_cache.get((group1, group2))
            if cached is None:
                members1, groups2_of = state.cross_arrays_1(group1)
                shared_mask = groups2_of == group2
                shared_arr = members1[shared_mask]
                members2, groups1_of = state.cross_arrays_2(group2)
                keep = ~_np.isin(members2, shared_arr)
                shared_rows = shared_arr.tolist()
                channel = row.bank.channel
                rank = row.bank.rank
                cached = (
                    frozenset(shared_rows),
                    groups2_of[~shared_mask],
                    groups1_of[keep],
                    tuple(
                        self._to_row_address(channel, rank, member)
                        for member in shared_rows
                    ),
                )
                state.pair_cache[(group1, group2)] = cached
            shared_set, read_groups2, read_groups1, mitigations = cached
            if rank_row not in shared_set:
                # Safeguard only: the activated row is shared by construction.
                mitigations = mitigations + (
                    self._to_row_address(row.bank.channel, row.bank.rank, rank_row),
                )
            reset1 = 0
            reset2 = 0
            if self.use_reset_counters:
                # max over the counts below the threshold; zero if none are
                # (counts are non-negative, so the default cannot win).
                counts2 = state.table2.counts_at(read_groups2)
                reset1 = int(_np.max(
                    counts2, initial=0, where=counts2 < threshold
                ))
                counts1 = state.table1.counts_at(read_groups1)
                reset2 = int(_np.max(
                    counts1, initial=0, where=counts1 < threshold
                ))
        else:
            shared = []
            reset1 = 0
            for member, member_group2 in state.cross_members_1(group1):
                if member_group2 == group2:
                    shared.append(member)
                elif self.use_reset_counters:
                    other_count = state.table2.count(member_group2)
                    if other_count < threshold:
                        reset1 = max(reset1, other_count)

            reset2 = 0
            if self.use_reset_counters:
                shared_set = set(shared)
                for member, member_group1 in state.cross_members_2(group2):
                    if member in shared_set:
                        continue
                    other_count = state.table1.count(member_group1)
                    if other_count < threshold:
                        reset2 = max(reset2, other_count)

            # The activated row is always shared by construction.
            if rank_row not in shared:
                shared.append(rank_row)

            mitigations = tuple(
                self._to_row_address(row.bank.channel, row.bank.rank, member)
                for member in shared
            )

        num_shared = len(mitigations)
        self._note_mitigation(num_shared)
        self.shared_row_histogram[num_shared] = (
            self.shared_row_histogram.get(num_shared, 0) + 1
        )

        ceiling = self.mitigation_threshold - 1
        state.table1.set_count(group1, min(ceiling, reset1))
        state.table2.set_count(group2, min(ceiling, reset2))
        state.bitvector.clear_entry(group1)
        return TrackerResponse(mitigations=mitigations)

    def _to_row_address(self, channel: int, rank: int, rank_row: int) -> RowAddress:
        org = self.org
        bank_local = rank_row // org.rows_per_bank
        row_index = rank_row % org.rows_per_bank
        bank_group = bank_local // org.banks_per_group
        bank = bank_local % org.banks_per_group
        return RowAddress(BankAddress(channel, rank, bank_group, bank), row_index)

    # ------------------------------------------------------------------ #

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        for state in self._ranks.values():
            state.reset_and_rekey()
        self.stats.periodic_resets += 1
        return EMPTY_RESPONSE

    def storage_report(self) -> StorageReport:
        groups_per_rank = (1 << self.org.rank_row_bits) // self.group_size
        rgc_bytes = 2 * groups_per_rank * self.org.ranks_per_channel
        bitvector_bytes = (
            groups_per_rank * self.org.banks_per_rank // 8
        ) * self.org.ranks_per_channel
        return StorageReport(sram_bytes=rgc_bytes + bitvector_bytes)

    # Introspection helpers ---------------------------------------------

    def single_row_mitigation_fraction(self) -> float:
        """Fraction of mitigations that refreshed exactly one shared row."""
        total = sum(self.shared_row_histogram.values())
        if total == 0:
            return 1.0
        return self.shared_row_histogram.get(1, 0) / total

    def groups_of(self, row: RowAddress) -> tuple[int, int]:
        """Current (table1, table2) group indices of a row."""
        state = self._rank_state(row.bank.channel, row.bank.rank)
        rank_row = row.rank_row_index(self.org)
        return state.table1.group_of(rank_row), state.table2.group_of(rank_row)
