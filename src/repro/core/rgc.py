"""Row Group Counter (RGC) tables.

A Row Group Counter table tracks the activations of *groups* of rows.  DAPPER
randomises the row-to-group assignment with a low-latency block cipher: the
row's index inside its rank is encrypted, and the hashed value divided by the
group size selects the counter.  Because the cipher is a bijection, the
members of a group can always be recovered by decrypting the ``group_size``
consecutive hashed addresses the group covers -- that is how DAPPER finds the
rows to refresh when a counter reaches the mitigation threshold.
"""

from __future__ import annotations

from repro.crypto.llbc import LowLatencyBlockCipher


class RowGroupCounterTable:
    """One RGC table with its own cipher over the rank's row-address space."""

    def __init__(
        self,
        rank_row_bits: int,
        group_size: int,
        seed: int,
        counter_bits: int = 8,
    ):
        if group_size < 1 or group_size & (group_size - 1):
            raise ValueError("group_size must be a positive power of two")
        self.rank_row_bits = rank_row_bits
        self.group_size = group_size
        self.counter_bits = counter_bits
        self.cipher = LowLatencyBlockCipher(rank_row_bits, seed)
        self.num_groups = (1 << rank_row_bits) // group_size
        self._counters = [0] * self.num_groups
        self._member_cache: dict[int, list[int]] = {}

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #

    def group_of(self, rank_row_index: int) -> int:
        """Group index the row currently maps to (depends on the key epoch)."""
        return self.cipher.encrypt(rank_row_index) // self.group_size

    def members(self, group_index: int) -> list[int]:
        """All rank-row indices currently mapped to ``group_index``.

        The decryption of a whole group is cached until the next re-keying,
        because mitigation-heavy scenarios (the refresh attack) repeatedly
        mitigate the same few groups.
        """
        if not 0 <= group_index < self.num_groups:
            raise ValueError(f"group {group_index} out of range")
        cached = self._member_cache.get(group_index)
        if cached is not None:
            return cached
        base = group_index * self.group_size
        members = [
            self.cipher.decrypt(base + offset) for offset in range(self.group_size)
        ]
        self._member_cache[group_index] = members
        return members

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #

    def count(self, group_index: int) -> int:
        return self._counters[group_index]

    def increment(self, group_index: int) -> int:
        """Saturating increment; returns the new value."""
        ceiling = (1 << self.counter_bits) - 1
        value = min(ceiling, self._counters[group_index] + 1)
        self._counters[group_index] = value
        return value

    def set_count(self, group_index: int, value: int) -> None:
        self._counters[group_index] = max(0, value)

    def reset_all(self) -> None:
        for index in range(self.num_groups):
            self._counters[index] = 0

    def rekey(self) -> None:
        """Refresh the cipher keys (row-to-group mapping changes entirely)."""
        self.cipher.rekey()
        self._member_cache.clear()

    def reset_and_rekey(self) -> None:
        self.reset_all()
        self.rekey()

    @property
    def storage_bytes(self) -> int:
        return self.num_groups * self.counter_bits // 8

    def nonzero_groups(self) -> int:
        """Number of groups with a non-zero counter (useful in tests)."""
        return sum(1 for value in self._counters if value)
