"""Row Group Counter (RGC) tables.

A Row Group Counter table tracks the activations of *groups* of rows.  DAPPER
randomises the row-to-group assignment with a low-latency block cipher: the
row's index inside its rank is encrypted, and the hashed value divided by the
group size selects the counter.  Because the cipher is a bijection, the
members of a group can always be recovered by decrypting the ``group_size``
consecutive hashed addresses the group covers -- that is how DAPPER finds the
rows to refresh when a counter reaches the mitigation threshold.
"""

from __future__ import annotations

from repro.crypto.llbc import LowLatencyBlockCipher

try:  # numpy backs the counter array and batch reads; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


class RowGroupCounterTable:
    """One RGC table with its own cipher over the rank's row-address space.

    The counter table is numpy-backed when numpy is available
    (``use_numpy=False`` keeps the plain-list reference model); the scalar
    ``count``/``increment``/``set_count`` API always deals in Python ints, so
    both backings are observationally identical.  :meth:`counts_at` reads many
    group counters at once, which is what makes DAPPER's mitigation-time
    cross-table scan (one read per group member) vectorizable.
    """

    def __init__(
        self,
        rank_row_bits: int,
        group_size: int,
        seed: int,
        counter_bits: int = 8,
        use_numpy: bool | None = None,
    ):
        if group_size < 1 or group_size & (group_size - 1):
            raise ValueError("group_size must be a positive power of two")
        self.rank_row_bits = rank_row_bits
        self.group_size = group_size
        self.counter_bits = counter_bits
        self.cipher = LowLatencyBlockCipher(rank_row_bits, seed)
        self.num_groups = (1 << rank_row_bits) // group_size
        if use_numpy is None:
            use_numpy = _np is not None
        if use_numpy and _np is None:
            raise ValueError("numpy backing requested but numpy is unavailable")
        self.use_numpy = use_numpy
        self._counters = (
            _np.zeros(self.num_groups, dtype=_np.int64)
            if use_numpy
            else [0] * self.num_groups
        )
        self._member_cache: dict[int, list[int]] = {}
        self._group_cache: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Mapping
    # ------------------------------------------------------------------ #

    def group_of(self, rank_row_index: int) -> int:
        """Group index the row currently maps to (depends on the key epoch).

        Memoized until the next re-keying: the cipher is a fixed bijection
        within a key epoch, and RowHammer workloads activate the same rows
        repeatedly.
        """
        group = self._group_cache.get(rank_row_index)
        if group is None:
            group = self.cipher.encrypt(rank_row_index) // self.group_size
            self._group_cache[rank_row_index] = group
        return group

    def members(self, group_index: int) -> list[int]:
        """All rank-row indices currently mapped to ``group_index``.

        The decryption of a whole group is cached until the next re-keying,
        because mitigation-heavy scenarios (the refresh attack) repeatedly
        mitigate the same few groups.
        """
        if not 0 <= group_index < self.num_groups:
            raise ValueError(f"group {group_index} out of range")
        cached = self._member_cache.get(group_index)
        if cached is not None:
            return cached
        base = group_index * self.group_size
        members = [
            self.cipher.decrypt(base + offset) for offset in range(self.group_size)
        ]
        self._member_cache[group_index] = members
        return members

    # ------------------------------------------------------------------ #
    # Counters
    # ------------------------------------------------------------------ #

    def count(self, group_index: int) -> int:
        return int(self._counters[group_index])

    def counts_at(self, group_indices):
        """Counts of many groups at once.

        ``group_indices`` may be a sequence or (array-backed) a numpy index
        array; the result is a numpy array in the array-backed case and a
        list otherwise.  Reads only -- aggregation over the result (max,
        comparisons) is order-independent, so it is exactly equivalent to a
        loop of :meth:`count` calls.
        """
        counters = self._counters
        if self.use_numpy:
            return counters[group_indices]
        return [counters[index] for index in group_indices]

    def increment(self, group_index: int) -> int:
        """Saturating increment; returns the new value."""
        ceiling = (1 << self.counter_bits) - 1
        value = min(ceiling, int(self._counters[group_index]) + 1)
        self._counters[group_index] = value
        return value

    def set_count(self, group_index: int, value: int) -> None:
        self._counters[group_index] = max(0, value)

    def reset_all(self) -> None:
        if self.use_numpy:
            self._counters.fill(0)
        else:
            for index in range(self.num_groups):
                self._counters[index] = 0

    def rekey(self) -> None:
        """Refresh the cipher keys (row-to-group mapping changes entirely)."""
        self.cipher.rekey()
        self._member_cache.clear()
        self._group_cache.clear()

    def reset_and_rekey(self) -> None:
        self.reset_all()
        self.rekey()

    @property
    def storage_bytes(self) -> int:
        return self.num_groups * self.counter_bits // 8

    def nonzero_groups(self) -> int:
        """Number of groups with a non-zero counter (useful in tests)."""
        if self.use_numpy:
            return int((self._counters != 0).sum())
        return sum(1 for value in self._counters if value)
