"""Storage-overhead comparison (Table III).

Table III compares the SRAM / CAM footprint and estimated die area of the
evaluated trackers per 32GB DDR5 channel.  Each tracker implementation in this
reproduction computes its own :class:`~repro.trackers.base.StorageReport`; this
module collects them and places the paper's reported numbers alongside.  The
regenerated table also includes the Graphene and MINT related-work baselines
(not part of the paper's Table III, so they carry no reference values) to show
the two storage extremes DAPPER-H sits between.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, baseline_config
from repro.trackers.registry import create_tracker


#: Values reported by the paper in Table III (per 32GB DDR5 channel):
#: tracker -> (SRAM KB, CAM KB, die area mm^2).
PAPER_TABLE3: dict[str, tuple[float, float, float]] = {
    "hydra": (56.5, 0.0, 0.044),
    "comet": (112.0, 23.0, 0.139),
    "start": (4.0, 0.0, 0.003),
    "abacus": (19.3, 7.5, 0.038),
    "dapper-h": (96.0, 0.0, 0.075),
}


@dataclass(frozen=True)
class StorageRow:
    """One row of the regenerated Table III."""

    tracker: str
    sram_kb: float
    cam_kb: float
    die_area_mm2: float
    paper_sram_kb: float | None
    paper_cam_kb: float | None
    paper_die_area_mm2: float | None


def storage_comparison_table(
    config: SystemConfig | None = None,
    trackers: tuple[str, ...] = (
        "hydra",
        "comet",
        "start",
        "abacus",
        "graphene",
        "mint",
        "dapper-s",
        "dapper-h",
    ),
) -> list[StorageRow]:
    """Regenerate Table III from the tracker implementations."""
    config = config or baseline_config()
    rows = []
    for name in trackers:
        tracker = create_tracker(name, config)
        report = tracker.storage_report()
        paper = PAPER_TABLE3.get(name)
        rows.append(
            StorageRow(
                tracker=name,
                sram_kb=report.sram_kb,
                cam_kb=report.cam_kb,
                die_area_mm2=report.die_area_mm2(),
                paper_sram_kb=paper[0] if paper else None,
                paper_cam_kb=paper[1] if paper else None,
                paper_die_area_mm2=paper[2] if paper else None,
            )
        )
    return rows
