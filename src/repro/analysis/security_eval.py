"""Empirical RowHammer-security evaluation of every tracker.

The analytical models in :mod:`repro.analysis.mapping_capture` and
:mod:`repro.analysis.dapper_h_security` reason about *Performance Attacks*;
this module answers the more basic question every tracker must pass first:
*does it actually prevent RowHammer?*

:func:`evaluate_tracker_security` drives an attack kernel straight into a
memory controller that carries the :class:`~repro.analysis.security.GroundTruthAuditor`
and reports the maximum true activation count any row accumulated between
refreshes of its victims.  A sound tracker keeps that maximum below the
RowHammer threshold (in practice near the mitigation threshold, NRH / 2);
the unprotected baseline exceeds it almost immediately under double-sided
hammering.

:func:`security_sweep` repeats the evaluation for a set of trackers and
attack patterns and returns one row per combination, which is what the
``security`` CLI command and the security-audit example print.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.security import GroundTruthAuditor, SecurityReport
from repro.attacks import attack_by_name
from repro.config import SystemConfig, baseline_config
from repro.dram.address import AddressMapper
from repro.dram.dram_system import DRAMSystem
from repro.mc.controller import MemoryController
from repro.trackers.registry import create_tracker

#: Attack patterns used by default: classic hammering (double-sided and
#: many-sided) plus the streaming pattern that maximises distinct aggressors.
DEFAULT_SECURITY_ATTACKS = (
    "rowhammer",
    "many-sided-rowhammer",
    "refresh",
)

#: Trackers whose protection is deterministic: under any access pattern the
#: true activation count must stay below the RowHammer threshold.
DETERMINISTIC_TRACKERS = (
    "hydra",
    "start",
    "comet",
    "abacus",
    "graphene",
    "prac",
    "dapper-s",
    "dapper-h",
)


@dataclass(frozen=True)
class SecurityScenario:
    """Outcome of one (tracker, attack) security evaluation."""

    tracker: str
    attack: str
    nrh: int
    activations: int
    max_count: int
    violations: int
    mitigations_issued: int

    @property
    def is_secure(self) -> bool:
        """Whether no row crossed the RowHammer threshold."""
        return self.violations == 0

    @property
    def max_count_fraction_of_nrh(self) -> float:
        return self.max_count / self.nrh if self.nrh else 0.0


def evaluate_tracker_security(
    tracker_name: str,
    attack_name: str = "rowhammer",
    config: SystemConfig | None = None,
    activations: int = 20_000,
    seed: int = 7,
) -> SecurityScenario:
    """Hammer one tracker with one attack kernel and audit the ground truth.

    The attack stream is serviced request-by-request in time order (each
    request issues when the previous one completed), so throttling mitigations
    and refresh-window resets behave exactly as they would inside the full
    multi-core simulator, at a fraction of the cost.
    """
    config = config or baseline_config()
    mapper = AddressMapper(config.dram)
    tracker = create_tracker(tracker_name, config)
    auditor = GroundTruthAuditor(config)
    controller = MemoryController(
        config, DRAMSystem(config), tracker, mapper, auditor=auditor
    )
    attack = attack_by_name(attack_name, config.dram, mapper, seed=seed)

    now_ns = 0.0
    for _ in range(activations):
        entry = attack.next_entry()
        now_ns = controller.service(entry.address, entry.is_write, now_ns)

    report: SecurityReport = auditor.report()
    return SecurityScenario(
        tracker=tracker_name,
        attack=attack_name,
        nrh=config.rowhammer.nrh,
        activations=activations,
        max_count=report.max_count,
        violations=len(report.violations),
        mitigations_issued=tracker.stats.mitigations_issued,
    )


def security_sweep(
    trackers: tuple[str, ...] = DETERMINISTIC_TRACKERS,
    attacks: tuple[str, ...] = DEFAULT_SECURITY_ATTACKS,
    config: SystemConfig | None = None,
    activations: int = 20_000,
    seed: int = 7,
) -> list[SecurityScenario]:
    """Evaluate every (tracker, attack) combination and return one row each."""
    config = config or baseline_config()
    return [
        evaluate_tracker_security(
            tracker_name,
            attack_name,
            config=config,
            activations=activations,
            seed=seed,
        )
        for tracker_name in trackers
        for attack_name in attacks
    ]


def format_security_table(scenarios: list[SecurityScenario]) -> str:
    """Human-readable table of a security sweep (used by the CLI)."""
    header = (
        f"{'tracker':<22} {'attack':<24} {'max count':>10} "
        f"{'/NRH':>6} {'mitigations':>12} {'secure':>7}"
    )
    lines = [header, "-" * len(header)]
    for scenario in scenarios:
        lines.append(
            f"{scenario.tracker:<22} {scenario.attack:<24} "
            f"{scenario.max_count:>10} "
            f"{scenario.max_count_fraction_of_nrh:>6.2f} "
            f"{scenario.mitigations_issued:>12} "
            f"{'yes' if scenario.is_secure else 'NO':>7}"
        )
    return "\n".join(lines)
