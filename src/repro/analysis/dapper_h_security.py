"""Analytical security model of DAPPER-H against Mapping-Capturing attacks
(Section VI-C, Equations (6)-(7)).

With double hashing, a Mapping-Capturing attack must find, in a single trial,
two random rows whose *pair of* group mappings matches the target row's pair.
Each trial costs almost the full mitigation-threshold budget of activations
(the target row must be re-charged after a failed guess), and the bit-vector
stops the attacker from spraying guesses across banks, which bounds the
number of trials per refresh window.  The paper concludes DAPPER-H keeps the
per-window success probability at or below 0.01%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, baseline_config


@dataclass(frozen=True)
class DapperHSecurityAnalysis:
    """Result of the Equations (6)-(7) analysis."""

    row_groups: int
    success_probability_per_trial: float
    trials_per_refresh_window: int
    success_probability_per_window: float

    @property
    def prevention_rate(self) -> float:
        """Probability that no mapping is captured within one refresh window."""
        return 1.0 - self.success_probability_per_window

    @property
    def expected_windows_between_captures(self) -> float:
        if self.success_probability_per_window <= 0:
            return float("inf")
        return 1.0 / self.success_probability_per_window


def analyze_dapper_h_mapping_capture(
    config: SystemConfig | None = None,
    group_size: int = 256,
    guesses_per_trial: int = 2,
) -> DapperHSecurityAnalysis:
    """Apply Equations (6) and (7) of the paper.

    * Eq. (6): ``p = (1 - (1 - 1/N)^g) * (1 - (1 - 1/N)^g)`` with ``g`` random
      guesses per trial and ``N`` row groups per table.
    * Eq. (7): ``P_S = 1 - (1 - p)^T`` with ``T`` trials per refresh window.

    The number of trials per window follows the paper's argument: the
    bit-vector limits the attacker to the single-bank activation budget
    (about 616K activations per tREFW), and each trial costs the full
    mitigation threshold of target-row activations, giving roughly
    ``616K / NM`` trials (about 2.5K at NRH = 500).
    """
    config = config or baseline_config()
    timings = config.timings
    nm = config.rowhammer.mitigation_threshold
    row_groups = config.dram.rows_per_rank // group_size

    miss = (1.0 - 1.0 / row_groups) ** guesses_per_trial
    p_trial = (1.0 - miss) * (1.0 - miss)

    single_bank_activations = timings.trefw_ns / timings.trc_ns
    trials = int(single_bank_activations // max(1, nm))

    p_window = 1.0 - (1.0 - p_trial) ** trials
    return DapperHSecurityAnalysis(
        row_groups=row_groups,
        success_probability_per_trial=p_trial,
        trials_per_refresh_window=trials,
        success_probability_per_window=p_window,
    )
