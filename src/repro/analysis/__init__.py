"""Security analysis: analytical models from the paper and the empirical
ground-truth auditor used to validate RowHammer protection in simulation.
"""

from repro.analysis.security import GroundTruthAuditor, SecurityReport
from repro.analysis.mapping_capture import (
    MappingCaptureAnalysis,
    analyze_dapper_s_mapping_capture,
    table2_rows,
)
from repro.analysis.dapper_h_security import (
    DapperHSecurityAnalysis,
    analyze_dapper_h_mapping_capture,
)
from repro.analysis.storage import storage_comparison_table, PAPER_TABLE3
from repro.analysis.security_eval import (
    DEFAULT_SECURITY_ATTACKS,
    DETERMINISTIC_TRACKERS,
    SecurityScenario,
    evaluate_tracker_security,
    format_security_table,
    security_sweep,
)

__all__ = [
    "GroundTruthAuditor",
    "SecurityReport",
    "MappingCaptureAnalysis",
    "analyze_dapper_s_mapping_capture",
    "table2_rows",
    "DapperHSecurityAnalysis",
    "analyze_dapper_h_mapping_capture",
    "storage_comparison_table",
    "PAPER_TABLE3",
    "SecurityScenario",
    "evaluate_tracker_security",
    "security_sweep",
    "format_security_table",
    "DEFAULT_SECURITY_ATTACKS",
    "DETERMINISTIC_TRACKERS",
]
