"""Analytical model of the Mapping-Capturing attack on DAPPER-S (Section V-D).

The attack tries to learn one pair of rows that share a Row Group Counter: it
hammers a target row to one below the mitigation threshold, then activates
other rows while watching for the mitigative refresh that reveals a shared
group.  DAPPER-S counters this by resetting the RGC table and re-keying its
hash every ``t_reset``; the attack must therefore succeed within the time left
after charging the target row.  The paper quantifies this with Equations (1)
to (5) and Table II; this module reproduces those expressions exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, baseline_config


@dataclass(frozen=True)
class MappingCaptureAnalysis:
    """Result of the Equations (1)-(5) analysis for one reset period."""

    reset_period_ns: float
    time_left_ns: float
    max_activations: float
    row_groups: int
    success_probability_per_period: float
    expected_attack_iterations: float
    expected_attack_time_ns: float

    @property
    def expected_attack_time_ms(self) -> float:
        return self.expected_attack_time_ns / 1e6

    @property
    def expected_attack_time_us(self) -> float:
        return self.expected_attack_time_ns / 1e3


def analyze_dapper_s_mapping_capture(
    reset_period_ns: float,
    config: SystemConfig | None = None,
    group_size: int = 256,
) -> MappingCaptureAnalysis:
    """Apply Equations (1)-(5) of the paper for a given reset period.

    * Eq. (1): ``t_left = t_reset - tRC * (NM - 1)``
    * Eq. (2): ``ACT_max = t_left / tRRD_S``
    * Eq. (3): ``P_S = 1 - (1 - 1/N_RG) ** ACT_max``
    * Eq. (4): ``AT_iter = 1 / P_S``
    * Eq. (5): ``AT_time = t_reset * AT_iter``
    """
    config = config or baseline_config()
    timings = config.timings
    nm = config.rowhammer.mitigation_threshold

    time_left = reset_period_ns - timings.trc_ns * (nm - 1)
    if time_left <= 0:
        return MappingCaptureAnalysis(
            reset_period_ns=reset_period_ns,
            time_left_ns=time_left,
            max_activations=0.0,
            row_groups=config.dram.rows_per_rank // group_size,
            success_probability_per_period=0.0,
            expected_attack_iterations=float("inf"),
            expected_attack_time_ns=float("inf"),
        )

    max_activations = time_left / timings.trrd_s_ns
    row_groups = config.dram.rows_per_rank // group_size
    p_select = 1.0 / row_groups
    success_probability = 1.0 - (1.0 - p_select) ** max_activations
    iterations = 1.0 / success_probability if success_probability > 0 else float("inf")
    attack_time = reset_period_ns * iterations
    return MappingCaptureAnalysis(
        reset_period_ns=reset_period_ns,
        time_left_ns=time_left,
        max_activations=max_activations,
        row_groups=row_groups,
        success_probability_per_period=success_probability,
        expected_attack_iterations=iterations,
        expected_attack_time_ns=attack_time,
    )


#: The reset periods evaluated in Table II (microseconds).
TABLE2_RESET_PERIODS_US = (36.0, 24.0, 12.0)

#: Values reported by the paper in Table II: reset period (us) ->
#: (attack iterations, attack time).  Attack times are in nanoseconds.
PAPER_TABLE2 = {
    36.0: (1.8, 64_000.0),
    24.0: (3.0, 71_000.0),
    12.0: (630.6, 7_600_000.0),
}


def table2_rows(config: SystemConfig | None = None) -> list[dict[str, float]]:
    """Regenerate Table II: attack iterations and time per reset period."""
    rows = []
    for period_us in TABLE2_RESET_PERIODS_US:
        analysis = analyze_dapper_s_mapping_capture(period_us * 1e3, config)
        paper_iters, paper_time = PAPER_TABLE2[period_us]
        rows.append(
            {
                "reset_period_us": period_us,
                "attack_iterations": analysis.expected_attack_iterations,
                "attack_time_us": analysis.expected_attack_time_us,
                "paper_attack_iterations": paper_iters,
                "paper_attack_time_us": paper_time / 1e3,
            }
        )
    return rows
