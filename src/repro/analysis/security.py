"""Ground-truth RowHammer security auditing.

Every simulation can carry a :class:`GroundTruthAuditor` that keeps the true
per-row activation count, independent of whatever approximation the tracker
under test maintains.  Counts follow the standard accounting used by the
tracker literature: a row's count accumulates activations since the last time
its victims were refreshed -- by an explicit mitigation targeting it, by a
bulk group refresh that covers it, by a structure-reset refresh of its rank or
channel, or by the periodic auto-refresh at the end of the refresh window.

A configuration is *secure* if no row's count ever exceeds the RowHammer
threshold.  (The model is conservative: refreshes of a victim row through a
*different* neighbouring aggressor are not credited.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.dram.address import RowAddress
from repro.trackers.base import GroupMitigation


@dataclass(frozen=True)
class SecurityViolation:
    """A row whose activation count exceeded the RowHammer threshold."""

    channel: int
    rank: int
    rank_row_index: int
    count: int
    time_ns: float


@dataclass
class SecurityReport:
    """Summary of the audit after a simulation."""

    nrh: int
    max_count: int
    rows_tracked: int
    violations: tuple[SecurityViolation, ...]

    @property
    def is_secure(self) -> bool:
        return not self.violations

    @property
    def max_count_fraction_of_nrh(self) -> float:
        return self.max_count / self.nrh if self.nrh else 0.0


@dataclass
class _RowRecord:
    count: int
    epoch: tuple[int, int]


class GroundTruthAuditor:
    """Tracks true per-row activation counts during a simulation."""

    MAX_RECORDED_VIOLATIONS = 64

    def __init__(self, config: SystemConfig):
        self.config = config
        self.org = config.dram
        self.nrh = config.rowhammer.nrh
        self._rows: dict[tuple[int, int, int], _RowRecord] = {}
        self._rank_epochs: dict[tuple[int, int], int] = {}
        self._global_epoch = 0
        self._max_count = 0
        self._violations: list[SecurityViolation] = []

    # ------------------------------------------------------------------ #
    # Event hooks (called by the memory controller)
    # ------------------------------------------------------------------ #

    def _key(self, row: RowAddress) -> tuple[int, int, int]:
        return (
            row.bank.channel,
            row.bank.rank,
            row.rank_row_index(self.org),
        )

    def _current_epoch(self, channel: int, rank: int) -> tuple[int, int]:
        return (self._global_epoch, self._rank_epochs.get((channel, rank), 0))

    def on_activation(self, row: RowAddress, now_ns: float) -> None:
        key = self._key(row)
        epoch = self._current_epoch(key[0], key[1])
        record = self._rows.get(key)
        if record is None or record.epoch != epoch:
            record = _RowRecord(count=0, epoch=epoch)
            self._rows[key] = record
        record.count += 1
        if record.count > self._max_count:
            self._max_count = record.count
        if (
            record.count > self.nrh
            and len(self._violations) < self.MAX_RECORDED_VIOLATIONS
        ):
            self._violations.append(
                SecurityViolation(
                    channel=key[0],
                    rank=key[1],
                    rank_row_index=key[2],
                    count=record.count,
                    time_ns=now_ns,
                )
            )

    def on_mitigation(self, aggressor: RowAddress, blast_radius: int) -> None:
        """The victims of ``aggressor`` were refreshed: its damage resets."""
        key = self._key(aggressor)
        record = self._rows.get(key)
        if record is not None:
            record.count = 0

    def on_group_mitigation(self, group: GroupMitigation) -> None:
        """A bulk refresh covered every member of a row group."""
        for key, record in self._rows.items():
            if key[0] != group.channel or key[1] != group.rank:
                continue
            if record.count and group.covers(key[2]):
                record.count = 0

    def on_structure_reset(self, channel: int, rank: int | None) -> None:
        """Every row of the rank (or channel) was refreshed."""
        if rank is None:
            for r in range(self.org.ranks_per_channel):
                key = (channel, r)
                self._rank_epochs[key] = self._rank_epochs.get(key, 0) + 1
        else:
            key = (channel, rank)
            self._rank_epochs[key] = self._rank_epochs.get(key, 0) + 1

    def on_refresh_window(self, window_index: int) -> None:
        """The periodic auto refresh has walked over every row."""
        self._global_epoch = window_index

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def max_count(self) -> int:
        return self._max_count

    def report(self) -> SecurityReport:
        return SecurityReport(
            nrh=self.nrh,
            max_count=self._max_count,
            rows_tracked=len(self._rows),
            violations=tuple(self._violations),
        )
