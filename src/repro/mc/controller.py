"""The host-side memory controller.

The controller sits between the shared LLC and the DRAM timing model.  For
every request it:

1. decodes the physical address into DRAM coordinates,
2. asks the RowHammer tracker whether the request must be throttled
   (BlockHammer-style mitigations),
3. services the request through :class:`repro.dram.DRAMSystem`,
4. reports the resulting activation (if any) to the tracker and carries out
   whatever the tracker asks for: extra DRAM accesses to in-DRAM counters,
   victim refreshes, bulk group refreshes, or structure-reset blackouts,
5. keeps the optional ground-truth security auditor informed so every
   simulation can also double as a RowHammer-security check.

It also notifies the tracker of refresh-window (tREFW) boundaries, which is
when periodic structure resets and DAPPER's re-keying happen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.dram.address import AddressMapper, RowAddress
from repro.dram.commands import Blackout, CommandKind, MitigationScope
from repro.dram.dram_system import DRAMSystem
from repro.trackers.base import GroupMitigation, RowHammerTracker, TrackerResponse


@dataclass
class ControllerStats:
    """Controller-level statistics."""

    requests: int = 0
    read_requests: int = 0
    write_requests: int = 0
    throttled_requests: int = 0
    throttle_time_ns: float = 0.0
    tracker_counter_accesses: int = 0
    mitigation_refreshes: int = 0
    group_mitigations: int = 0
    structure_reset_blackouts: int = 0
    refresh_windows: int = 0


class MemoryController:
    """Services memory requests and drives the RowHammer tracker."""

    def __init__(
        self,
        config: SystemConfig,
        dram: DRAMSystem,
        tracker: RowHammerTracker,
        mapper: AddressMapper | None = None,
        auditor=None,
    ):
        self.config = config
        self.dram = dram
        self.tracker = tracker
        self.mapper = mapper or AddressMapper(config.dram)
        self.auditor = auditor
        self.stats = ControllerStats()
        self._last_refresh_window = 0

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #

    def service(
        self,
        address: int,
        is_write: bool,
        earliest_ns: float,
        core_id: int = 0,
    ) -> float:
        """Service one request and return its completion time."""
        self.stats.requests += 1
        if is_write:
            self.stats.write_requests += 1
        else:
            self.stats.read_requests += 1

        self._check_refresh_window(earliest_ns)

        decoded = self.mapper.decode(address)
        row_addr = decoded.row_address

        self.tracker.note_request_source(core_id)

        delay = self.tracker.throttle_delay_ns(row_addr, earliest_ns)
        if delay > 0.0:
            self.stats.throttled_requests += 1
            self.stats.throttle_time_ns += delay
            earliest_ns += delay

        result = self.dram.access(
            decoded,
            is_write,
            earliest_ns,
            extra_act_delay_ns=self.tracker.activation_extension_ns(),
        )

        if result.activated:
            if self.auditor is not None:
                self.auditor.on_activation(row_addr, result.completion_ns)
            response = self.tracker.on_activation(row_addr, result.completion_ns)
            if not response.is_empty:
                self._apply_response(response, row_addr, result.completion_ns)

        completion_ns = result.completion_ns
        response_delay = self.tracker.completion_delay_ns(row_addr, completion_ns)
        if response_delay > 0.0:
            self.stats.throttled_requests += 1
            self.stats.throttle_time_ns += response_delay
            completion_ns += response_delay

        return completion_ns

    # ------------------------------------------------------------------ #
    # Tracker response handling
    # ------------------------------------------------------------------ #

    def _apply_response(
        self,
        response: TrackerResponse,
        trigger: RowAddress,
        now_ns: float,
    ) -> None:
        channel = trigger.bank.channel
        rank = trigger.bank.rank

        for _ in range(response.counter_reads):
            self.dram.counter_access(channel, rank, now_ns, is_write=False)
            self.stats.tracker_counter_accesses += 1
        for _ in range(response.counter_writes):
            self.dram.counter_access(channel, rank, now_ns, is_write=True)
            self.stats.tracker_counter_accesses += 1

        blast_radius = self.config.rowhammer.blast_radius
        command = self.config.rowhammer.mitigation_command
        for aggressor in response.mitigations:
            self.dram.victim_refresh(aggressor, blast_radius, command, now_ns)
            self.stats.mitigation_refreshes += 1
            if self.auditor is not None:
                self.auditor.on_mitigation(aggressor, blast_radius)

        for group in response.group_mitigations:
            self._apply_group_mitigation(group, now_ns)

        for blackout in response.blackouts:
            self.dram.apply_blackout(blackout, now_ns)
            self.stats.structure_reset_blackouts += 1
            # A rank/channel-wide blackout issued by a tracker corresponds to
            # refreshing every row of that scope, so the ground truth resets.
            if self.auditor is not None and blackout.scope in (
                MitigationScope.RANK,
                MitigationScope.CHANNEL,
            ):
                reset_rank = (
                    blackout.rank if blackout.scope is MitigationScope.RANK else None
                )
                self.auditor.on_structure_reset(blackout.channel, reset_rank)
            # Charge the bulk refresh energy as the equivalent number of
            # auto-refresh commands.
            refresh_equivalents = max(
                1, int(blackout.duration_ns / self.config.timings.trfc_ns)
            )
            self.dram.energy.record(CommandKind.REF, refresh_equivalents)

    def _apply_group_mitigation(self, group: GroupMitigation, now_ns: float) -> None:
        """Charge a DAPPER-S style bulk refresh of one row group.

        Every bank of the rank refreshes its share of the group's member rows
        in parallel, so the rank is blocked for ``rows_per_bank * victims *
        tVRR`` and the energy of all the victim refreshes is charged.
        """
        blast_radius = self.config.rowhammer.blast_radius
        victims_per_row = 2 * blast_radius
        duration = (
            group.rows_per_bank
            * victims_per_row
            * self.config.timings.vrr_per_victim_ns
        )
        blackout = Blackout(
            scope=MitigationScope.RANK,
            channel=group.channel,
            rank=group.rank,
            duration_ns=duration,
            reason=group.reason,
        )
        self.dram.apply_blackout(blackout, now_ns)
        self.dram.energy.record(CommandKind.VRR, group.num_rows * victims_per_row)
        self.dram.stats.victim_refreshes += group.num_rows
        self.dram.stats.victim_rows_refreshed += group.num_rows * victims_per_row
        self.stats.group_mitigations += 1
        if self.auditor is not None:
            self.auditor.on_group_mitigation(group)

    # ------------------------------------------------------------------ #
    # Refresh window bookkeeping
    # ------------------------------------------------------------------ #

    def _check_refresh_window(self, now_ns: float) -> None:
        window = int(now_ns // self.config.timings.trefw_ns)
        if window <= self._last_refresh_window:
            return
        for crossed in range(self._last_refresh_window + 1, window + 1):
            self.tracker.on_refresh_window(crossed, now_ns)
            if self.auditor is not None:
                self.auditor.on_refresh_window(crossed)
            self.stats.refresh_windows += 1
        self._last_refresh_window = window
