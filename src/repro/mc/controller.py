"""The host-side memory controller.

The controller sits between the shared LLC and the DRAM timing model.  For
every request it:

1. decodes the physical address into DRAM coordinates,
2. asks the RowHammer tracker whether the request must be throttled
   (BlockHammer-style mitigations),
3. services the request through :class:`repro.dram.DRAMSystem`,
4. reports the resulting activation (if any) to the tracker and carries out
   whatever the tracker asks for: extra DRAM accesses to in-DRAM counters,
   victim refreshes, bulk group refreshes, or structure-reset blackouts,
5. keeps the optional ground-truth security auditor informed so every
   simulation can also double as a RowHammer-security check.

It also notifies the tracker of refresh-window (tREFW) boundaries, which is
when periodic structure resets and DAPPER's re-keying happen.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

from repro.config import SystemConfig
from repro.dram.address import AddressMapper, BankAddress, RowAddress
from repro.dram.commands import Blackout, CommandKind, MitigationScope
from repro.dram.dram_system import DRAMSystem
from repro.trackers.base import GroupMitigation, RowHammerTracker, TrackerResponse


@dataclass
class ControllerStats:
    """Controller-level statistics."""

    requests: int = 0
    read_requests: int = 0
    write_requests: int = 0
    throttled_requests: int = 0
    throttle_time_ns: float = 0.0
    tracker_counter_accesses: int = 0
    mitigation_refreshes: int = 0
    group_mitigations: int = 0
    structure_reset_blackouts: int = 0
    refresh_windows: int = 0


class MemoryController:
    """Services memory requests and drives the RowHammer tracker."""

    def __init__(
        self,
        config: SystemConfig,
        dram: DRAMSystem,
        tracker: RowHammerTracker,
        mapper: AddressMapper | None = None,
        auditor=None,
    ):
        self.config = config
        self.dram = dram
        self.tracker = tracker
        self.mapper = mapper or AddressMapper(config.dram)
        self.auditor = auditor
        self.stats = ControllerStats()
        # Optional instrumentation probe (repro.obs); attached by the
        # simulator after warm-up.  None keeps every hook site below a
        # single pointer comparison.
        self.probe = None
        # Event-source adapter for the discrete-event engine: when set to an
        # EventBus with RefreshWindow/TrackerEpoch subscribers, window
        # crossings publish typed events.  None keeps the hot path to a
        # single pointer comparison per crossed window.
        self.event_sink = None
        self._last_refresh_window = 0
        # Conservative lower bound (1 ns of slack for float rounding) on the
        # first timestamp at which a new refresh window starts; requests
        # before it skip the window bookkeeping, anything at or past it
        # re-runs the exact floor-division check.
        self._next_window_ns = config.timings.trefw_ns - 1.0
        self._row_addr_cache: dict[int, RowAddress] = {}
        # Hook-override flags: the base-class hooks are documented no-ops
        # (return 0.0 / do nothing), so the hot path skips the calls entirely
        # for trackers that do not override them.  Behaviour-identical.
        tracker_cls = type(tracker)
        self._tracker_notes_source = (
            tracker_cls.note_request_source
            is not RowHammerTracker.note_request_source
        )
        self._tracker_throttles = (
            tracker_cls.throttle_delay_ns is not RowHammerTracker.throttle_delay_ns
        )
        self._tracker_delays_completion = (
            tracker_cls.completion_delay_ns
            is not RowHammerTracker.completion_delay_ns
        )
        self._tracker_extends_act = (
            tracker_cls.activation_extension_ns
            is not RowHammerTracker.activation_extension_ns
        )

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #

    def service(
        self,
        address: int,
        is_write: bool,
        earliest_ns: float,
        core_id: int = 0,
    ) -> float:
        """Service one request and return its completion time."""
        decoded = self.mapper.decode(address)
        return self.service_row(
            decoded.row_address,
            decoded.bank_address.flat(self.config.dram),
            decoded.channel * self.config.dram.ranks_per_channel + decoded.rank,
            decoded.channel,
            decoded.row,
            is_write,
            earliest_ns,
            core_id,
        )

    def service_row(
        self,
        row_addr: RowAddress,
        bank_index: int,
        rank_index: int,
        channel_index: int,
        row: int,
        is_write: bool,
        earliest_ns: float,
        core_id: int = 0,
    ) -> float:
        """Service one request given predecoded coordinates.

        Single source of truth for the request path: :meth:`service` wraps it
        with address decode, and the batched engine calls it directly with
        coordinates precomputed by :meth:`AddressMapper.decode_batch`.
        """
        stats = self.stats
        stats.requests += 1
        if is_write:
            stats.write_requests += 1
        else:
            stats.read_requests += 1

        if earliest_ns >= self._next_window_ns:
            self._check_refresh_window(earliest_ns)

        tracker = self.tracker
        if self._tracker_notes_source:
            tracker.note_request_source(core_id)

        probe = self.probe
        throttled = False
        if self._tracker_throttles:
            delay = tracker.throttle_delay_ns(row_addr, earliest_ns)
            if delay > 0.0:
                throttled = True
                stats.throttle_time_ns += delay
                if probe is not None:
                    probe.on_throttle(core_id, delay, earliest_ns)
                earliest_ns += delay

        extra_act = (
            tracker.activation_extension_ns() if self._tracker_extends_act else 0.0
        )
        start, completion_ns, activated, row_hit = self.dram.access_flat(
            bank_index,
            rank_index,
            channel_index,
            row,
            is_write,
            earliest_ns,
            extra_act,
        )
        if probe is not None:
            probe.on_dram_access(
                bank_index, row, is_write, completion_ns, activated, row_hit
            )

        if activated:
            if self.auditor is not None:
                self.auditor.on_activation(row_addr, completion_ns)
            response = tracker.on_activation(row_addr, completion_ns)
            if not response.is_empty:
                self._apply_response(response, row_addr, completion_ns)

        if self._tracker_delays_completion:
            response_delay = tracker.completion_delay_ns(row_addr, completion_ns)
            if response_delay > 0.0:
                throttled = True
                stats.throttle_time_ns += response_delay
                completion_ns += response_delay

        # A request delayed at both issue and completion still counts once:
        # throttled_requests counts *requests*, throttle_time_ns the delays.
        if throttled:
            stats.throttled_requests += 1

        return completion_ns

    def row_address_from_flat(self, bank_index: int, row: int) -> RowAddress:
        """Memoized flat-bank-index + row -> :class:`RowAddress`.

        The batched engine works in predecoded flat coordinates; trackers
        expect :class:`RowAddress` objects.  Hot rows repeat constantly, so
        the cache turns reconstruction into a dict hit.
        """
        org = self.config.dram
        key = bank_index * org.rows_per_bank + row
        cached = self._row_addr_cache.get(key)
        if cached is None:
            bank = bank_index % org.banks_per_group
            rest = bank_index // org.banks_per_group
            bank_group = rest % org.bank_groups_per_rank
            rest //= org.bank_groups_per_rank
            rank = rest % org.ranks_per_channel
            channel = rest // org.ranks_per_channel
            cached = RowAddress(BankAddress(channel, rank, bank_group, bank), row)
            self._row_addr_cache[key] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Tracker response handling
    # ------------------------------------------------------------------ #

    def _apply_response(
        self,
        response: TrackerResponse,
        trigger: RowAddress,
        now_ns: float,
    ) -> None:
        probe = self.probe
        prof = probe.profiler if probe is not None else None
        started = perf_counter() if prof is not None else 0.0
        channel = trigger.bank.channel
        rank = trigger.bank.rank

        for _ in range(response.counter_reads):
            self.dram.counter_access(channel, rank, now_ns, is_write=False)
            self.stats.tracker_counter_accesses += 1
        for _ in range(response.counter_writes):
            self.dram.counter_access(channel, rank, now_ns, is_write=True)
            self.stats.tracker_counter_accesses += 1
        if probe is not None and (response.counter_reads or response.counter_writes):
            probe.on_counter_traffic(
                response.counter_reads, response.counter_writes, now_ns
            )

        blast_radius = self.config.rowhammer.blast_radius
        command = self.config.rowhammer.mitigation_command
        for aggressor in response.mitigations:
            self.dram.victim_refresh(aggressor, blast_radius, command, now_ns)
            self.stats.mitigation_refreshes += 1
            if probe is not None:
                probe.on_mitigation(aggressor, now_ns)
            if self.auditor is not None:
                self.auditor.on_mitigation(aggressor, blast_radius)

        for group in response.group_mitigations:
            self._apply_group_mitigation(group, now_ns)

        for blackout in response.blackouts:
            self.dram.apply_blackout(blackout, now_ns)
            self.stats.structure_reset_blackouts += 1
            if probe is not None:
                probe.on_blackout(blackout, now_ns)
            # A rank/channel-wide blackout issued by a tracker corresponds to
            # refreshing every row of that scope, so the ground truth resets.
            if self.auditor is not None and blackout.scope in (
                MitigationScope.RANK,
                MitigationScope.CHANNEL,
            ):
                reset_rank = (
                    blackout.rank if blackout.scope is MitigationScope.RANK else None
                )
                self.auditor.on_structure_reset(blackout.channel, reset_rank)
            # Charge the bulk refresh energy as the equivalent number of
            # auto-refresh commands.
            refresh_equivalents = max(
                1, int(blackout.duration_ns / self.config.timings.trfc_ns)
            )
            self.dram.energy.record(CommandKind.REF, refresh_equivalents)

        if prof is not None:
            prof.add("mitigation-scan", perf_counter() - started)

    def _apply_group_mitigation(self, group: GroupMitigation, now_ns: float) -> None:
        """Charge a DAPPER-S style bulk refresh of one row group.

        Every bank of the rank refreshes its share of the group's member rows
        in parallel, so the rank is blocked for ``rows_per_bank * victims *
        tVRR`` and the energy of all the victim refreshes is charged.
        """
        blast_radius = self.config.rowhammer.blast_radius
        victims_per_row = 2 * blast_radius
        duration = (
            group.rows_per_bank
            * victims_per_row
            * self.config.timings.vrr_per_victim_ns
        )
        blackout = Blackout(
            scope=MitigationScope.RANK,
            channel=group.channel,
            rank=group.rank,
            duration_ns=duration,
            reason=group.reason,
        )
        self.dram.apply_blackout(blackout, now_ns)
        self.dram.energy.record(CommandKind.VRR, group.num_rows * victims_per_row)
        self.dram.stats.victim_refreshes += group.num_rows
        self.dram.stats.victim_rows_refreshed += group.num_rows * victims_per_row
        self.stats.group_mitigations += 1
        if self.probe is not None:
            self.probe.on_group_mitigation(group, now_ns)
        if self.auditor is not None:
            self.auditor.on_group_mitigation(group)

    # ------------------------------------------------------------------ #
    # Refresh window bookkeeping
    # ------------------------------------------------------------------ #

    def _check_refresh_window(self, now_ns: float) -> None:
        trefw = self.config.timings.trefw_ns
        window = int(now_ns // trefw)
        if window <= self._last_refresh_window:
            return
        for crossed in range(self._last_refresh_window + 1, window + 1):
            self.tracker.on_refresh_window(crossed, now_ns)
            if self.probe is not None:
                self.probe.on_refresh_window(crossed, now_ns)
            if self.auditor is not None:
                self.auditor.on_refresh_window(crossed)
            if self.event_sink is not None:
                self._emit_window_events(crossed, now_ns)
            self.stats.refresh_windows += 1
        self._last_refresh_window = window
        self._next_window_ns = (window + 1) * trefw - 1.0

    def _emit_window_events(self, window_index: int, now_ns: float) -> None:
        """Publish window-crossing events to the attached event sink.

        Out of line (and lazily importing the event types) so the refresh
        bookkeeping above stays import-cycle-free and pays one ``None``
        check when no discrete-event bus is attached.
        """
        from repro.sim.events.events import RefreshWindow, TrackerEpoch

        sink = self.event_sink
        if sink.wants(RefreshWindow):
            sink.emit(RefreshWindow(now_ns, window_index))
        if sink.wants(TrackerEpoch):
            sink.emit(self.tracker.epoch_event(window_index, now_ns))
