"""Memory controller: request servicing, tracker integration, mitigation."""

from repro.mc.controller import ControllerStats, MemoryController

__all__ = ["MemoryController", "ControllerStats"]
