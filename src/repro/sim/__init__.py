"""Simulation drivers: the multi-core simulator, metrics, and experiment
helpers used by the evaluation harness, examples and benchmarks.
"""

from repro.sim.metrics import (
    geometric_mean,
    normalized_performance,
    slowdown_percent,
    weighted_speedup,
)
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.experiment import (
    ExperimentRunner,
    WorkloadRun,
    run_workload,
)

__all__ = [
    "Simulator",
    "SimulationResult",
    "run_workload",
    "WorkloadRun",
    "ExperimentRunner",
    "normalized_performance",
    "weighted_speedup",
    "slowdown_percent",
    "geometric_mean",
]
