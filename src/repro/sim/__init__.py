"""Simulation drivers: the multi-core simulator, metrics, experiment helpers
and the parallel sweep engine used by the evaluation harness, examples and
benchmarks.
"""

from repro.sim.metrics import (
    benign_normalized_performance,
    geometric_mean,
    normalized_performance,
    slowdown_percent,
    weighted_speedup,
)
from repro.sim.simulator import SimulationResult, Simulator
from repro.sim.sweep import (
    ResultCache,
    ScenarioSpec,
    SweepOutcome,
    SweepRunner,
    SweepStats,
)
from repro.sim.experiment import (
    ExperimentRunner,
    WorkloadRun,
    run_workload,
)

__all__ = [
    "Simulator",
    "SimulationResult",
    "run_workload",
    "WorkloadRun",
    "ExperimentRunner",
    "ScenarioSpec",
    "SweepRunner",
    "SweepOutcome",
    "SweepStats",
    "ResultCache",
    "normalized_performance",
    "benign_normalized_performance",
    "weighted_speedup",
    "slowdown_percent",
    "geometric_mean",
]
