"""Discrete-event simulation core.

* :mod:`repro.sim.events.events` -- typed event classes and the
  :class:`EventBus` subscription fabric (dependency-free).
* :mod:`repro.sim.events.queue` -- the monotonic :class:`EventQueue` with
  stable tie-breaking.
* :mod:`repro.sim.events.engine` -- :class:`EventDrivenSimulator`, the
  ``engine="event"`` / ``REPRO_SIM_ENGINE=event`` engine.

The engine module is imported lazily (it pulls in the full simulator stack);
``from repro.sim.events import EventDrivenSimulator`` still works via PEP 562.
"""

from repro.sim.events.events import (
    BankActivate,
    BankPrecharge,
    CoreIssue,
    Event,
    EventBus,
    RefreshTick,
    RefreshWindow,
    ServiceComplete,
    TrackerEpoch,
)
from repro.sim.events.queue import EventQueue

__all__ = [
    "BankActivate",
    "BankPrecharge",
    "CoreIssue",
    "Event",
    "EventBus",
    "EventDrivenSimulator",
    "EventQueue",
    "RefreshTick",
    "RefreshWindow",
    "ServiceComplete",
    "TrackerEpoch",
]


def __getattr__(name: str):
    if name == "EventDrivenSimulator":
        from repro.sim.events.engine import EventDrivenSimulator

        return EventDrivenSimulator
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
