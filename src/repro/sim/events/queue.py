"""The monotonic event queue driving the discrete-event engine.

A thin, typed wrapper over :mod:`heapq`: entries are ``(time_ns, sequence,
event)`` triples where ``sequence`` is a monotonically increasing push
counter.  Two properties matter:

* **Stable tie-breaking.**  Events scheduled for the same instant pop in
  push order.  This is exactly the ordering rule of the scalar engine's
  ``(time, sequence, core_id)`` scheduler heap, which is what lets the
  event engine reproduce the reference service order bit-for-bit.
* **Events never compare.**  ``sequence`` is unique, so comparison never
  falls through to the event object itself; arbitrary (even unorderable)
  event payloads are fine.

The queue is deliberately free of any :mod:`repro` dependency so it can be
reused by ad-hoc tooling without importing the simulator stack.
"""

from __future__ import annotations

import heapq

from repro.sim.events.events import Event


class EventQueue:
    """Min-heap of events ordered by ``(time_ns, push sequence)``."""

    __slots__ = ("_heap", "_sequence")

    def __init__(self):
        self._heap: list[tuple[float, int, Event]] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Schedule ``event`` at its ``time_ns``."""
        heapq.heappush(self._heap, (event.time_ns, self._sequence, event))
        self._sequence += 1

    def pop(self) -> Event:
        """Remove and return the earliest event (FIFO among ties)."""
        return heapq.heappop(self._heap)[2]

    def head_time(self) -> float:
        """Time of the earliest scheduled event (queue must be non-empty)."""
        return self._heap[0][0]

    def peek(self) -> Event:
        """The earliest event without removing it (queue must be non-empty)."""
        return self._heap[0][2]
