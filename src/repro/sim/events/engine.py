"""The discrete-event simulation engine.

:class:`EventDrivenSimulator` replaces the per-request scheduler heap of the
scalar/batched engines with a typed :class:`~repro.sim.events.queue.EventQueue`
of :class:`~repro.sim.events.events.CoreIssue` events and advances simulated
time directly from one scheduled event to the next.  Two things fall out of
that structure:

* **Zero-cost idle time.**  Nothing between two scheduled events is ever
  stepped.  When the queue goes *quiescent* -- a single budgeted core remains
  runnable, so no inter-core interleaving decision can ever be needed again --
  the engine switches to a vectorized stretch executor: a residency bitmap
  over the core's line domain classifies whole blocks of future accesses as
  LLC hits at numpy speed, and only the (rare) misses fall back to the
  per-request path.  Long idle-heavy horizons (full-tREFW windows,
  multi-refresh-window attacks, trace replay) that the fixed-step core cannot
  afford complete an order of magnitude faster.
* **An observable event fabric.**  Component adapters
  (:meth:`CoreModel.issue_event`, :meth:`MemoryController._emit_window_events`,
  :meth:`RowHammerTracker.epoch_event`, :meth:`RefreshScheduler.tick_events`,
  :meth:`Bank.activation_events`) publish typed events into ``self.events``
  (an :class:`~repro.sim.events.events.EventBus`).  Emission is entirely
  subscription-gated: with no subscribers the fabric costs one hoisted boolean
  and the fast paths stay engaged; with subscribers every serviced request is
  routed through the scalar reference path so the event stream is complete.

Bit-identity with the scalar reference holds by construction:

* The event queue orders ``(time_ns, push sequence)`` exactly like the scalar
  scheduler heap orders ``(time, sequence, core_id)`` -- sequence numbers are
  assigned in the same chronological push order, so pops agree; ties resolve
  to the older entry in both.
* The quiescent stretch executor performs, per entry, the same floating-point
  operations on the same operands in the same order as the batched inner loop
  (``gap / peak`` is precomputed elementwise by numpy, which is bit-identical
  to the scalar division for int64 gaps), pops/pushes the same MLP heap
  values, and touches the LLC sets through the same OrderedDict operations.
  The residency bitmap only replaces the ``tag in cache_set`` membership
  *test* for runs it can prove are hits; every state mutation is unchanged.
* Misses, bypass traffic, probes and bus-observed runs all route through the
  same controller/LLC code paths the other engines use.

Parity is pinned by ``tests/test_event_parity.py`` at the same bar
``tests/test_batch_parity.py`` sets for the batched engine.
"""

from __future__ import annotations

import heapq
from time import perf_counter

from repro.cpu.tracefile import FileTraceGenerator
from repro.cpu.trace import WorkloadTraceGenerator
from repro.sim import batch as _batch
from repro.sim.batch import BatchedSimulator, _CoreFeed
from repro.sim.events.events import (
    BankActivate,
    BankPrecharge,
    CoreIssue,
    EventBus,
    RefreshTick,
    RefreshWindow,
    ServiceComplete,
    TrackerEpoch,
)
from repro.sim.events.queue import EventQueue

#: Upper bound on a residency-bitmap line domain (2**26 lines = 4 GiB of
#: 64-byte lines).  Generators with a wider or unknown address domain simply
#: do not get the vectorized stretch executor.
_MAX_DOMAIN_LINES = 1 << 26

#: Entries classified per vectorized hit-run probe of the stretch executor.
_FAST_CHUNK = 2048


def _line_domain(generator, line_size: int) -> tuple[int, int]:
    """``(base_line, num_lines)`` covering every address the generator can
    emit, or ``(0, 0)`` when no finite domain is known.

    :class:`WorkloadTraceGenerator` walks a private contiguous footprint;
    :class:`FileTraceGenerator` replays a fixed entry list.  Anything else
    (attack kernels, ad-hoc generators) reports no domain and runs on the
    per-request path.
    """
    if isinstance(generator, WorkloadTraceGenerator):
        return generator._base_line, generator._footprint_lines
    if isinstance(generator, FileTraceGenerator):
        addresses = generator._addresses
        if not addresses:
            return 0, 0
        np = _batch._np
        if np is not None:
            lines = np.asarray(addresses, dtype=np.int64) // line_size
            base = int(lines.min())
            size = int(lines.max()) - base + 1
        else:
            lines = [address // line_size for address in addresses]
            base = min(lines)
            size = max(lines) - base + 1
        if size > _MAX_DOMAIN_LINES:
            return 0, 0
        return base, size
    return 0, 0


class _EventFeed(_CoreFeed):
    """A :class:`_CoreFeed` that can grow stretch-executor side arrays.

    The extra arrays (``lines_np`` for bitmap lookups, ``gap_ns`` for the
    precomputed per-entry issue deltas, ``gaps_np`` for bulk instruction
    sums) are only materialised once the engine's quiescent fast path
    engages for this core; until then ``refill`` is exactly the batched
    engine's.
    """

    __slots__ = (
        "dom_base", "dom_size", "fast_active", "peak",
        "gaps_np", "gap_ns", "gap_ns_np", "lines_np", "writes_np",
    )

    def __init__(self, core, mapper, config, batch: int):
        super().__init__(core, mapper, config, batch)
        self.fast_active = False
        self.peak = core.config.peak_instructions_per_ns
        self.gaps_np = self.gap_ns = self.gap_ns_np = None
        self.lines_np = self.writes_np = None
        self.dom_base, self.dom_size = _line_domain(
            core.generator, self.line_size
        )

    def refill(self) -> None:
        if not self.fast_active:
            super().refill()
            return
        # Lean refill for the engaged fast path: skip the per-entry DRAM
        # predecode (misses are rare and decode lazily through
        # ``controller.service``, the same path the pure-python batched
        # refill uses) and derive set/tag lists from one numpy line array.
        np = _batch._np
        core = self.core
        count = self.batch
        budget = core.request_budget
        if budget is not None:
            count = min(count, budget - core.requests_issued)
        gaps, addresses, writes = _batch.generator_batch(
            self.generator, count
        )
        self.gaps = gaps
        self.addresses = addresses
        self.writes = writes
        self.flat_banks = None
        self.rows = self.rank_idx = self.channels = None
        lines = np.asarray(addresses, dtype=np.int64) // self.line_size
        self.lines_np = lines
        self.set_idx = (lines % self.num_sets).tolist()
        self.tags = (lines // self.num_sets).tolist()
        self.gaps_np = np.asarray(gaps, dtype=np.int64)
        self.gap_ns_np = self.gaps_np / self.peak
        self.gap_ns = self.gap_ns_np.tolist()
        self.writes_np = np.asarray(writes, dtype=bool)
        self.size = count
        self.idx = 0

    def activate_fast(self) -> None:
        self.fast_active = True
        if self.gaps is not None:
            self._compute_fast_arrays()

    def _compute_fast_arrays(self) -> None:
        np = _batch._np
        self.gaps_np = np.asarray(self.gaps, dtype=np.int64)
        # Elementwise int64 / float is bit-identical to the scalar
        # ``gap / peak`` (exact int->float conversion, one IEEE divide).
        self.gap_ns_np = self.gaps_np / self.peak
        self.gap_ns = self.gap_ns_np.tolist()
        self.lines_np = (
            np.asarray(self.addresses, dtype=np.int64) // self.line_size
        )
        self.writes_np = np.asarray(self.writes, dtype=bool)


class EventDrivenSimulator(BatchedSimulator):
    """Discrete-event engine; bit-identical to :class:`Simulator`.

    Selected via ``engine="event"`` / ``REPRO_SIM_ENGINE=event``.  Subscribe
    handlers on :attr:`events` *before* :meth:`run` to observe the
    simulation; see :mod:`repro.sim.events.events` for the taxonomy.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: The observational event bus for this simulation.
        self.events = EventBus()
        self._tick_index = 0
        self._ticks_wanted = False

    # ------------------------------------------------------------------ #
    # Observed service path: the scalar reference path plus event emission.

    def _observed_service(
        self, address: int, is_write: bool, earliest_ns: float, core_id: int
    ) -> float:
        """Service one DRAM request and publish its observational events.

        Arithmetic-identical to :meth:`MemoryController.service` (same
        decode, same ``service_row``); the only additions are reads of bank
        state before/after to reconstruct ACT/PRE command events.
        """
        controller = self.controller
        org = self.config.dram
        decoded = self.mapper.decode(address)
        flat = decoded.bank_address.flat(org)
        bank = self.dram._banks[flat]
        previous_row = bank.open_row
        activations_before = bank.activations
        completion = controller.service_row(
            decoded.row_address,
            flat,
            decoded.channel * org.ranks_per_channel + decoded.rank,
            decoded.channel,
            decoded.row,
            is_write,
            earliest_ns,
            core_id,
        )
        bus = self.events
        if bank.activations != activations_before:
            for event in bank.activation_events(
                flat, previous_row, decoded.row, completion
            ):
                if bus.wants(type(event)):
                    bus.emit(event)
        if self._ticks_wanted:
            ticks = self.dram.refresh.tick_events(self._tick_index, completion)
            if ticks:
                self._tick_index = ticks[-1].index
                for event in ticks:
                    bus.emit(event)
        if bus.wants(ServiceComplete):
            bus.emit(
                ServiceComplete(
                    completion, core_id, address, is_write, earliest_ns
                )
            )
        return completion

    def _service_addr_observed(
        self, core, address: int, is_write: bool, issue_ns: float
    ) -> float:
        """:meth:`Simulator._service_addr` with event emission on DRAM work.

        Active whenever the bus has a subscriber to a per-request event kind;
        probe hooks fire exactly as in the reference path, so probes and
        subscribers compose.
        """
        probe = self.probe
        if core.generator.bypasses_llc:
            completion = self._observed_service(
                address, is_write, issue_ns, core.core_id
            )
            if probe is not None:
                probe.on_request(
                    core.core_id, issue_ns, completion, is_write, False, True
                )
            return completion

        llc_result = self.llc.access(address, is_write, core.core_id)
        if llc_result.hit:
            completion = issue_ns + self.config.llc.hit_latency_ns
            if probe is not None:
                probe.on_request(
                    core.core_id, issue_ns, completion, is_write, True, False
                )
            return completion

        completion = self._observed_service(
            address, is_write, issue_ns, core.core_id
        )
        if llc_result.writeback and llc_result.evicted_line is not None:
            writeback_address = (
                llc_result.evicted_line * self.config.llc.line_size_bytes
            )
            self._observed_service(
                writeback_address, True, completion, core.core_id
            )
        completion += self.config.llc.hit_latency_ns
        if probe is not None:
            probe.on_request(
                core.core_id, issue_ns, completion, is_write, False, False
            )
        return completion

    # ------------------------------------------------------------------ #

    def _build_residency(self, feed: _EventFeed, np):
        """Bool bitmap of which lines of ``feed``'s domain are LLC-resident.

        Built once, at the instant the queue goes quiescent; from then on
        only this core mutates the LLC, and the slow-path miss branch keeps
        the bitmap in sync with insertions and evictions.
        """
        dom_base = feed.dom_base
        dom_end = dom_base + feed.dom_size
        bitmap = np.zeros(feed.dom_size, dtype=bool)
        num_sets = self.llc._num_sets
        for set_index, cache_set in enumerate(self.llc._sets):
            for tag in cache_set:
                line = tag * num_sets + set_index
                if dom_base <= line < dom_end:
                    bitmap[line - dom_base] = True
        return bitmap

    # ------------------------------------------------------------------ #

    def _drain(self):
        """Advance every core until all benign budgets are exhausted.

        Structured exactly like :meth:`BatchedSimulator._drain` (same
        hoists, same inlined hit/miss/bypass branches, same write-back
        discipline), with three changes: the scheduler heap is an
        :class:`EventQueue` of :class:`CoreIssue` events, bus subscribers
        reroute servicing through the observed reference path, and a
        quiescent queue engages the vectorized stretch executor.
        """
        cores_by_id = {core.core_id: core for core in self.cores}
        benign_pending = {
            core.core_id
            for core in self.cores
            if core.request_budget is not None
        }
        if not benign_pending:
            raise ValueError("at least one core needs a finite request budget")

        bus = self.events
        controller = self.controller
        # Component adapter: the controller publishes window/epoch events
        # itself (lazily, inside _check_refresh_window) when a sink is set.
        controller.event_sink = (
            bus if bus.wants_any(RefreshWindow, TrackerEpoch) else None
        )
        observing = bus.wants_any(
            ServiceComplete, BankActivate, BankPrecharge, RefreshTick
        )
        self._ticks_wanted = bus.wants(RefreshTick)
        # Read numpy through the batch module so the pure-python fallback
        # (tests monkeypatch repro.sim.batch._np to None) disables the
        # vectorized stretch executor here too.
        np = _batch._np

        feeds = {
            core.core_id: _EventFeed(
                core, self.mapper, self.config, self.BATCH
            )
            for core in self.cores
        }

        llc = self.llc
        sets = llc._sets
        num_sets = llc._num_sets
        data_ways = llc._data_ways
        stats = llc.stats
        per_core_hits = stats.per_core_hits
        per_core_misses = stats.per_core_misses
        hit_latency = self.config.llc.hit_latency_ns
        line_size = self.config.llc.line_size_bytes
        service_row = controller.service_row
        service = controller.service
        row_from_flat = controller.row_address_from_flat
        row_cache = controller._row_addr_cache
        rows_per_bank = self.config.dram.rows_per_bank
        fast_service = (
            controller.auditor is None
            and not controller._tracker_notes_source
            and not controller._tracker_throttles
            and not controller._tracker_delays_completion
            and not controller._tracker_extends_act
        )
        cstats = controller.stats
        access_flat = controller.dram.access_flat
        on_activation = controller.tracker.on_activation
        apply_response = controller._apply_response
        heappush = heapq.heappush
        heappop = heapq.heappop
        probe = self.probe
        # A probe or a subscribed bus routes every request through the
        # scalar reference path (arithmetic-identical, parity-pinned), so
        # hook sites fire and events are emitted; only wall-clock changes.
        if observing:
            route = self._service_addr_observed
        elif probe is not None:
            route = self._service_addr
        else:
            route = None
        prof = probe.profiler if probe is not None else None

        queue = EventQueue()
        for core in self.cores:
            queue.push(core.issue_event())

        # Quiescent stretch executor state.  Eligibility is per drain; the
        # bitmap is built at most once (only one core can ever go quiescent:
        # the last budgeted one, after every other core left the queue).
        fast_env = route is None and np is not None
        fastmap = None
        dom_base = dom_end = 0

        while benign_pending and queue:
            core_id = queue.pop().core_id
            core = cores_by_id[core_id]
            feed = feeds[core_id]
            budget = core.request_budget
            bypasses = feed.bypasses_llc
            fast = False
            if (
                not queue
                and fast_env
                and budget is not None
                and not bypasses
                and data_ways
                and feed.dom_size
            ):
                if fastmap is None:
                    fastmap = self._build_residency(feed, np)
                    dom_base = feed.dom_base
                    dom_end = dom_base + feed.dom_size
                feed.activate_fast()
                fast = True
            outstanding = core._outstanding
            mlp = core.effective_mlp
            peak = core.config.peak_instructions_per_ns
            cpu_time = core.cpu_time_ns
            instructions = core.instructions_retired
            requests = core.requests_issued
            i = feed.idx
            size = feed.size
            gaps = feed.gaps
            writes = feed.writes
            rows = feed.rows
            flat_banks = feed.flat_banks
            rank_idx = feed.rank_idx
            channels = feed.channels
            tags_arr = feed.tags
            set_arr = feed.set_idx
            addresses = feed.addresses
            gap_ns = feed.gap_ns
            gap_ns_np = feed.gap_ns_np
            gaps_np = feed.gaps_np
            lines_np = feed.lines_np
            writes_np = feed.writes_np
            while True:
                if i >= size:
                    core.requests_issued = requests  # refill reads the budget
                    if prof is not None:
                        _t = perf_counter()
                        feed.refill()
                        prof.add("generation", perf_counter() - _t)
                    else:
                        feed.refill()
                    i = 0
                    size = feed.size
                    gaps = feed.gaps
                    writes = feed.writes
                    rows = feed.rows
                    flat_banks = feed.flat_banks
                    rank_idx = feed.rank_idx
                    channels = feed.channels
                    tags_arr = feed.tags
                    set_arr = feed.set_idx
                    addresses = feed.addresses
                    gap_ns = feed.gap_ns
                    gap_ns_np = feed.gap_ns_np
                    gaps_np = feed.gaps_np
                    lines_np = feed.lines_np
                    writes_np = feed.writes_np

                if fast:
                    # Classify the next block: the leading run of resident
                    # lines is provably all LLC hits, executed in a tight
                    # loop with bulk statistics; the first non-resident
                    # entry (a miss) falls through to the reference branch
                    # below, which keeps the bitmap in sync.
                    end = i + _FAST_CHUNK
                    if end > size:
                        end = size
                    cap = budget - requests
                    if end - i > cap:
                        end = i + cap
                    resident = fastmap[lines_np[i:end] - dom_base]
                    run = int(resident.argmin())
                    if resident[run]:
                        run = end - i
                    if run:
                        stop = i + run
                        # Whole-run vector mode.  When (a) every inter-access
                        # gap is at least the hit latency and (b) nothing in
                        # the outstanding-miss heap completes after the first
                        # issue, the MLP release clamp provably never binds:
                        # every issue time is exactly ``previous + gap``.
                        # ``np.add.accumulate`` performs that identical chain
                        # of IEEE additions, the per-set LRU state only
                        # depends on each line's *last* access, and the heap's
                        # final content is the tail of the sorted union of old
                        # entries and in-run hit completions (pops always
                        # remove the global minimum because completions arrive
                        # in non-decreasing order).
                        if (
                            run >= 16
                            and float(gap_ns_np[i:stop].min()) >= hit_latency
                            and (
                                not outstanding
                                or max(outstanding) <= cpu_time + gap_ns[i]
                            )
                        ):
                            seq = np.empty(run + 1)
                            seq[0] = cpu_time
                            seq[1:] = gap_ns_np[i:stop]
                            issues = np.add.accumulate(seq)
                            cpu_time = float(issues[run])
                            run_writes = writes_np[i:stop]
                            last_rev = np.unique(
                                lines_np[i:stop][::-1], return_index=True
                            )[1]
                            for p in np.sort((run - 1) - last_rev).tolist():
                                j = i + p
                                sets[set_arr[j]].move_to_end(tags_arr[j])
                            for p in np.nonzero(run_writes)[0].tolist():
                                j = i + p
                                sets[set_arr[j]][tags_arr[j]] = True
                            # Only the heap's final content matters, and it
                            # is the largest ``final_len`` values of the
                            # union -- materialise just that tail.
                            read_pos = np.nonzero(~run_writes)[0]
                            n_reads = read_pos.shape[0]
                            if n_reads >= mlp:
                                outstanding[:] = (
                                    issues[1:][read_pos[n_reads - mlp:]]
                                    + hit_latency
                                ).tolist()
                            elif n_reads:
                                merged = sorted(outstanding)
                                merged.extend(
                                    (
                                        issues[1:][read_pos] + hit_latency
                                    ).tolist()
                                )
                                outstanding[:] = merged[
                                    max(0, len(merged) - mlp):
                                ]
                        else:
                            j = i
                            while j < stop:
                                issue_ns = cpu_time + gap_ns[j]
                                if len(outstanding) >= mlp:
                                    release = heappop(outstanding)
                                    if release > issue_ns:
                                        issue_ns = release
                                cpu_time = issue_ns
                                tag = tags_arr[j]
                                cache_set = sets[set_arr[j]]
                                cache_set.move_to_end(tag)
                                if writes[j]:
                                    cache_set[tag] = True
                                else:
                                    heappush(
                                        outstanding, issue_ns + hit_latency
                                    )
                                j += 1
                        stats.hits += run
                        per_core_hits[core_id] = (
                            per_core_hits.get(core_id, 0) + run
                        )
                        requests += run
                        instructions += int(gaps_np[i:stop].sum())
                        i = stop
                        if requests >= budget:
                            feed.idx = i
                            core.cpu_time_ns = cpu_time
                            core.instructions_retired = instructions
                            core.requests_issued = requests
                            core.note_progress()
                            benign_pending.discard(core_id)
                            break
                        continue

                is_write = writes[i]
                gap = gaps[i]
                issue_ns = cpu_time + gap / peak
                if len(outstanding) >= mlp:
                    release = heappop(outstanding)
                    if release > issue_ns:
                        issue_ns = release
                cpu_time = issue_ns
                instructions += gap
                requests += 1

                if route is not None:
                    completion_ns = route(
                        core, addresses[i], is_write, issue_ns
                    )
                elif bypasses:
                    row = rows[i]
                    flat = flat_banks[i]
                    row_addr = row_cache.get(flat * rows_per_bank + row)
                    if row_addr is None:
                        row_addr = row_from_flat(flat, row)
                    if fast_service:
                        cstats.requests += 1
                        if is_write:
                            cstats.write_requests += 1
                        else:
                            cstats.read_requests += 1
                        if issue_ns >= controller._next_window_ns:
                            controller._check_refresh_window(issue_ns)
                        _s, completion_ns, activated, _h = access_flat(
                            flat, rank_idx[i], channels[i], row,
                            is_write, issue_ns, 0.0,
                        )
                        if activated:
                            response = on_activation(row_addr, completion_ns)
                            if not response.is_empty:
                                apply_response(
                                    response, row_addr, completion_ns
                                )
                    else:
                        completion_ns = service_row(
                            row_addr, flat, rank_idx[i],
                            channels[i], row, is_write, issue_ns, core_id,
                        )
                else:
                    tag = tags_arr[i]
                    cache_set = sets[set_arr[i]]
                    if tag in cache_set:
                        cache_set.move_to_end(tag)
                        if is_write:
                            cache_set[tag] = True
                        stats.hits += 1
                        per_core_hits[core_id] = (
                            per_core_hits.get(core_id, 0) + 1
                        )
                        completion_ns = issue_ns + hit_latency
                    else:
                        stats.misses += 1
                        per_core_misses[core_id] = (
                            per_core_misses.get(core_id, 0) + 1
                        )
                        writeback_line = None
                        if data_ways:
                            if len(cache_set) >= data_ways:
                                evicted_tag, dirty = cache_set.popitem(
                                    last=False
                                )
                                stats.evictions += 1
                                if dirty:
                                    stats.dirty_evictions += 1
                                    writeback_line = (
                                        evicted_tag * num_sets + set_arr[i]
                                    )
                                if fast:
                                    evicted_line = (
                                        evicted_tag * num_sets + set_arr[i]
                                    )
                                    if dom_base <= evicted_line < dom_end:
                                        fastmap[evicted_line - dom_base] = (
                                            False
                                        )
                            cache_set[tag] = is_write
                            if fast:
                                line = tag * num_sets + set_arr[i]
                                if dom_base <= line < dom_end:
                                    fastmap[line - dom_base] = True
                        if flat_banks is not None:
                            row = rows[i]
                            flat = flat_banks[i]
                            row_addr = row_cache.get(
                                flat * rows_per_bank + row
                            )
                            if row_addr is None:
                                row_addr = row_from_flat(flat, row)
                            if fast_service:
                                cstats.requests += 1
                                if is_write:
                                    cstats.write_requests += 1
                                else:
                                    cstats.read_requests += 1
                                if issue_ns >= controller._next_window_ns:
                                    controller._check_refresh_window(issue_ns)
                                _s, completion_ns, activated, _h = access_flat(
                                    flat, rank_idx[i], channels[i], row,
                                    is_write, issue_ns, 0.0,
                                )
                                if activated:
                                    response = on_activation(
                                        row_addr, completion_ns
                                    )
                                    if not response.is_empty:
                                        apply_response(
                                            response, row_addr, completion_ns
                                        )
                            else:
                                completion_ns = service_row(
                                    row_addr, flat,
                                    rank_idx[i], channels[i], row,
                                    is_write, issue_ns, core_id,
                                )
                        else:
                            completion_ns = service(
                                addresses[i], is_write, issue_ns, core_id
                            )
                        if writeback_line is not None:
                            service(
                                writeback_line * line_size, True,
                                completion_ns, core_id,
                            )
                        completion_ns += hit_latency

                i += 1
                if not is_write:
                    heappush(outstanding, completion_ns)
                if budget is not None and requests >= budget:
                    feed.idx = i
                    core.cpu_time_ns = cpu_time
                    core.instructions_retired = instructions
                    core.requests_issued = requests
                    core.note_progress()
                    benign_pending.discard(core_id)
                    break
                if outstanding and len(outstanding) >= mlp:
                    head = outstanding[0]
                    next_ns = head if head > cpu_time else cpu_time
                else:
                    next_ns = cpu_time
                # Strictly earlier than the queue head: on a tie the scalar
                # engine serves the queue entry first (older sequence).
                if queue and queue.head_time() <= next_ns:
                    feed.idx = i
                    core.cpu_time_ns = cpu_time
                    core.instructions_retired = instructions
                    core.requests_issued = requests
                    queue.push(CoreIssue(next_ns, core_id))
                    break
