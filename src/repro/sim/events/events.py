"""Typed simulation events and the subscription bus they flow through.

The discrete-event engine (:mod:`repro.sim.events.engine`) represents every
scheduling decision and every observable state change as a typed event:

===================  ======================================================
:class:`CoreIssue`       a core is ready to issue its next memory request
:class:`ServiceComplete` the controller finished servicing a request
:class:`BankActivate`    a DRAM bank opened a row (ACT)
:class:`BankPrecharge`   a DRAM bank closed its open row (PRE)
:class:`RefreshTick`     one per-tREFI auto-refresh (REF) command elapsed
:class:`RefreshWindow`   the simulation crossed a tREFW boundary
:class:`TrackerEpoch`    the tracker ran its periodic refresh-window reset
===================  ======================================================

:class:`CoreIssue` events are *scheduling* events: they live in the engine's
:class:`~repro.sim.events.queue.EventQueue` and drive simulated time forward.
All other event kinds are *observational*: component adapters emit them into
the :class:`EventBus` only while at least one handler is subscribed to the
kind, so an unobserved simulation pays nothing for the event fabric (a single
``None`` check on the controller, and a hoisted boolean in the engine).

Handlers never influence timing or results -- the engine is parity-pinned
against the scalar reference with and without subscribers -- which is what
makes the bus safe to use for tracing, assertions and ad-hoc analysis.

This module is intentionally dependency-free (no imports from the rest of
:mod:`repro`) so component adapters can import it lazily without creating
import cycles through :mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True, slots=True)
class Event:
    """Base class: something that happens at one simulated instant."""

    time_ns: float


@dataclass(frozen=True, slots=True)
class CoreIssue(Event):
    """Core ``core_id`` is ready to issue its next request at ``time_ns``.

    The engine's scheduling event: the event queue holds one per runnable
    core, ordered by time with stable FIFO tie-breaking, exactly mirroring
    the scalar engine's ``(time, sequence, core_id)`` scheduler heap.
    """

    core_id: int


@dataclass(frozen=True, slots=True)
class ServiceComplete(Event):
    """The memory controller finished servicing one request.

    ``time_ns`` is the completion time.  Only requests that reach the
    controller produce one -- LLC hits complete inside the cache and never
    become controller work, in every engine.
    """

    core_id: int
    address: int
    is_write: bool
    issue_ns: float


@dataclass(frozen=True, slots=True)
class BankActivate(Event):
    """Bank ``bank_index`` activated (opened) ``row`` at ``time_ns``."""

    bank_index: int
    row: int


@dataclass(frozen=True, slots=True)
class BankPrecharge(Event):
    """Bank ``bank_index`` precharged (closed) ``row``.

    Emitted on row conflicts, where the open-page policy implies a PRE of
    the previously open row before the new ACT.
    """

    bank_index: int
    row: int


@dataclass(frozen=True, slots=True)
class RefreshTick(Event):
    """One per-tREFI auto-refresh (REF) command, issued to every rank.

    ``index`` counts REF commands since time zero (``index * tREFI`` is the
    command's nominal time).  Ticks are enumerated lazily between serviced
    requests, so long idle stretches cost nothing unless someone subscribes.
    """

    index: int


@dataclass(frozen=True, slots=True)
class RefreshWindow(Event):
    """The simulation crossed into refresh window ``window_index``.

    Window crossings are detected lazily at request-service time (the same
    rule every engine uses), so ``time_ns`` is the service time of the first
    DRAM request observed inside or after the new window -- not the nominal
    boundary ``window_index * tREFW``.
    """

    window_index: int


@dataclass(frozen=True, slots=True)
class TrackerEpoch(Event):
    """The tracker ran its periodic per-tREFW housekeeping.

    Emitted right after :meth:`RowHammerTracker.on_refresh_window` for
    window ``window_index`` returned; ``tracker_name`` identifies which
    mitigation's epoch elapsed.
    """

    window_index: int
    tracker_name: str


class EventBus:
    """Exact-type publish/subscribe fabric for observational events.

    ``subscribe`` registers a handler for one event class; ``emit``
    dispatches an event to the handlers of its exact type.  Emission sites
    guard on :meth:`wants` (or on a hoisted boolean derived from it), so a
    bus with no subscribers adds no per-request work.
    """

    def __init__(self):
        self._handlers: dict[type, list[Callable]] = {}

    def subscribe(self, event_type: type, handler: Callable) -> None:
        """Register ``handler`` to receive events of exactly ``event_type``."""
        if not (isinstance(event_type, type) and issubclass(event_type, Event)):
            raise TypeError(f"not an event type: {event_type!r}")
        self._handlers.setdefault(event_type, []).append(handler)

    def unsubscribe(self, event_type: type, handler: Callable) -> None:
        """Remove a previously subscribed handler (no-op if absent)."""
        handlers = self._handlers.get(event_type)
        if handlers is None:
            return
        try:
            handlers.remove(handler)
        except ValueError:
            return
        if not handlers:
            del self._handlers[event_type]

    def wants(self, event_type: type) -> bool:
        """Whether at least one handler is subscribed to ``event_type``."""
        return event_type in self._handlers

    def wants_any(self, *event_types: type) -> bool:
        """Whether any of ``event_types`` has a subscriber."""
        return any(t in self._handlers for t in event_types)

    @property
    def has_subscribers(self) -> bool:
        return bool(self._handlers)

    def emit(self, event: Event) -> None:
        """Deliver ``event`` to the handlers of its exact type."""
        handlers = self._handlers.get(type(event))
        if handlers:
            for handler in handlers:
                handler(event)
