"""Declarative scenario sweeps: parallel fan-out and on-disk result caching.

The paper's evaluation is a large cross-product (trackers x attacks x
workloads x thresholds) in which many scenarios share the same insecure
baseline and many figures re-run scenarios other figures already ran.  This
module turns a scenario into data so that work can be planned, deduplicated,
distributed and memoized:

:class:`ScenarioSpec`
    A frozen, picklable description of one simulation (tracker, workload,
    attack, seed, request budget, configuration).  Its :meth:`cache_key` is a
    stable content hash over every simulation-affecting field, including the
    full system configuration and a code-version salt.

:class:`CoreAssignment`
    One core's role inside a heterogeneous scenario.  A tuple of assignments
    (a *core plan*) attached to a :class:`ScenarioSpec` describes shapes the
    classic single-attacker layout cannot: several heterogeneous attacker
    cores (each with its own hammer rate), mixed benign workload blends with
    per-core intensity, and deliberately idle cores.  Plans flow through the
    same cache/pool machinery as classic specs.

:class:`SweepRunner`
    Executes batches of specs.  Within a batch, identical simulations
    (typically the shared insecure baselines) are simulated exactly once;
    completed results are memoized in memory and -- when ``cache_dir`` or
    ``store`` is given -- persisted under the scenario hash through a
    pluggable :mod:`repro.store` backend (a JSON cache directory, or the
    SQLite experiment warehouse for a ``.sqlite`` / ``.db`` path), so
    repeated figure regeneration and repeated CLI invocations are served
    from cache.
    With ``jobs > 1`` pending simulations fan out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; results cross the
    process boundary through :meth:`SimulationResult.to_dict` /
    :meth:`SimulationResult.from_dict`, the same serialization the cache uses,
    so serial, parallel and cache-replayed sweeps are bit-identical.

:class:`SweepOutcome`
    One scenario's result together with its (batch-deduplicated) insecure
    baseline and the paper's normalized-performance metric.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import time
import tracemalloc
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field

from repro.config import SystemConfig, baseline_config
from repro.cpu.workloads import WorkloadProfile, get_workload, scale_profile
from repro.sim.metrics import (
    benign_normalized_performance,
    matched_benign_normalized_performance,
)
from repro.sim.simulator import SimulationResult

#: Salt mixed into every scenario hash.  Bump whenever a change to the
#: simulator alters results for unchanged configurations, so stale on-disk
#: cache entries are never replayed as current results.
#: v2: ControllerStats.throttled_requests counts unique requests (a request
#: delayed at both issue and completion used to count twice).
CODE_VERSION = "dapper-sim-v2"

_LOG = logging.getLogger("repro.sweep")


@dataclass(frozen=True)
class CoreAssignment:
    """One core's role in a heterogeneous scenario.

    ``role`` is one of:

    ``"workload"``
        The core runs a benign synthetic workload -- either a registered
        ``name`` or an explicit ``profile`` -- whose memory intensity is
        multiplied by ``intensity`` (0.5 = half the APKI, 2.0 = double).
    ``"attack"``
        The core runs the attack kernel ``name``.  ``hammer_rate`` in
        ``(0, 1]`` scales the attacker's aggressiveness: 1.0 is the paper's
        full-rate attacker, smaller values throttle both its issue rate and
        its memory-level parallelism proportionally.
    ``"trace"``
        The core replays a recorded trace file (``trace`` is the path; see
        :mod:`repro.cpu.tracefile`) through a
        :class:`~repro.cpu.tracefile.FileTraceGenerator`, looping when the
        budget outlasts the file.  Trace cores hash by the trace *content*
        (SHA-256), not the path.
    ``"idle"``
        The core issues no memory traffic (used by plan baselines, where
        attacker cores are replaced by idle cores).
    """

    role: str
    name: str | None = None
    profile: WorkloadProfile | None = None
    intensity: float = 1.0
    hammer_rate: float = 1.0
    trace: str | None = None

    def __post_init__(self):
        if self.role not in ("workload", "attack", "trace", "idle"):
            raise ValueError(
                f"unknown core role {self.role!r}; "
                "expected 'workload', 'attack', 'trace' or 'idle'"
            )
        if self.role == "workload":
            if self.name is None and self.profile is None:
                raise ValueError("workload assignment needs a name or a profile")
            if not self.intensity > 0:
                raise ValueError(f"intensity must be positive, got {self.intensity}")
        if self.role == "attack":
            if not self.name:
                raise ValueError("attack assignment needs an attack name")
            if not 0 < self.hammer_rate <= 1.0:
                raise ValueError(
                    f"hammer_rate must be in (0, 1], got {self.hammer_rate}"
                )
        if self.role == "trace" and not self.trace:
            raise ValueError("trace assignment needs a trace file path")
        if self.role != "trace" and self.trace is not None:
            raise ValueError(f"{self.role!r} assignment takes no trace path")
        if self.role == "idle" and (self.name or self.profile is not None):
            raise ValueError("idle assignment takes no workload or attack")

    # ------------------------------------------------------------------ #

    @property
    def is_attacker(self) -> bool:
        return self.role == "attack"

    def resolved_profile(self) -> WorkloadProfile:
        """The benign profile this assignment runs (intensity applied)."""
        if self.role != "workload":
            raise ValueError(f"{self.role!r} assignment has no workload profile")
        profile = self.profile if self.profile is not None else get_workload(self.name)
        return scale_profile(profile, self.intensity)

    def trace_info(self):
        """Parsed (memoized) trace file of a ``"trace"`` assignment."""
        if self.role != "trace":
            raise ValueError(f"{self.role!r} assignment has no trace file")
        from repro.cpu.tracefile import load_trace_info

        return load_trace_info(self.trace)

    def label(self) -> str:
        """Compact human-readable form used by reports and ``describe()``."""
        if self.role == "idle":
            return "idle"
        if self.role == "attack":
            suffix = "" if self.hammer_rate == 1.0 else f"@r{self.hammer_rate:g}"
            return f"attack:{self.name}{suffix}"
        if self.role == "trace":
            from pathlib import Path

            return f"trace:{Path(self.trace).name}"
        name = self.name if self.name is not None else self.profile.name
        suffix = "" if self.intensity == 1.0 else f"@x{self.intensity:g}"
        return f"{name}{suffix}"


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one simulation scenario.

    ``workload`` may be a registered workload name or an explicit
    :class:`WorkloadProfile`; both hash by the profile's contents, so a named
    workload and an identical ad-hoc profile share cache entries.
    ``attack_matched_baseline`` selects which insecure baseline the scenario
    is normalised against (see :meth:`baseline_spec`); it does not affect the
    measured simulation itself and is therefore not part of the cache key.

    ``core_plan`` switches the scenario from the classic layout (core 0 runs
    ``attack`` when set, every other core a homogeneous copy of ``workload``)
    to an explicit per-core layout: one :class:`CoreAssignment` per core,
    which is how multi-attacker and mixed-workload scenarios are expressed.
    When a plan is present ``attack`` must be ``None`` and ``workload`` only
    labels the scenario in reports.
    """

    tracker: str
    workload: str | WorkloadProfile
    attack: str | None = None
    seed: int | None = None
    requests_per_core: int = 8_000
    attack_matched_baseline: bool = False
    attack_warmup_activations: int = 150_000
    llc_warmup_accesses: int = 25_000
    enable_auditor: bool = False
    config: SystemConfig | None = None
    core_plan: tuple[CoreAssignment, ...] | None = None

    def __post_init__(self):
        if self.core_plan is not None:
            if self.attack is not None:
                raise ValueError(
                    "core_plan and attack are mutually exclusive; put the "
                    "attacker(s) into the plan instead"
                )
            object.__setattr__(self, "core_plan", tuple(self.core_plan))
            if not any(
                a.role in ("workload", "trace") for a in self.core_plan
            ):
                raise ValueError(
                    "core_plan needs at least one workload or trace core"
                )
        # Warm-up only applies to attack scenarios; canonicalise so benign
        # specs that differ only in the (unused) warm-up cap hash identically.
        if not self.has_attacker and self.attack_warmup_activations != 0:
            object.__setattr__(self, "attack_warmup_activations", 0)

    @property
    def has_attacker(self) -> bool:
        if self.core_plan is not None:
            return any(a.is_attacker for a in self.core_plan)
        return self.attack is not None

    # ------------------------------------------------------------------ #

    def resolved_config(self) -> SystemConfig:
        return self.config if self.config is not None else baseline_config()

    def resolved_seed(self) -> int:
        return self.resolved_config().seed if self.seed is None else self.seed

    def resolved_workload(self) -> WorkloadProfile:
        if isinstance(self.workload, WorkloadProfile):
            return self.workload
        return get_workload(self.workload)

    @property
    def workload_name(self) -> str:
        # For core-plan scenarios the workload field is a report label that
        # need not name a registered workload (e.g. an ad-hoc profile's name).
        if self.core_plan is not None and isinstance(self.workload, str):
            return self.workload
        return self.resolved_workload().name

    def baseline_spec(self) -> "ScenarioSpec":
        """The insecure baseline this scenario is normalised against.

        No mitigation and -- unless ``attack_matched_baseline`` -- no
        attacker.  Baselines are measured without tracker warm-up (there is no
        tracker to warm) and never carry the security auditor.  For core-plan
        scenarios the attacker cores are replaced by idle cores, so the
        remaining benign cores stay on the same core ids and are compared
        like-for-like.
        """
        baseline_plan = self.core_plan
        if baseline_plan is not None and not self.attack_matched_baseline:
            baseline_plan = tuple(
                CoreAssignment(role="idle") if assignment.is_attacker else assignment
                for assignment in baseline_plan
            )
        return dataclasses.replace(
            self,
            tracker="none",
            attack=self.attack if self.attack_matched_baseline else None,
            attack_matched_baseline=False,
            attack_warmup_activations=0,
            enable_auditor=False,
            core_plan=baseline_plan,
        )

    # ------------------------------------------------------------------ #

    def cache_key(self) -> str:
        """Stable content hash over every simulation-affecting field.

        Classic (plan-less) specs hash exactly as before the core-plan
        extension existed, so their on-disk cache entries stay valid.
        """
        payload = {
            "code_version": CODE_VERSION,
            "tracker": self.tracker,
            "attack": self.attack,
            "seed": self.resolved_seed(),
            "requests_per_core": self.requests_per_core,
            "attack_warmup_activations": self.attack_warmup_activations,
            "llc_warmup_accesses": self.llc_warmup_accesses,
            "enable_auditor": self.enable_auditor,
            "config": dataclasses.asdict(self.resolved_config()),
        }
        if self.core_plan is None:
            payload["workload"] = dataclasses.asdict(self.resolved_workload())
        else:
            # The plan fully determines the simulation; the workload field is
            # a report-only label, so two identical plans with different
            # labels must share a cache entry.
            payload["core_plan"] = [
                # Hash assignments by their *resolved* contents so a named
                # workload and an identical ad-hoc profile share entries,
                # mirroring how the top-level workload field hashes.
                {
                    "role": a.role,
                    "attack": a.name if a.is_attacker else None,
                    "profile": (
                        dataclasses.asdict(a.resolved_profile())
                        if a.role == "workload"
                        else None
                    ),
                    "hammer_rate": a.hammer_rate if a.is_attacker else 1.0,
                    # Trace cores hash by content, not path: a renamed or
                    # re-written but byte-identical trace shares entries.
                    **(
                        {"trace_digest": a.trace_info().digest}
                        if a.role == "trace"
                        else {}
                    ),
                }
                for a in self.core_plan
            ]
        canonical = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def normalized_against(
        self, result: SimulationResult, baseline: SimulationResult
    ) -> float:
        """The paper's normalized-performance metric for this scenario shape.

        Classic specs use the fixed layout rule (core 0 is the attacker slot
        and is excluded everywhere); core-plan specs compare the benign core
        ids present in both runs, because attackers may sit on any subset of
        cores.
        """
        if self.core_plan is None:
            return benign_normalized_performance(result, baseline)
        return matched_benign_normalized_performance(result, baseline)

    def describe(self) -> dict:
        """Human-readable identity of the scenario (for reports and logs)."""
        description = {
            "tracker": self.tracker,
            "workload": self.workload_name,
            "attack": self.attack,
            "seed": self.resolved_seed(),
            "requests_per_core": self.requests_per_core,
            "attack_matched_baseline": self.attack_matched_baseline,
            "nrh": self.resolved_config().rowhammer.nrh,
        }
        if self.core_plan is not None:
            description["cores"] = [a.label() for a in self.core_plan]
        return description


def _execute_spec(spec: ScenarioSpec) -> dict:
    """Simulate one scenario and return its serialized result.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it; returns a plain dictionary so results cross the process
    boundary through the same serialization path the on-disk cache uses.
    """
    from repro.sim.experiment import run_workload

    result = run_workload(
        config=spec.resolved_config(),
        tracker=spec.tracker,
        # Plan specs carry the workload only as a report label; resolving it
        # against the registry would reject ad-hoc profile names.
        workload=spec.workload if spec.core_plan is not None
        else spec.resolved_workload(),
        attack=spec.attack,
        requests_per_core=spec.requests_per_core,
        seed=spec.resolved_seed(),
        enable_auditor=spec.enable_auditor,
        attack_warmup_activations=spec.attack_warmup_activations,
        llc_warmup_accesses=spec.llc_warmup_accesses,
        core_plan=spec.core_plan,
    )
    return result.to_dict()


def _execute_spec_timed(
    spec: ScenarioSpec, track_memory: bool = False
) -> tuple[dict, float, int | None, int]:
    """:func:`_execute_spec` plus the run's cost accounting.

    Returns ``(payload, elapsed_seconds, peak_memory_bytes, worker_pid)``.
    The timing is recorded next to the result in the warehouse so campaigns
    can report per-run cost and estimate remaining work; the pid lets the
    pool consumer attribute busy time to individual workers.  Peak memory is
    measured with :mod:`tracemalloc` only when ``track_memory`` is set --
    tracing allocations slows simulation down severalfold, so it is strictly
    opt-in and ``None`` otherwise.
    """
    peak = None
    started = time.perf_counter()
    if track_memory:
        tracemalloc.start()
        try:
            payload = _execute_spec(spec)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
    else:
        payload = _execute_spec(spec)
    return payload, time.perf_counter() - started, peak, os.getpid()


class ResultCache:
    """Persistent memo of completed simulation results, behind a store backend.

    The cache is strictly an optimisation: a missing, truncated, corrupted or
    schema-incompatible record is treated as a miss (the scenario is simply
    re-simulated), never as an error.  Persistence is delegated to a
    :class:`repro.store.backend.ResultStore`: ``cache_dir`` may be a JSON
    cache directory (the original layout), a ``.sqlite`` / ``.db`` path
    opening the experiment warehouse, or an already-constructed backend (via
    ``store=``); ``None`` disables persistence entirely.
    """

    def __init__(
        self,
        cache_dir: "str | os.PathLike | None" = None,
        store=None,
    ):
        from repro.store.backend import open_store

        if store is not None and cache_dir is not None:
            raise ValueError("pass either cache_dir or store, not both")
        self.backend = store if store is not None else open_store(cache_dir)
        #: Legacy attribute: the directory behind a JSON-dir cache (``None``
        #: for other backends).
        self.cache_dir = getattr(self.backend, "root", None)

    @property
    def enabled(self) -> bool:
        return self.backend is not None

    def load(self, key: str) -> SimulationResult | None:
        if not self.enabled:
            return None
        record = self.backend.get(key)
        if record is None or record.code_version != CODE_VERSION:
            return None
        try:
            return SimulationResult.from_dict(record.result)
        except (ValueError, KeyError, TypeError):
            return None

    def store(
        self,
        key: str,
        spec: ScenarioSpec,
        result: SimulationResult,
        elapsed_seconds: float | None = None,
        peak_memory_bytes: int | None = None,
    ) -> None:
        if not self.enabled:
            return
        from repro.store.backend import RunRecord

        self.backend.put(
            RunRecord(
                key=key,
                code_version=CODE_VERSION,
                scenario=spec.describe(),
                result=result.to_dict(),
                elapsed_seconds=elapsed_seconds,
                peak_memory_bytes=peak_memory_bytes,
            )
        )


@dataclass
class SweepStats:
    """Cumulative accounting of a runner's cache behaviour."""

    scenarios: int = 0       # scenarios requested (measured runs)
    simulations: int = 0     # unique simulations needed (measured + baselines)
    cache_hits: int = 0      # simulations served from memory or disk
    cache_misses: int = 0    # simulations actually executed
    baselines_shared: int = 0  # baseline duplicates avoided within batches

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.simulations if self.simulations else 0.0


@dataclass(frozen=True)
class SweepOutcome:
    """One scenario's result, baseline, and normalized performance."""

    spec: ScenarioSpec
    normalized: float
    result: SimulationResult
    baseline: SimulationResult
    from_cache: bool
    baseline_from_cache: bool


class SweepRunner:
    """Plans, deduplicates, distributes and memoizes scenario batches."""

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        jobs: int = 1,
        store=None,
        track_memory: bool = False,
    ):
        self.cache = ResultCache(cache_dir, store=store)
        self.jobs = max(1, int(jobs))
        self.track_memory = bool(track_memory)
        self.stats = SweepStats()
        self._memory: dict[str, SimulationResult] = {}
        # Pipeline accounting: simulation seconds attributed to each worker
        # pid (the runner's own pid for serial execution) and the wall time
        # spent inside worker pools, from which worker_report() derives
        # per-worker utilization.
        self.worker_busy_seconds: dict[int, float] = {}
        self.pool_wall_seconds: float = 0.0
        self.pool_workers_used: int = 0

    # ------------------------------------------------------------------ #

    def _lookup(self, key: str) -> SimulationResult | None:
        found = self._memory.get(key)
        if found is None:
            found = self.cache.load(key)
            if found is not None:
                self._memory[key] = found
        return found

    def _execute_pending(self, pending: dict[str, ScenarioSpec]) -> None:
        """Simulate every pending scenario, in-process or across a pool."""
        items = list(pending.items())
        if not items:
            return
        _LOG.debug("executing %d pending simulation(s)", len(items))
        if self.jobs == 1 or len(items) == 1:
            payloads = (
                (key,) + _execute_spec_timed(spec, self.track_memory)
                for key, spec in items
            )
        else:
            payloads = self._pool_payloads(items)
        for key, payload, elapsed, peak, pid in payloads:
            busy = self.worker_busy_seconds.get(pid, 0.0)
            self.worker_busy_seconds[pid] = busy + elapsed
            # Round-trip through the serialized form on every path so serial,
            # parallel and cache-replayed sweeps see byte-identical results.
            result = SimulationResult.from_dict(payload)
            self._memory[key] = result
            self.cache.store(
                key,
                pending[key],
                result,
                elapsed_seconds=elapsed,
                peak_memory_bytes=peak,
            )

    def _pool_payloads(
        self, items: list[tuple[str, ScenarioSpec]]
    ) -> Iterable[tuple[str, dict, float, int | None, int]]:
        # Never spawn more workers than there is pending work: tiny batches
        # would otherwise pay the fork cost of idle processes.
        workers = min(self.jobs, len(items))
        self.pool_workers_used = max(self.pool_workers_used, workers)
        started = time.perf_counter()
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_execute_spec_timed, spec, self.track_memory): key
                    for key, spec in items
                }
                for future in as_completed(futures):
                    payload, elapsed, peak, pid = future.result()
                    yield futures[future], payload, elapsed, peak, pid
        finally:
            self.pool_wall_seconds += time.perf_counter() - started

    def worker_report(self) -> dict | None:
        """Per-worker busy time and pool utilization, or ``None`` so far.

        Only meaningful after at least one pooled batch: utilization is each
        worker's simulation-busy seconds divided by the wall time the pool was
        open times the workers it held, i.e. 1.0 means every worker simulated
        for the pool's entire lifetime.
        """
        if not self.pool_wall_seconds or not self.pool_workers_used:
            return None
        capacity = self.pool_wall_seconds * self.pool_workers_used
        busy = {str(pid): round(seconds, 6)
                for pid, seconds in sorted(self.worker_busy_seconds.items())}
        total_busy = sum(self.worker_busy_seconds.values())
        return {
            "workers": self.pool_workers_used,
            "pool_wall_seconds": round(self.pool_wall_seconds, 6),
            "busy_seconds_by_pid": busy,
            "total_busy_seconds": round(total_busy, 6),
            "utilization": round(total_busy / capacity, 6) if capacity else 0.0,
        }

    # ------------------------------------------------------------------ #

    def simulate(self, spec: ScenarioSpec) -> SimulationResult:
        """Run (or replay) one scenario without baseline normalisation."""
        key = spec.cache_key()
        self.stats.simulations += 1
        found = self._lookup(key)
        if found is not None:
            self.stats.cache_hits += 1
            return found
        self.stats.cache_misses += 1
        self._execute_pending({key: spec})
        return self._memory[key]

    def ensure(self, specs: Sequence[ScenarioSpec]) -> int:
        """Execute (or replay) a batch of scenarios without normalisation.

        Like :meth:`simulate` for many specs at once: missing simulations
        fan out over the worker pool together, already-stored ones are
        cheap membership checks.  Returns how many simulations actually
        executed.  This is the campaign orchestrator's shard primitive --
        campaigns pre-expand baselines into their work plan, so no baseline
        resolution happens here.
        """
        pending: dict[str, ScenarioSpec] = {}
        seen: set[str] = set()
        for spec in specs:
            key = spec.cache_key()
            if key in seen:
                continue
            seen.add(key)
            self.stats.simulations += 1
            if self._lookup(key) is not None:
                self.stats.cache_hits += 1
            else:
                pending[key] = spec
        self.stats.cache_misses += len(pending)
        self._execute_pending(pending)
        return len(pending)

    def run(self, specs: Sequence[ScenarioSpec]) -> list[SweepOutcome]:
        """Execute a batch of scenarios and normalise each against its baseline.

        Identical simulations within the batch -- most commonly the insecure
        baseline shared by every tracker measured on the same workload -- are
        simulated exactly once.
        """
        specs = list(specs)
        wanted: list[tuple[ScenarioSpec, str, str]] = []
        plan: dict[str, ScenarioSpec] = {}
        duplicate_baselines = 0
        for spec in specs:
            measured_key = spec.cache_key()
            baseline = spec.baseline_spec()
            baseline_key = baseline.cache_key()
            wanted.append((spec, measured_key, baseline_key))
            if baseline_key in plan:
                duplicate_baselines += 1
            for key, planned in ((measured_key, spec), (baseline_key, baseline)):
                plan.setdefault(key, planned)

        cached_keys: set[str] = set()
        pending: dict[str, ScenarioSpec] = {}
        for key, spec in plan.items():
            if self._lookup(key) is not None:
                cached_keys.add(key)
            else:
                pending[key] = spec
        self._execute_pending(pending)

        self.stats.scenarios += len(specs)
        self.stats.simulations += len(plan)
        self.stats.cache_hits += len(cached_keys)
        self.stats.cache_misses += len(pending)
        self.stats.baselines_shared += duplicate_baselines

        outcomes = []
        for spec, measured_key, baseline_key in wanted:
            result = self._memory[measured_key]
            baseline = self._memory[baseline_key]
            outcomes.append(
                SweepOutcome(
                    spec=spec,
                    normalized=spec.normalized_against(result, baseline),
                    result=result,
                    baseline=baseline,
                    from_cache=measured_key in cached_keys,
                    baseline_from_cache=baseline_key in cached_keys,
                )
            )
        return outcomes

    def run_one(self, spec: ScenarioSpec) -> SweepOutcome:
        """Convenience wrapper: :meth:`run` for a single scenario."""
        return self.run([spec])[0]
