"""Declarative scenario sweeps: parallel fan-out and on-disk result caching.

The paper's evaluation is a large cross-product (trackers x attacks x
workloads x thresholds) in which many scenarios share the same insecure
baseline and many figures re-run scenarios other figures already ran.  This
module turns a scenario into data so that work can be planned, deduplicated,
distributed and memoized:

:class:`ScenarioSpec`
    A frozen, picklable description of one simulation (tracker, workload,
    attack, seed, request budget, configuration).  Its :meth:`cache_key` is a
    stable content hash over every simulation-affecting field, including the
    full system configuration and a code-version salt.

:class:`SweepRunner`
    Executes batches of specs.  Within a batch, identical simulations
    (typically the shared insecure baselines) are simulated exactly once;
    completed results are memoized in memory and -- when ``cache_dir`` is
    given -- in an on-disk JSON cache keyed by the scenario hash, so repeated
    figure regeneration and repeated CLI invocations are served from cache.
    With ``jobs > 1`` pending simulations fan out over a
    :class:`~concurrent.futures.ProcessPoolExecutor`; results cross the
    process boundary through :meth:`SimulationResult.to_dict` /
    :meth:`SimulationResult.from_dict`, the same serialization the cache uses,
    so serial, parallel and cache-replayed sweeps are bit-identical.

:class:`SweepOutcome`
    One scenario's result together with its (batch-deduplicated) insecure
    baseline and the paper's normalized-performance metric.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections.abc import Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import SystemConfig, baseline_config
from repro.cpu.workloads import WorkloadProfile, get_workload
from repro.sim.metrics import benign_normalized_performance
from repro.sim.simulator import SimulationResult

#: Salt mixed into every scenario hash.  Bump whenever a change to the
#: simulator alters results for unchanged configurations, so stale on-disk
#: cache entries are never replayed as current results.
CODE_VERSION = "dapper-sim-v1"


@dataclass(frozen=True)
class ScenarioSpec:
    """Declarative description of one simulation scenario.

    ``workload`` may be a registered workload name or an explicit
    :class:`WorkloadProfile`; both hash by the profile's contents, so a named
    workload and an identical ad-hoc profile share cache entries.
    ``attack_matched_baseline`` selects which insecure baseline the scenario
    is normalised against (see :meth:`baseline_spec`); it does not affect the
    measured simulation itself and is therefore not part of the cache key.
    """

    tracker: str
    workload: str | WorkloadProfile
    attack: str | None = None
    seed: int | None = None
    requests_per_core: int = 8_000
    attack_matched_baseline: bool = False
    attack_warmup_activations: int = 150_000
    llc_warmup_accesses: int = 25_000
    enable_auditor: bool = False
    config: SystemConfig | None = None

    def __post_init__(self):
        # Warm-up only applies to attack scenarios; canonicalise so benign
        # specs that differ only in the (unused) warm-up cap hash identically.
        if self.attack is None and self.attack_warmup_activations != 0:
            object.__setattr__(self, "attack_warmup_activations", 0)

    # ------------------------------------------------------------------ #

    def resolved_config(self) -> SystemConfig:
        return self.config if self.config is not None else baseline_config()

    def resolved_seed(self) -> int:
        return self.resolved_config().seed if self.seed is None else self.seed

    def resolved_workload(self) -> WorkloadProfile:
        if isinstance(self.workload, WorkloadProfile):
            return self.workload
        return get_workload(self.workload)

    @property
    def workload_name(self) -> str:
        return self.resolved_workload().name

    def baseline_spec(self) -> "ScenarioSpec":
        """The insecure baseline this scenario is normalised against.

        No mitigation and -- unless ``attack_matched_baseline`` -- no
        attacker.  Baselines are measured without tracker warm-up (there is no
        tracker to warm) and never carry the security auditor.
        """
        return dataclasses.replace(
            self,
            tracker="none",
            attack=self.attack if self.attack_matched_baseline else None,
            attack_matched_baseline=False,
            attack_warmup_activations=0,
            enable_auditor=False,
        )

    # ------------------------------------------------------------------ #

    def cache_key(self) -> str:
        """Stable content hash over every simulation-affecting field."""
        payload = {
            "code_version": CODE_VERSION,
            "tracker": self.tracker,
            "workload": dataclasses.asdict(self.resolved_workload()),
            "attack": self.attack,
            "seed": self.resolved_seed(),
            "requests_per_core": self.requests_per_core,
            "attack_warmup_activations": self.attack_warmup_activations,
            "llc_warmup_accesses": self.llc_warmup_accesses,
            "enable_auditor": self.enable_auditor,
            "config": dataclasses.asdict(self.resolved_config()),
        }
        canonical = json.dumps(payload, sort_keys=True, default=str)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> dict:
        """Human-readable identity of the scenario (for reports and logs)."""
        return {
            "tracker": self.tracker,
            "workload": self.workload_name,
            "attack": self.attack,
            "seed": self.resolved_seed(),
            "requests_per_core": self.requests_per_core,
            "attack_matched_baseline": self.attack_matched_baseline,
            "nrh": self.resolved_config().rowhammer.nrh,
        }


def _execute_spec(spec: ScenarioSpec) -> dict:
    """Simulate one scenario and return its serialized result.

    Module-level so :class:`~concurrent.futures.ProcessPoolExecutor` can
    pickle it; returns a plain dictionary so results cross the process
    boundary through the same serialization path the on-disk cache uses.
    """
    from repro.sim.experiment import run_workload

    result = run_workload(
        config=spec.resolved_config(),
        tracker=spec.tracker,
        workload=spec.resolved_workload(),
        attack=spec.attack,
        requests_per_core=spec.requests_per_core,
        seed=spec.resolved_seed(),
        enable_auditor=spec.enable_auditor,
        attack_warmup_activations=spec.attack_warmup_activations,
        llc_warmup_accesses=spec.llc_warmup_accesses,
    )
    return result.to_dict()


class ResultCache:
    """On-disk JSON store for completed simulation results.

    One file per scenario hash.  The cache is strictly an optimisation: a
    missing, truncated, corrupted or schema-incompatible file is treated as a
    miss (the scenario is simply re-simulated), never as an error.
    """

    def __init__(self, cache_dir: str | os.PathLike | None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None

    @property
    def enabled(self) -> bool:
        return self.cache_dir is not None

    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.json"

    def load(self, key: str) -> SimulationResult | None:
        if not self.enabled:
            return None
        try:
            with open(self._path(key), encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("code_version") != CODE_VERSION:
                return None
            return SimulationResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def store(self, key: str, spec: ScenarioSpec, result: SimulationResult) -> None:
        if not self.enabled:
            return
        payload = {
            "code_version": CODE_VERSION,
            "scenario": spec.describe(),
            "result": result.to_dict(),
        }
        # Write-then-rename so a crashed or concurrent writer can never leave
        # a half-written file behind under the final name.
        tmp_path = self._path(key).with_suffix(f".tmp.{os.getpid()}")
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self._path(key))
        except OSError:
            # An unwritable or full cache directory degrades to a cache-less
            # sweep; simulation results already in memory are never lost.
            try:
                tmp_path.unlink(missing_ok=True)
            except OSError:
                pass


@dataclass
class SweepStats:
    """Cumulative accounting of a runner's cache behaviour."""

    scenarios: int = 0       # scenarios requested (measured runs)
    simulations: int = 0     # unique simulations needed (measured + baselines)
    cache_hits: int = 0      # simulations served from memory or disk
    cache_misses: int = 0    # simulations actually executed
    baselines_shared: int = 0  # baseline duplicates avoided within batches

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.simulations if self.simulations else 0.0


@dataclass(frozen=True)
class SweepOutcome:
    """One scenario's result, baseline, and normalized performance."""

    spec: ScenarioSpec
    normalized: float
    result: SimulationResult
    baseline: SimulationResult
    from_cache: bool
    baseline_from_cache: bool


class SweepRunner:
    """Plans, deduplicates, distributes and memoizes scenario batches."""

    def __init__(
        self,
        cache_dir: str | os.PathLike | None = None,
        jobs: int = 1,
    ):
        self.cache = ResultCache(cache_dir)
        self.jobs = max(1, int(jobs))
        self.stats = SweepStats()
        self._memory: dict[str, SimulationResult] = {}

    # ------------------------------------------------------------------ #

    def _lookup(self, key: str) -> SimulationResult | None:
        found = self._memory.get(key)
        if found is None:
            found = self.cache.load(key)
            if found is not None:
                self._memory[key] = found
        return found

    def _execute_pending(self, pending: dict[str, ScenarioSpec]) -> None:
        """Simulate every pending scenario, in-process or across a pool."""
        items = list(pending.items())
        if not items:
            return
        if self.jobs == 1 or len(items) == 1:
            payloads = ((key, _execute_spec(spec)) for key, spec in items)
        else:
            payloads = self._pool_payloads(items)
        for key, payload in payloads:
            # Round-trip through the serialized form on every path so serial,
            # parallel and cache-replayed sweeps see byte-identical results.
            result = SimulationResult.from_dict(payload)
            self._memory[key] = result
            self.cache.store(key, pending[key], result)

    def _pool_payloads(
        self, items: list[tuple[str, ScenarioSpec]]
    ) -> Iterable[tuple[str, dict]]:
        workers = min(self.jobs, len(items))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_execute_spec, spec): key for key, spec in items
            }
            for future in as_completed(futures):
                yield futures[future], future.result()

    # ------------------------------------------------------------------ #

    def simulate(self, spec: ScenarioSpec) -> SimulationResult:
        """Run (or replay) one scenario without baseline normalisation."""
        key = spec.cache_key()
        self.stats.simulations += 1
        found = self._lookup(key)
        if found is not None:
            self.stats.cache_hits += 1
            return found
        self.stats.cache_misses += 1
        self._execute_pending({key: spec})
        return self._memory[key]

    def run(self, specs: Sequence[ScenarioSpec]) -> list[SweepOutcome]:
        """Execute a batch of scenarios and normalise each against its baseline.

        Identical simulations within the batch -- most commonly the insecure
        baseline shared by every tracker measured on the same workload -- are
        simulated exactly once.
        """
        specs = list(specs)
        wanted: list[tuple[ScenarioSpec, str, str]] = []
        plan: dict[str, ScenarioSpec] = {}
        duplicate_baselines = 0
        for spec in specs:
            measured_key = spec.cache_key()
            baseline = spec.baseline_spec()
            baseline_key = baseline.cache_key()
            wanted.append((spec, measured_key, baseline_key))
            if baseline_key in plan:
                duplicate_baselines += 1
            for key, planned in ((measured_key, spec), (baseline_key, baseline)):
                plan.setdefault(key, planned)

        cached_keys: set[str] = set()
        pending: dict[str, ScenarioSpec] = {}
        for key, spec in plan.items():
            if self._lookup(key) is not None:
                cached_keys.add(key)
            else:
                pending[key] = spec
        self._execute_pending(pending)

        self.stats.scenarios += len(specs)
        self.stats.simulations += len(plan)
        self.stats.cache_hits += len(cached_keys)
        self.stats.cache_misses += len(pending)
        self.stats.baselines_shared += duplicate_baselines

        outcomes = []
        for spec, measured_key, baseline_key in wanted:
            result = self._memory[measured_key]
            baseline = self._memory[baseline_key]
            outcomes.append(
                SweepOutcome(
                    spec=spec,
                    normalized=benign_normalized_performance(result, baseline),
                    result=result,
                    baseline=baseline,
                    from_cache=measured_key in cached_keys,
                    baseline_from_cache=baseline_key in cached_keys,
                )
            )
        return outcomes

    def run_one(self, spec: ScenarioSpec) -> SweepOutcome:
        """Convenience wrapper: :meth:`run` for a single scenario."""
        return self.run([spec])[0]
