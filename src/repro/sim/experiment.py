"""Experiment helpers: scenario construction, baseline caching, sweeps.

The evaluation methodology follows the paper (Section IV): four cores run
homogeneous copies of a workload; in attack configurations core 0 runs the
attack kernel instead and the performance of the remaining three benign copies
is reported, normalised to the insecure baseline (no mitigation, no attacker)
running the same benign copies.

Beyond the paper's fixed layout, :func:`build_core_specs_from_plan` realises
heterogeneous *core plans* (see :class:`repro.sim.sweep.CoreAssignment`):
several attacker cores running different kernels at individual hammer rates,
mixed benign workload blends with per-core intensity, and idle cores.  The
scenario catalog (:mod:`repro.scenarios`) compiles its families down to these
plans.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass

from repro.attacks import attack_by_name
from repro.config import SystemConfig, baseline_config
from repro.cpu.trace import TraceEntry, WorkloadTraceGenerator, generator_batch
from repro.cpu.tracefile import FileTraceGenerator
from repro.cpu.workloads import WorkloadProfile, get_workload
from repro.dram.address import AddressMapper, RowAddress
from repro.sim.batch import engine_class
from repro.sim.metrics import benign_normalized_performance
from repro.sim.simulator import CoreSpec, SimulationResult, Simulator
from repro.sim.sweep import CoreAssignment, ScenarioSpec, SweepRunner
from repro.trackers.base import RowHammerTracker
from repro.trackers.none import NoMitigation
from repro.trackers.registry import create_tracker

#: Outstanding-miss depth granted to attack kernels (a tuned attack process
#: streams independent misses and is limited by the ROB, not by a typical
#: benign application's MSHR usage).
ATTACKER_MLP = 24

#: Seed perturbation applied to attack kernels so an attacker and a benign
#: generator with the same scenario seed never draw the same stream.
_ATTACK_SEED_SALT = 0xA77ACF


class ThrottledGenerator:
    """Wraps an attack generator, stretching its instruction gaps.

    A hammer rate of ``r`` in ``(0, 1]`` multiplies every instruction gap by
    ``1/r``, so a throttled attacker issues requests proportionally more
    slowly when compute-bound (its memory-level parallelism is reduced in
    :func:`build_core_specs_from_plan` for the DRAM-bound regime).  Because
    attack kernels emit single-instruction gaps, the fractional part of the
    stretch is carried across entries instead of rounded away -- the *mean*
    gap is exactly ``gap / r`` for every rate.
    """

    def __init__(self, generator, hammer_rate: float):
        if not 0 < hammer_rate <= 1.0:
            raise ValueError(f"hammer_rate must be in (0, 1], got {hammer_rate}")
        self._generator = generator
        self._stretch = 1.0 / hammer_rate
        self._carry = 0.0
        self.bypasses_llc = generator.bypasses_llc

    def next_entry(self) -> TraceEntry:
        entry = self._generator.next_entry()
        self._carry += entry.gap_instructions * self._stretch
        stretched = max(1, int(self._carry))
        self._carry -= stretched
        if stretched == entry.gap_instructions:
            return entry
        return TraceEntry(
            gap_instructions=stretched,
            address=entry.address,
            is_write=entry.is_write,
        )


@dataclass(frozen=True)
class WorkloadRun:
    """A simulation result together with its normalised performance."""

    workload: str
    tracker: str
    attack: str | None
    normalized: float
    result: SimulationResult
    baseline: SimulationResult


def _resolve_workload(workload: str | WorkloadProfile) -> WorkloadProfile:
    if isinstance(workload, WorkloadProfile):
        return workload
    return get_workload(workload)


def _attacker_seed(seed: int, core_id: int) -> int:
    """Per-core attack-kernel seed (core 0 matches the classic layout)."""
    return seed ^ _ATTACK_SEED_SALT ^ (core_id * 0x9E3779B1)


def build_core_specs(
    config: SystemConfig,
    workload: WorkloadProfile,
    attack: str | None,
    requests_per_core: int,
    seed: int,
) -> list[CoreSpec]:
    """Build the per-core generators for one scenario.

    Without an attack every core runs a copy of the workload; with an attack,
    core 0 runs the attack kernel (no budget) and the other cores run benign
    copies.
    """
    mapper = AddressMapper(config.dram)
    org = config.dram
    num_cores = config.cores.num_cores
    mean_gap = 1000.0 / workload.apki

    specs: list[CoreSpec] = []
    for core_id in range(num_cores):
        if attack is not None and core_id == 0:
            generator = attack_by_name(
                attack, org, mapper, seed=seed ^ _ATTACK_SEED_SALT
            )
            specs.append(
                CoreSpec(
                    generator=generator,
                    request_budget=None,
                    mean_gap_instructions=1.0,
                    is_attacker=True,
                    max_outstanding_override=ATTACKER_MLP,
                )
            )
            continue
        generator = WorkloadTraceGenerator(
            profile=workload,
            org=org,
            mapper=mapper,
            core_id=core_id,
            seed=seed,
        )
        specs.append(
            CoreSpec(
                generator=generator,
                request_budget=requests_per_core,
                mean_gap_instructions=mean_gap,
            )
        )
    return specs


def build_core_specs_from_plan(
    config: SystemConfig,
    plan: tuple[CoreAssignment, ...],
    requests_per_core: int,
    seed: int,
) -> list[CoreSpec]:
    """Build the per-core generators for a heterogeneous core plan.

    One :class:`~repro.sim.sweep.CoreAssignment` per core: benign cores run
    their (intensity-scaled) profile with the usual request budget, attacker
    cores run their kernel unbudgeted at ``hammer_rate`` aggressiveness, and
    idle cores issue nothing.  A plan of ``[attack, workload x 3]`` at full
    hammer rate reproduces the classic single-attacker layout exactly (same
    generators, same seeds).
    """
    if len(plan) > config.cores.num_cores:
        raise ValueError(
            f"core plan has {len(plan)} assignments but the configuration "
            f"only has {config.cores.num_cores} cores"
        )
    mapper = AddressMapper(config.dram)
    org = config.dram

    specs: list[CoreSpec] = []
    for core_id, assignment in enumerate(plan):
        if assignment.role == "idle":
            specs.append(
                CoreSpec(generator=None, request_budget=None)
            )
            continue
        if assignment.is_attacker:
            generator = attack_by_name(
                assignment.name, org, mapper, seed=_attacker_seed(seed, core_id)
            )
            rate = assignment.hammer_rate
            if rate < 1.0:
                generator = ThrottledGenerator(generator, rate)
            specs.append(
                CoreSpec(
                    generator=generator,
                    request_budget=None,
                    mean_gap_instructions=1.0 / rate,
                    is_attacker=True,
                    max_outstanding_override=max(1, int(ATTACKER_MLP * rate)),
                )
            )
            continue
        if assignment.role == "trace":
            info = assignment.trace_info()
            specs.append(
                CoreSpec(
                    generator=FileTraceGenerator(info.entries, loop=True),
                    request_budget=requests_per_core,
                    mean_gap_instructions=info.mean_gap,
                )
            )
            continue
        profile = assignment.resolved_profile()
        generator = WorkloadTraceGenerator(
            profile=profile,
            org=org,
            mapper=mapper,
            core_id=core_id,
            seed=seed,
        )
        specs.append(
            CoreSpec(
                generator=generator,
                request_budget=requests_per_core,
                mean_gap_instructions=1000.0 / profile.apki,
            )
        )
    # Unassigned trailing cores stay idle, mirroring how a real machine runs
    # fewer processes than cores.
    for _ in range(config.cores.num_cores - len(plan)):
        specs.append(CoreSpec(generator=None, request_budget=None))
    return specs


def warm_up_tracker(
    tracker: RowHammerTracker,
    attack: str,
    config: SystemConfig,
    activations: int,
    seed: int,
) -> int:
    """Pre-condition a tracker with attack activations before measurement.

    The paper measures hundreds of milliseconds of steady-state execution, in
    which the attack has long since pushed the tracker into its exploited
    regime (Hydra groups in per-row mode, CoMeT's sketch saturated, ABACUS's
    spillover counter climbing, START's counter region populated).  Short
    simulation windows would otherwise spend most of their time in the benign
    warm-up phase, so the experiment helpers replay the attack's activation
    stream directly into the tracker first.  Only the tracker state is warmed:
    no DRAM time, energy or security accounting is charged.

    The warm-up stops as soon as the tracker produces its first *active*
    response (a mitigation, group mitigation or structure-reset blackout),
    i.e. right at the edge of the attack's exploitation cycle, so that the
    measured window starts in the exploited regime rather than immediately
    after an (unobserved) reset.  ``activations`` caps the warm-up length for
    trackers the attack never provokes.  Returns the number of warm-up
    activations performed.
    """
    if activations <= 0:
        return 0
    mapper = AddressMapper(config.dram)
    generator = attack_by_name(
        attack, config.dram, mapper, seed=seed ^ _ATTACK_SEED_SALT
    )
    return _replay_warmup(tracker, [generator], mapper, config, activations)


def warm_up_tracker_from_plan(
    tracker: RowHammerTracker,
    plan: tuple[CoreAssignment, ...],
    config: SystemConfig,
    activations: int,
    seed: int,
) -> int:
    """Plan-aware variant of :func:`warm_up_tracker`.

    The activation streams of every attacker core in the plan are interleaved
    in proportion to their hammer rates (weighted round-robin), approximating
    how the kernels share DRAM bandwidth during the (untimed) warm-up phase.
    With a single full-rate attacker on core 0 this replays exactly the
    classic warm-up stream.
    """
    attacker_cores = [
        (core_id, assignment)
        for core_id, assignment in enumerate(plan)
        if assignment.is_attacker
    ]
    if activations <= 0 or not attacker_cores:
        return 0
    mapper = AddressMapper(config.dram)
    generators = [
        attack_by_name(
            assignment.name,
            config.dram,
            mapper,
            seed=_attacker_seed(seed, core_id),
        )
        for core_id, assignment in attacker_cores
    ]
    rates = [assignment.hammer_rate for _, assignment in attacker_cores]
    return _replay_warmup(tracker, generators, mapper, config, activations, rates)


def _replay_warmup(
    tracker: RowHammerTracker,
    generators: list,
    mapper: AddressMapper,
    config: SystemConfig,
    activations: int,
    rates: list[float] | None = None,
) -> int:
    # Deterministic weighted round-robin: each generator accrues credit at
    # its rate and the highest-credit generator (lowest index on ties)
    # supplies the next activation, so a rate-0.25 attacker contributes a
    # quarter as many warm-up activations as a full-rate one.
    rates = [1.0] * len(generators) if rates is None else rates
    num = len(generators)
    if type(tracker) is NoMitigation:
        # The no-op tracker only counts activations and can never produce the
        # active response that stops the loop early, and the generators are
        # warm-up-local, so the whole replay settles in bulk.
        tracker.stats.activations_observed += activations
        return activations
    credits = [0.0] * num
    step_ns = config.timings.trrd_s_ns
    now_ns = 0.0
    performed = 0
    # Per-generator prefetched address blocks.  The choice sequence depends
    # only on the rates, so each chunk's entries can be batch-generated and
    # replayed in choice order; over-generation past an early stop is
    # harmless because the generators live only for this warm-up.
    feed_addrs: list[list[int]] = [[] for _ in range(num)]
    feed_pos = [0] * num
    addr_cache: dict[int, RowAddress] = {}
    decode = mapper.decode
    on_activation = tracker.on_activation
    chunk_size = 4096
    while performed < activations:
        count = min(chunk_size, activations - performed)
        if num == 1:
            choices = [0] * count
        else:
            choices = [0] * count
            for i in range(count):
                for which, rate in enumerate(rates):
                    credits[which] += rate
                chosen = max(range(num), key=lambda which: credits[which])
                credits[chosen] -= 1.0
                choices[i] = chosen
        needs = [0] * num
        for chosen in choices:
            needs[chosen] += 1
        for which in range(num):
            short = needs[which] - (len(feed_addrs[which]) - feed_pos[which])
            if short > 0:
                _, addresses, _ = generator_batch(generators[which], short)
                feed_addrs[which] = feed_addrs[which][feed_pos[which]:]
                feed_addrs[which] += addresses
                feed_pos[which] = 0
        stopped = False
        for chosen in choices:
            address = feed_addrs[chosen][feed_pos[chosen]]
            feed_pos[chosen] += 1
            row_addr = addr_cache.get(address)
            if row_addr is None:
                row_addr = decode(address).row_address
                addr_cache[address] = row_addr
            response = on_activation(row_addr, now_ns)
            now_ns += step_ns
            performed += 1
            if (
                response.mitigations
                or response.group_mitigations
                or response.blackouts
            ):
                stopped = True
                break
        if stopped:
            break
    return performed


def run_workload(
    config: SystemConfig | None = None,
    tracker: str = "none",
    workload: str | WorkloadProfile = "429.mcf",
    attack: str | None = None,
    requests_per_core: int = 20_000,
    seed: int | None = None,
    enable_auditor: bool = False,
    attack_warmup_activations: int = 0,
    llc_warmup_accesses: int = 25_000,
    core_plan: tuple[CoreAssignment, ...] | None = None,
    engine: str | None = None,
    probe=None,
) -> SimulationResult:
    """Run one scenario and return its :class:`SimulationResult`.

    ``core_plan`` replaces the classic homogeneous-workload-plus-optional-
    attacker layout with an explicit per-core layout (``attack`` must then be
    ``None``; ``workload`` is ignored).

    ``engine`` selects the simulation engine (``"batched"`` -- the default --
    or the reference ``"scalar"``); both produce bit-identical results, so
    the choice is not part of any cache key.  ``None`` defers to the
    ``REPRO_SIM_ENGINE`` environment variable.

    ``probe`` attaches a :class:`repro.obs.Probe` (tracing / metrics /
    profiling); instrumentation never changes the result, only wall-clock.
    """
    config = config or baseline_config()
    seed = config.seed if seed is None else seed
    if core_plan is not None:
        if attack is not None:
            raise ValueError("core_plan and attack are mutually exclusive")
        specs = build_core_specs_from_plan(
            config, core_plan, requests_per_core, seed
        )
    else:
        profile = _resolve_workload(workload)
        specs = build_core_specs(config, profile, attack, requests_per_core, seed)
    tracker_obj = create_tracker(tracker, config) if isinstance(tracker, str) else tracker
    profiler = probe.profiler if probe is not None else None
    warmup_stage = (
        profiler.stage("tracker-warmup") if profiler is not None else nullcontext()
    )
    with warmup_stage:
        if core_plan is not None and attack_warmup_activations > 0:
            warm_up_tracker_from_plan(
                tracker_obj, core_plan, config, attack_warmup_activations, seed
            )
        elif attack is not None and attack_warmup_activations > 0:
            warm_up_tracker(
                tracker_obj, attack, config, attack_warmup_activations, seed
            )
    simulator = engine_class(engine)(
        config,
        tracker_obj,
        specs,
        enable_auditor=enable_auditor,
        llc_warmup_accesses=llc_warmup_accesses,
        probe=probe,
    )
    return simulator.run()


class ExperimentRunner:
    """Runs scenarios and normalises them against cached insecure baselines.

    Scenario execution is delegated to a :class:`~repro.sim.sweep.SweepRunner`
    so every simulation -- baselines included -- is memoized by its full
    scenario hash; ``cache_dir`` additionally persists completed results on
    disk and ``jobs`` lets batch entry points fan simulations out over worker
    processes.
    """

    #: Benign cores whose IPC is compared (core 0 hosts the attacker in attack
    #: scenarios, so it is excluded everywhere for comparability).
    def __init__(
        self,
        config: SystemConfig | None = None,
        requests_per_core: int = 8_000,
        seed: int | None = None,
        attack_warmup_activations: int = 150_000,
        cache_dir=None,
        jobs: int = 1,
    ):
        self.config = config or baseline_config()
        self.requests_per_core = requests_per_core
        self.seed = self.config.seed if seed is None else seed
        self.attack_warmup_activations = attack_warmup_activations
        self.sweep = SweepRunner(cache_dir=cache_dir, jobs=jobs)
        self._baselines: dict[tuple, SimulationResult] = {}

    # ------------------------------------------------------------------ #

    def _spec(
        self,
        tracker: str,
        profile: WorkloadProfile,
        attack: str | None,
        config: SystemConfig,
        enable_auditor: bool = False,
        attack_matched_baseline: bool = False,
        attack_warmup_activations: int | None = None,
    ) -> ScenarioSpec:
        return ScenarioSpec(
            tracker=tracker,
            workload=profile,
            attack=attack,
            seed=self.seed,
            requests_per_core=self.requests_per_core,
            attack_matched_baseline=attack_matched_baseline,
            attack_warmup_activations=self.attack_warmup_activations
            if attack_warmup_activations is None
            else attack_warmup_activations,
            enable_auditor=enable_auditor,
            config=config,
        )

    def _baseline_key(
        self,
        workload: WorkloadProfile,
        config: SystemConfig,
        attack: str | None,
    ) -> tuple:
        # Every configuration parameter that changes baseline behaviour must
        # appear here: two configs differing only in LLC associativity, core
        # count or per-core MLP must not share a cached baseline.  The full
        # frozen sub-configs cover geometry, timings (e.g. a scaled refresh
        # window) and cache shape in one go.
        return (
            workload.name,
            attack,
            config.dram,
            config.timings,
            config.llc,
            config.cores,
            self.requests_per_core,
            self.seed,
        )

    def baseline(
        self,
        workload: str | WorkloadProfile,
        config: SystemConfig | None = None,
        attack: str | None = None,
    ) -> SimulationResult:
        """Insecure-baseline run (no mitigation) for a workload.

        With ``attack=None`` this is the paper's insecure baseline (no
        mitigation, no attacker).  Passing an attack name produces the
        *attack-matched* baseline (no mitigation, attacker running), used when
        isolating the overhead a mitigation adds on top of the attack's own
        bandwidth cost (see EXPERIMENTS.md).
        """
        config = config or self.config
        profile = _resolve_workload(workload)
        key = self._baseline_key(profile, config, attack)
        cached = self._baselines.get(key)
        if cached is None:
            spec = self._spec(
                "none", profile, attack, config, attack_warmup_activations=0
            )
            cached = self.sweep.simulate(spec)
            self._baselines[key] = cached
        return cached

    # ------------------------------------------------------------------ #

    def run(
        self,
        tracker: str,
        workload: str | WorkloadProfile,
        attack: str | None = None,
        config: SystemConfig | None = None,
        enable_auditor: bool = False,
        attack_matched_baseline: bool = False,
    ) -> WorkloadRun:
        """Run one scenario and normalise it against the cached baseline.

        ``attack_matched_baseline`` selects which insecure baseline the run is
        normalised against: the no-attack baseline (default; what the
        motivation figures use, so the attack's own bandwidth cost is part of
        the reported slowdown) or a baseline that also runs the attacker (used
        for the mitigation-overhead figures, so only the overhead added by the
        mitigation's reaction to the attack is reported).
        """
        config = config or self.config
        profile = _resolve_workload(workload)
        baseline_attack = attack if attack_matched_baseline else None
        baseline = self.baseline(profile, config, attack=baseline_attack)
        spec = self._spec(
            tracker,
            profile,
            attack,
            config,
            enable_auditor=enable_auditor,
            attack_matched_baseline=attack_matched_baseline,
        )
        result = self.sweep.simulate(spec)
        normalized = self._normalize(result, baseline)
        return WorkloadRun(
            workload=profile.name,
            tracker=tracker,
            attack=attack,
            normalized=normalized,
            result=result,
            baseline=baseline,
        )

    def _normalize(
        self, result: SimulationResult, baseline: SimulationResult
    ) -> float:
        """Mean benign-core IPC ratio; core 0 is excluded (attacker slot)."""
        return benign_normalized_performance(result, baseline)

    # ------------------------------------------------------------------ #

    def average_normalized(
        self,
        tracker: str,
        workloads: list[str | WorkloadProfile],
        attack: str | None = None,
        config: SystemConfig | None = None,
        attack_matched_baseline: bool = False,
    ) -> float:
        """Average normalised performance of a tracker over several workloads."""
        runs = [
            self.run(
                tracker,
                workload,
                attack=attack,
                config=config,
                attack_matched_baseline=attack_matched_baseline,
            )
            for workload in workloads
        ]
        if not runs:
            return 0.0
        return sum(run.normalized for run in runs) / len(runs)
