"""Experiment helpers: scenario construction, baseline caching, sweeps.

The evaluation methodology follows the paper (Section IV): four cores run
homogeneous copies of a workload; in attack configurations core 0 runs the
attack kernel instead and the performance of the remaining three benign copies
is reported, normalised to the insecure baseline (no mitigation, no attacker)
running the same benign copies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.attacks import attack_by_name
from repro.config import SystemConfig, baseline_config
from repro.cpu.trace import WorkloadTraceGenerator
from repro.cpu.workloads import WorkloadProfile, get_workload
from repro.dram.address import AddressMapper
from repro.sim.metrics import benign_normalized_performance
from repro.sim.simulator import CoreSpec, SimulationResult, Simulator
from repro.sim.sweep import ScenarioSpec, SweepRunner
from repro.trackers.base import RowHammerTracker
from repro.trackers.registry import create_tracker

#: Outstanding-miss depth granted to attack kernels (a tuned attack process
#: streams independent misses and is limited by the ROB, not by a typical
#: benign application's MSHR usage).
ATTACKER_MLP = 24


@dataclass(frozen=True)
class WorkloadRun:
    """A simulation result together with its normalised performance."""

    workload: str
    tracker: str
    attack: str | None
    normalized: float
    result: SimulationResult
    baseline: SimulationResult


def _resolve_workload(workload: str | WorkloadProfile) -> WorkloadProfile:
    if isinstance(workload, WorkloadProfile):
        return workload
    return get_workload(workload)


def build_core_specs(
    config: SystemConfig,
    workload: WorkloadProfile,
    attack: str | None,
    requests_per_core: int,
    seed: int,
) -> list[CoreSpec]:
    """Build the per-core generators for one scenario.

    Without an attack every core runs a copy of the workload; with an attack,
    core 0 runs the attack kernel (no budget) and the other cores run benign
    copies.
    """
    mapper = AddressMapper(config.dram)
    org = config.dram
    num_cores = config.cores.num_cores
    mean_gap = 1000.0 / workload.apki

    specs: list[CoreSpec] = []
    for core_id in range(num_cores):
        if attack is not None and core_id == 0:
            generator = attack_by_name(attack, org, mapper, seed=seed ^ 0xA77ACF)
            specs.append(
                CoreSpec(
                    generator=generator,
                    request_budget=None,
                    mean_gap_instructions=1.0,
                    is_attacker=True,
                    max_outstanding_override=ATTACKER_MLP,
                )
            )
            continue
        generator = WorkloadTraceGenerator(
            profile=workload,
            org=org,
            mapper=mapper,
            core_id=core_id,
            seed=seed,
        )
        specs.append(
            CoreSpec(
                generator=generator,
                request_budget=requests_per_core,
                mean_gap_instructions=mean_gap,
            )
        )
    return specs


def warm_up_tracker(
    tracker: RowHammerTracker,
    attack: str,
    config: SystemConfig,
    activations: int,
    seed: int,
) -> int:
    """Pre-condition a tracker with attack activations before measurement.

    The paper measures hundreds of milliseconds of steady-state execution, in
    which the attack has long since pushed the tracker into its exploited
    regime (Hydra groups in per-row mode, CoMeT's sketch saturated, ABACUS's
    spillover counter climbing, START's counter region populated).  Short
    simulation windows would otherwise spend most of their time in the benign
    warm-up phase, so the experiment helpers replay the attack's activation
    stream directly into the tracker first.  Only the tracker state is warmed:
    no DRAM time, energy or security accounting is charged.

    The warm-up stops as soon as the tracker produces its first *active*
    response (a mitigation, group mitigation or structure-reset blackout),
    i.e. right at the edge of the attack's exploitation cycle, so that the
    measured window starts in the exploited regime rather than immediately
    after an (unobserved) reset.  ``activations`` caps the warm-up length for
    trackers the attack never provokes.  Returns the number of warm-up
    activations performed.
    """
    if activations <= 0:
        return 0
    mapper = AddressMapper(config.dram)
    generator = attack_by_name(attack, config.dram, mapper, seed=seed ^ 0xA77ACF)
    step_ns = config.timings.trrd_s_ns
    now_ns = 0.0
    performed = 0
    for _ in range(activations):
        entry = generator.next_entry()
        decoded = mapper.decode(entry.address)
        response = tracker.on_activation(decoded.row_address, now_ns)
        now_ns += step_ns
        performed += 1
        if (
            response.mitigations
            or response.group_mitigations
            or response.blackouts
        ):
            break
    return performed


def run_workload(
    config: SystemConfig | None = None,
    tracker: str = "none",
    workload: str | WorkloadProfile = "429.mcf",
    attack: str | None = None,
    requests_per_core: int = 20_000,
    seed: int | None = None,
    enable_auditor: bool = False,
    attack_warmup_activations: int = 0,
    llc_warmup_accesses: int = 25_000,
) -> SimulationResult:
    """Run one scenario and return its :class:`SimulationResult`."""
    config = config or baseline_config()
    seed = config.seed if seed is None else seed
    profile = _resolve_workload(workload)
    specs = build_core_specs(config, profile, attack, requests_per_core, seed)
    tracker_obj = create_tracker(tracker, config) if isinstance(tracker, str) else tracker
    if attack is not None and attack_warmup_activations > 0:
        warm_up_tracker(tracker_obj, attack, config, attack_warmup_activations, seed)
    simulator = Simulator(
        config,
        tracker_obj,
        specs,
        enable_auditor=enable_auditor,
        llc_warmup_accesses=llc_warmup_accesses,
    )
    return simulator.run()


class ExperimentRunner:
    """Runs scenarios and normalises them against cached insecure baselines.

    Scenario execution is delegated to a :class:`~repro.sim.sweep.SweepRunner`
    so every simulation -- baselines included -- is memoized by its full
    scenario hash; ``cache_dir`` additionally persists completed results on
    disk and ``jobs`` lets batch entry points fan simulations out over worker
    processes.
    """

    #: Benign cores whose IPC is compared (core 0 hosts the attacker in attack
    #: scenarios, so it is excluded everywhere for comparability).
    def __init__(
        self,
        config: SystemConfig | None = None,
        requests_per_core: int = 8_000,
        seed: int | None = None,
        attack_warmup_activations: int = 150_000,
        cache_dir=None,
        jobs: int = 1,
    ):
        self.config = config or baseline_config()
        self.requests_per_core = requests_per_core
        self.seed = self.config.seed if seed is None else seed
        self.attack_warmup_activations = attack_warmup_activations
        self.sweep = SweepRunner(cache_dir=cache_dir, jobs=jobs)
        self._baselines: dict[tuple, SimulationResult] = {}

    # ------------------------------------------------------------------ #

    def _spec(
        self,
        tracker: str,
        profile: WorkloadProfile,
        attack: str | None,
        config: SystemConfig,
        enable_auditor: bool = False,
        attack_matched_baseline: bool = False,
        attack_warmup_activations: int | None = None,
    ) -> ScenarioSpec:
        return ScenarioSpec(
            tracker=tracker,
            workload=profile,
            attack=attack,
            seed=self.seed,
            requests_per_core=self.requests_per_core,
            attack_matched_baseline=attack_matched_baseline,
            attack_warmup_activations=self.attack_warmup_activations
            if attack_warmup_activations is None
            else attack_warmup_activations,
            enable_auditor=enable_auditor,
            config=config,
        )

    def _baseline_key(
        self,
        workload: WorkloadProfile,
        config: SystemConfig,
        attack: str | None,
    ) -> tuple:
        # Every configuration parameter that changes baseline behaviour must
        # appear here: two configs differing only in LLC associativity, core
        # count or per-core MLP must not share a cached baseline.  The full
        # frozen sub-configs cover geometry, timings (e.g. a scaled refresh
        # window) and cache shape in one go.
        return (
            workload.name,
            attack,
            config.dram,
            config.timings,
            config.llc,
            config.cores,
            self.requests_per_core,
            self.seed,
        )

    def baseline(
        self,
        workload: str | WorkloadProfile,
        config: SystemConfig | None = None,
        attack: str | None = None,
    ) -> SimulationResult:
        """Insecure-baseline run (no mitigation) for a workload.

        With ``attack=None`` this is the paper's insecure baseline (no
        mitigation, no attacker).  Passing an attack name produces the
        *attack-matched* baseline (no mitigation, attacker running), used when
        isolating the overhead a mitigation adds on top of the attack's own
        bandwidth cost (see EXPERIMENTS.md).
        """
        config = config or self.config
        profile = _resolve_workload(workload)
        key = self._baseline_key(profile, config, attack)
        cached = self._baselines.get(key)
        if cached is None:
            spec = self._spec(
                "none", profile, attack, config, attack_warmup_activations=0
            )
            cached = self.sweep.simulate(spec)
            self._baselines[key] = cached
        return cached

    # ------------------------------------------------------------------ #

    def run(
        self,
        tracker: str,
        workload: str | WorkloadProfile,
        attack: str | None = None,
        config: SystemConfig | None = None,
        enable_auditor: bool = False,
        attack_matched_baseline: bool = False,
    ) -> WorkloadRun:
        """Run one scenario and normalise it against the cached baseline.

        ``attack_matched_baseline`` selects which insecure baseline the run is
        normalised against: the no-attack baseline (default; what the
        motivation figures use, so the attack's own bandwidth cost is part of
        the reported slowdown) or a baseline that also runs the attacker (used
        for the mitigation-overhead figures, so only the overhead added by the
        mitigation's reaction to the attack is reported).
        """
        config = config or self.config
        profile = _resolve_workload(workload)
        baseline_attack = attack if attack_matched_baseline else None
        baseline = self.baseline(profile, config, attack=baseline_attack)
        spec = self._spec(
            tracker,
            profile,
            attack,
            config,
            enable_auditor=enable_auditor,
            attack_matched_baseline=attack_matched_baseline,
        )
        result = self.sweep.simulate(spec)
        normalized = self._normalize(result, baseline)
        return WorkloadRun(
            workload=profile.name,
            tracker=tracker,
            attack=attack,
            normalized=normalized,
            result=result,
            baseline=baseline,
        )

    def _normalize(
        self, result: SimulationResult, baseline: SimulationResult
    ) -> float:
        """Mean benign-core IPC ratio; core 0 is excluded (attacker slot)."""
        return benign_normalized_performance(result, baseline)

    # ------------------------------------------------------------------ #

    def average_normalized(
        self,
        tracker: str,
        workloads: list[str | WorkloadProfile],
        attack: str | None = None,
        config: SystemConfig | None = None,
        attack_matched_baseline: bool = False,
    ) -> float:
        """Average normalised performance of a tracker over several workloads."""
        runs = [
            self.run(
                tracker,
                workload,
                attack=attack,
                config=config,
                attack_matched_baseline=attack_matched_baseline,
            )
            for workload in workloads
        ]
        if not runs:
            return 0.0
        return sum(run.normalized for run in runs) / len(runs)
