"""Performance metrics used by the evaluation.

The paper reports *normalized performance*: the performance of the benign
applications under a given mitigation (and possibly an attack), normalised to
the insecure baseline system running the same benign applications with no
mitigation and no attacker.  We compute it as the mean per-core IPC ratio over
the benign cores, which for homogeneous benign copies equals the normalised
weighted speedup.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (returns 0 for an empty sequence or any zero value)."""
    values = list(values)
    if not values:
        return 0.0
    if any(value <= 0 for value in values):
        return 0.0
    return math.exp(sum(math.log(value) for value in values) / len(values))


def weighted_speedup(ipcs: Sequence[float], baseline_ipcs: Sequence[float]) -> float:
    """Sum of per-core IPC ratios (the classic multi-programme metric)."""
    if len(ipcs) != len(baseline_ipcs):
        raise ValueError("ipcs and baseline_ipcs must have the same length")
    return sum(
        ipc / base if base > 0 else 0.0 for ipc, base in zip(ipcs, baseline_ipcs)
    )


def normalized_performance(
    ipcs: Sequence[float], baseline_ipcs: Sequence[float]
) -> float:
    """Average per-core IPC ratio against the baseline (1.0 = no slowdown)."""
    if not ipcs:
        return 0.0
    return weighted_speedup(ipcs, baseline_ipcs) / len(ipcs)


def slowdown_percent(normalized: float) -> float:
    """Convert a normalized-performance value into a percentage slowdown."""
    return (1.0 - normalized) * 100.0


def benign_normalized_performance(result, baseline) -> float:
    """Normalized performance of a run against its insecure baseline.

    Both arguments are :class:`~repro.sim.simulator.SimulationResult`-shaped
    objects.  Core 0 is excluded everywhere: it hosts the attacker in attack
    scenarios, so only the remaining benign cores are comparable across the
    benign and attack configurations.
    """
    measured_ids = sorted(
        res.core_id for res in result.benign_results() if res.core_id != 0
    )
    test_ipcs = [result.ipc_of(core_id) for core_id in measured_ids]
    base_ipcs = [baseline.ipc_of(core_id) for core_id in measured_ids]
    return normalized_performance(test_ipcs, base_ipcs)


def matched_benign_normalized_performance(result, baseline) -> float:
    """Normalized performance over the benign cores present in *both* runs.

    Heterogeneous core plans may put attackers on any subset of cores (and
    their baselines replace those cores with idle ones), so instead of the
    fixed exclude-core-0 rule the comparable set is computed per scenario:
    cores that are benign in the measured run and also produced a result in
    the baseline.
    """
    baseline_ids = {res.core_id for res in baseline.benign_results()}
    measured_ids = sorted(
        res.core_id
        for res in result.benign_results()
        if res.core_id in baseline_ids
    )
    test_ipcs = [result.ipc_of(core_id) for core_id in measured_ids]
    base_ipcs = [baseline.ipc_of(core_id) for core_id in measured_ids]
    return normalized_performance(test_ipcs, base_ipcs)
