"""Batched simulation engine: the default hot path of the simulator.

:class:`BatchedSimulator` is a drop-in replacement for
:class:`~repro.sim.simulator.Simulator` that produces **bit-identical**
:class:`~repro.sim.simulator.SimulationResult` objects while restructuring
the per-request hot path around batches:

* request generation is prefetched in blocks through
  :func:`repro.cpu.trace.generator_batch` (workload traces and
  sequence-cycling attacks have vectorized ``next_batch`` fast paths over a
  pregenerated RNG block);
* address decode runs vectorized over each prefetched block
  (:meth:`repro.dram.address.AddressMapper.decode_batch`), so the event loop
  works in predecoded flat coordinates and only reconstructs
  :class:`~repro.dram.address.RowAddress` objects -- memoized -- when a
  request actually reaches DRAM;
* the LLC warm-up phase is settled in bulk: its statistics are discarded
  anyway, so only the final tag/LRU/dirty state is materialised;
* the measured loop inlines the LLC hit path and keeps draining the *same*
  core while its next event is strictly earlier than the scheduler heap's
  head, so runs of non-interacting accesses (LLC hits, same-row streaks) stay
  out of the heap entirely.  Requests that miss fall through to
  :meth:`~repro.mc.controller.MemoryController.service_row`, the same single
  source of truth the scalar engine uses.

Why bit-identity holds: every request generator is feedback-free (its
``next_entry`` consumes only private state seeded at construction), so
prefetching entries ahead of simulated time cannot change any stream.  The
global service order is preserved exactly -- a core is only continued while
``core.next_event_time() < heap[0][0]`` *strictly*, because on a time tie the
scalar engine pops the heap entry (its tie-breaking sequence number is always
older than the would-be re-push).  Every floating-point operation on the
timing path is performed by the same shared code in the same order.

The scalar :class:`~repro.sim.simulator.Simulator` remains the reference
model; ``REPRO_SIM_ENGINE=scalar`` selects it globally and the parity suite
(``tests/test_batch_parity.py``) pins the two engines against each other for
every registered tracker.
"""

from __future__ import annotations

import copy
import heapq
import os
from dataclasses import is_dataclass
from time import perf_counter

from repro.cpu.trace import generator_batch
from repro.crypto.prng import XorShift64
from repro.sim.simulator import Simulator

try:  # numpy accelerates decode/set-index precompute; optional.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


def _state_fingerprint(value, depth: int = 0):
    """Hashable fingerprint of a generator's (pre-warm-up) state.

    Equal fingerprints guarantee identical behaviour: the fingerprint covers
    every attribute that ``next_entry`` can read (RNG state included).  Types
    the recursion does not recognise fall back to ``repr``; an address-bearing
    repr merely misses the cache, it can never produce a wrong hit.

    Objects may opt out of attribute recursion by providing their own
    ``state_fingerprint()`` (file-backed trace generators hash their entry
    list once instead of reproducing it attribute by attribute).
    """
    custom = getattr(value, "state_fingerprint", None)
    if custom is not None and callable(custom):
        return custom()
    if isinstance(value, XorShift64):
        block = value._block
        return (
            "rng",
            value._state,
            value._block_pos,
            None if block is None else tuple(int(v) for v in block),
        )
    if isinstance(value, (bool, int, float, str, bytes, type(None))):
        return value
    if isinstance(value, (list, tuple)):
        return (type(value).__name__,) + tuple(
            _state_fingerprint(v, depth + 1) for v in value
        )
    if isinstance(value, dict):
        return ("dict",) + tuple(
            sorted(
                (repr(k), _state_fingerprint(v, depth + 1))
                for k, v in value.items()
            )
        )
    if is_dataclass(value):
        return (type(value).__qualname__, repr(value))
    if depth < 4 and hasattr(value, "__dict__"):
        return (type(value).__qualname__,) + tuple(
            (k, _state_fingerprint(v, depth + 1))
            for k, v in sorted(vars(value).items())
        )
    return repr(value)


def _generator_snapshot(generator):
    """Capture a generator's mutable state for the warm-up memo.

    Generators may expose ``state_snapshot``/``state_restore`` to avoid the
    default deep copy of their whole ``__dict__`` -- trace replay carries
    thousands of immutable entries but only a cursor's worth of mutable
    state.
    """
    snapshot = getattr(generator, "state_snapshot", None)
    if snapshot is not None and callable(snapshot):
        return snapshot()
    return copy.deepcopy(vars(generator))


#: Post-warm-up (generator state, LLC set contents) memo, keyed by the full
#: pre-warm-up state of every warmed generator plus the LLC geometry.  Sweeps
#: run the same workload mix under many trackers, and the warm-up does not
#: depend on the tracker at all, so most scenarios replay a cached warm-up.
_WARM_CACHE: dict = {}
_WARM_CACHE_MAX = 8


class _CoreFeed:
    """Prefetched, predecoded request block for one core.

    Parallel lists (``gaps``/``addresses``/``writes`` plus decoded DRAM
    coordinates and LLC set/tag indices) with a cursor; ``refill`` fetches
    the next block from the core's generator.  Budgeted cores never prefetch
    past their remaining request budget.
    """

    __slots__ = (
        "core", "generator", "bypasses_llc", "mapper",
        "ranks_per_channel", "line_size", "num_sets", "batch",
        "gaps", "addresses", "writes",
        "rows", "flat_banks", "rank_idx", "channels",
        "set_idx", "tags", "size", "idx",
    )

    def __init__(self, core, mapper, config, batch: int):
        self.core = core
        self.generator = core.generator
        self.bypasses_llc = core.generator.bypasses_llc
        self.mapper = mapper
        self.ranks_per_channel = config.dram.ranks_per_channel
        self.line_size = config.llc.line_size_bytes
        self.num_sets = config.llc.num_sets
        self.batch = batch
        self.gaps = self.addresses = self.writes = None
        self.rows = self.flat_banks = self.rank_idx = self.channels = None
        self.set_idx = self.tags = None
        self.size = 0
        self.idx = 0

    def refill(self) -> None:
        core = self.core
        count = self.batch
        budget = core.request_budget
        if budget is not None:
            count = min(count, budget - core.requests_issued)
        gaps, addresses, writes = generator_batch(self.generator, count)
        self.gaps = gaps
        self.addresses = addresses
        self.writes = writes
        if self.bypasses_llc or _np is not None:
            ch, rk, _, _, rows, _, flat = self.mapper.decode_batch(addresses)
            if _np is not None:
                self.channels = ch.tolist()
                self.rank_idx = (ch * self.ranks_per_channel + rk).tolist()
                self.rows = rows.tolist()
                self.flat_banks = flat.tolist()
            else:
                rpc = self.ranks_per_channel
                self.channels = ch
                self.rank_idx = [c * rpc + r for c, r in zip(ch, rk)]
                self.rows = rows
                self.flat_banks = flat
        else:
            # Without numpy, predecoding every entry of a hit-dominated core
            # costs more than it saves; misses decode lazily via service().
            self.flat_banks = None
        if not self.bypasses_llc:
            if _np is not None:
                lines = _np.asarray(addresses, dtype=_np.int64) // self.line_size
                self.set_idx = (lines % self.num_sets).tolist()
                self.tags = (lines // self.num_sets).tolist()
            else:
                line_size = self.line_size
                num_sets = self.num_sets
                lines = [address // line_size for address in addresses]
                self.set_idx = [line % num_sets for line in lines]
                self.tags = [line // num_sets for line in lines]
        self.size = count
        self.idx = 0


class BatchedSimulator(Simulator):
    """Batch-structured engine, bit-identical to :class:`Simulator`."""

    #: Entries prefetched per core per refill of the measured loop.
    BATCH = 4096
    #: Warm-up accesses generated per core per chunk (bounds peak memory).
    WARM_CHUNK = 16384

    # ------------------------------------------------------------------ #

    def _warm_llc(self) -> None:
        """Bulk-settle the LLC warm-up.

        The scalar warm-up plays entries round-robin through
        :meth:`SharedLLC.access` and then throws the statistics away; only
        the final tag/LRU/dirty state survives into measurement.  This
        version batch-generates each core's entries and replays the same
        round-robin interleaving against the set dictionaries directly,
        skipping all statistics bookkeeping.
        """
        if self.llc_warmup_accesses <= 0:
            return
        warm_cores = [
            core for core in self.cores if not core.generator.bypasses_llc
        ]
        if not warm_cores:
            return
        llc = self.llc
        sets = llc._sets
        num_sets = llc._num_sets
        data_ways = llc._data_ways
        line_size = llc.config.line_size_bytes

        # The warm-up depends only on the warmed generators' initial state
        # and the LLC geometry -- not on the tracker or attack under test --
        # so sweeps replay a memoized warm-up instead of regenerating it.
        cache_key = None
        if all(hasattr(core.generator, "__dict__") for core in warm_cores):
            cache_key = (
                self.llc_warmup_accesses,
                num_sets,
                data_ways,
                line_size,
                tuple(
                    _state_fingerprint(core.generator) for core in warm_cores
                ),
            )
        cached = _WARM_CACHE.get(cache_key) if cache_key is not None else None
        if cached is not None:
            generator_states, set_states = cached
            for core, state in zip(warm_cores, generator_states):
                # Generators with a snapshot/restore protocol (e.g. trace
                # replay, whose entry arrays are immutable) restore in O(1)
                # instead of deep-copying their whole state dict back.
                restore = getattr(core.generator, "state_restore", None)
                if restore is not None and callable(restore):
                    restore(state)
                else:
                    core.generator.__dict__.update(copy.deepcopy(state))
            for live, stored in zip(sets, set_states):
                live.clear()
                live.update(stored)
            llc.stats = type(llc.stats)()
            return

        remaining = self.llc_warmup_accesses
        while remaining > 0:
            count = min(self.WARM_CHUNK, remaining)
            remaining -= count
            batches = []
            for core in warm_cores:
                _, addresses, writes = generator_batch(core.generator, count)
                if not data_ways:
                    continue  # bypass LLC: generate (to advance the
                    # stream) but nothing to replay into an empty cache
                if _np is not None:
                    lines = _np.asarray(addresses, dtype=_np.int64) // line_size
                    set_idx = lines % num_sets
                    tags = lines // num_sets
                else:
                    set_idx = tags = None
                    lines = [address // line_size for address in addresses]
                batches.append((set_idx, tags, lines, writes))
            if not data_ways:
                continue
            # Flatten the round-robin interleave into one stream per chunk.
            if _np is not None:
                seq_set = _np.stack(
                    [b[0] for b in batches], axis=1
                ).ravel().tolist()
                seq_tag = _np.stack(
                    [b[1] for b in batches], axis=1
                ).ravel().tolist()
            else:
                seq_set = [
                    line % num_sets
                    for group in zip(*(b[2] for b in batches))
                    for line in group
                ]
                seq_tag = [
                    line // num_sets
                    for group in zip(*(b[2] for b in batches))
                    for line in group
                ]
            seq_write = [
                write
                for group in zip(*(b[3] for b in batches))
                for write in group
            ]
            for set_index, tag, write in zip(seq_set, seq_tag, seq_write):
                cache_set = sets[set_index]
                if tag in cache_set:
                    cache_set.move_to_end(tag)
                    if write:
                        cache_set[tag] = True
                else:
                    if len(cache_set) >= data_ways:
                        cache_set.popitem(last=False)
                    cache_set[tag] = write
        # Mirror the scalar engine: measurement starts from fresh statistics.
        llc.stats = type(llc.stats)()

        if cache_key is not None:
            if len(_WARM_CACHE) >= _WARM_CACHE_MAX:
                _WARM_CACHE.pop(next(iter(_WARM_CACHE)))
            _WARM_CACHE[cache_key] = (
                [_generator_snapshot(core.generator) for core in warm_cores],
                [s.copy() for s in sets],
            )

    # ------------------------------------------------------------------ #

    def _drain(self):
        """Advance every core until all benign budgets are exhausted.

        Identical scheduling semantics to :meth:`Simulator._drain`; see the
        module docstring for why the run-batching rule preserves the exact
        global service order.
        """
        cores_by_id = {core.core_id: core for core in self.cores}
        benign_pending = {
            core.core_id
            for core in self.cores
            if core.request_budget is not None
        }
        if not benign_pending:
            raise ValueError("at least one core needs a finite request budget")

        feeds = {
            core.core_id: _CoreFeed(core, self.mapper, self.config, self.BATCH)
            for core in self.cores
        }

        llc = self.llc
        sets = llc._sets
        num_sets = llc._num_sets
        data_ways = llc._data_ways
        stats = llc.stats
        per_core_hits = stats.per_core_hits
        per_core_misses = stats.per_core_misses
        hit_latency = self.config.llc.hit_latency_ns
        line_size = self.config.llc.line_size_bytes
        controller = self.controller
        service_row = controller.service_row
        service = controller.service
        row_from_flat = controller.row_address_from_flat
        row_cache = controller._row_addr_cache
        rows_per_bank = self.config.dram.rows_per_bank
        # Hookless fast path: when the tracker overrides none of the
        # per-request hooks and no auditor is attached, service_row reduces
        # to stats + refresh-window guard + DRAM access + on_activation.
        # Inlining that tail here skips a call and four dead hook branches
        # per request; trackers with any hook fall back to service_row.
        fast_service = (
            controller.auditor is None
            and not controller._tracker_notes_source
            and not controller._tracker_throttles
            and not controller._tracker_delays_completion
            and not controller._tracker_extends_act
        )
        cstats = controller.stats
        access_flat = controller.dram.access_flat
        on_activation = controller.tracker.on_activation
        apply_response = controller._apply_response
        heappush = heapq.heappush
        heappop = heapq.heappop
        # With a probe attached, every serviced request routes through the
        # scalar reference path so hook sites fire; it is arithmetic-identical
        # to the inlined fast paths (parity-pinned), so only wall-clock --
        # never the SimulationResult -- changes.
        probe = self.probe
        service_addr = self._service_addr
        prof = probe.profiler if probe is not None else None

        sequence = 0
        heap: list[tuple[float, int, int]] = []
        for core in self.cores:
            heappush(heap, (core.next_event_time(), sequence, core.core_id))
            sequence += 1

        while benign_pending and heap:
            _, _, core_id = heappop(heap)
            core = cores_by_id[core_id]
            feed = feeds[core_id]
            budget = core.request_budget
            bypasses = feed.bypasses_llc
            # The core's hot scheduling state lives in locals while the core
            # is being drained (written back at every exit point below);
            # ``outstanding`` is the core's own heap, mutated in place.  The
            # inlined blocks mirror CoreModel.begin_request_values /
            # complete_read / next_event_time exactly.
            outstanding = core._outstanding
            mlp = core.effective_mlp
            peak = core.config.peak_instructions_per_ns
            cpu_time = core.cpu_time_ns
            instructions = core.instructions_retired
            requests = core.requests_issued
            i = feed.idx
            size = feed.size
            gaps = feed.gaps
            writes = feed.writes
            rows = feed.rows
            flat_banks = feed.flat_banks
            rank_idx = feed.rank_idx
            channels = feed.channels
            tags_arr = feed.tags
            set_arr = feed.set_idx
            addresses = feed.addresses
            while True:
                if i >= size:
                    core.requests_issued = requests  # refill reads the budget
                    if prof is not None:
                        _t = perf_counter()
                        feed.refill()
                        prof.add("generation", perf_counter() - _t)
                    else:
                        feed.refill()
                    i = 0
                    size = feed.size
                    gaps = feed.gaps
                    writes = feed.writes
                    rows = feed.rows
                    flat_banks = feed.flat_banks
                    rank_idx = feed.rank_idx
                    channels = feed.channels
                    tags_arr = feed.tags
                    set_arr = feed.set_idx
                    addresses = feed.addresses
                is_write = writes[i]
                gap = gaps[i]
                issue_ns = cpu_time + gap / peak
                if len(outstanding) >= mlp:
                    release = heappop(outstanding)
                    if release > issue_ns:
                        issue_ns = release
                cpu_time = issue_ns
                instructions += gap
                requests += 1

                if probe is not None:
                    completion_ns = service_addr(
                        core, addresses[i], is_write, issue_ns
                    )
                elif bypasses:
                    row = rows[i]
                    flat = flat_banks[i]
                    row_addr = row_cache.get(flat * rows_per_bank + row)
                    if row_addr is None:
                        row_addr = row_from_flat(flat, row)
                    if fast_service:
                        cstats.requests += 1
                        if is_write:
                            cstats.write_requests += 1
                        else:
                            cstats.read_requests += 1
                        if issue_ns >= controller._next_window_ns:
                            controller._check_refresh_window(issue_ns)
                        _s, completion_ns, activated, _h = access_flat(
                            flat, rank_idx[i], channels[i], row,
                            is_write, issue_ns, 0.0,
                        )
                        if activated:
                            response = on_activation(row_addr, completion_ns)
                            if not response.is_empty:
                                apply_response(
                                    response, row_addr, completion_ns
                                )
                    else:
                        completion_ns = service_row(
                            row_addr, flat, rank_idx[i],
                            channels[i], row, is_write, issue_ns, core_id,
                        )
                else:
                    tag = tags_arr[i]
                    cache_set = sets[set_arr[i]]
                    if tag in cache_set:
                        # Inlined SharedLLC.access hit path.
                        cache_set.move_to_end(tag)
                        if is_write:
                            cache_set[tag] = True
                        stats.hits += 1
                        per_core_hits[core_id] = (
                            per_core_hits.get(core_id, 0) + 1
                        )
                        completion_ns = issue_ns + hit_latency
                    else:
                        stats.misses += 1
                        per_core_misses[core_id] = (
                            per_core_misses.get(core_id, 0) + 1
                        )
                        writeback_line = None
                        if data_ways:
                            if len(cache_set) >= data_ways:
                                evicted_tag, dirty = cache_set.popitem(
                                    last=False
                                )
                                stats.evictions += 1
                                if dirty:
                                    stats.dirty_evictions += 1
                                    writeback_line = (
                                        evicted_tag * num_sets + set_arr[i]
                                    )
                            cache_set[tag] = is_write
                        if flat_banks is not None:
                            row = rows[i]
                            flat = flat_banks[i]
                            row_addr = row_cache.get(
                                flat * rows_per_bank + row
                            )
                            if row_addr is None:
                                row_addr = row_from_flat(flat, row)
                            if fast_service:
                                cstats.requests += 1
                                if is_write:
                                    cstats.write_requests += 1
                                else:
                                    cstats.read_requests += 1
                                if issue_ns >= controller._next_window_ns:
                                    controller._check_refresh_window(issue_ns)
                                _s, completion_ns, activated, _h = access_flat(
                                    flat, rank_idx[i], channels[i], row,
                                    is_write, issue_ns, 0.0,
                                )
                                if activated:
                                    response = on_activation(
                                        row_addr, completion_ns
                                    )
                                    if not response.is_empty:
                                        apply_response(
                                            response, row_addr, completion_ns
                                        )
                            else:
                                completion_ns = service_row(
                                    row_addr, flat,
                                    rank_idx[i], channels[i], row,
                                    is_write, issue_ns, core_id,
                                )
                        else:
                            completion_ns = service(
                                addresses[i], is_write, issue_ns, core_id
                            )
                        if writeback_line is not None:
                            service(
                                writeback_line * line_size, True,
                                completion_ns, core_id,
                            )
                        completion_ns += hit_latency

                i += 1
                if not is_write:
                    heappush(outstanding, completion_ns)
                if budget is not None and requests >= budget:
                    # note_progress is a no-op until the budget is reached,
                    # so calling it only here matches the scalar engine.
                    feed.idx = i
                    core.cpu_time_ns = cpu_time
                    core.instructions_retired = instructions
                    core.requests_issued = requests
                    core.note_progress()
                    benign_pending.discard(core_id)
                    break
                if outstanding and len(outstanding) >= mlp:
                    head = outstanding[0]
                    next_ns = head if head > cpu_time else cpu_time
                else:
                    next_ns = cpu_time
                # Strictly earlier than the heap head: on a tie the scalar
                # engine serves the heap entry first (older sequence number).
                if heap and heap[0][0] <= next_ns:
                    feed.idx = i
                    core.cpu_time_ns = cpu_time
                    core.instructions_retired = instructions
                    core.requests_issued = requests
                    heappush(heap, (next_ns, sequence, core_id))
                    sequence += 1
                    break


_ENGINES = {"scalar": Simulator, "batched": BatchedSimulator}

#: Engines registered lazily on first request, keeping this module's import
#: graph free of the subsystems they pull in.
_LAZY_ENGINES = {"event": "repro.sim.events.engine:EventDrivenSimulator"}


def engine_class(name: str | None = None) -> type[Simulator]:
    """Resolve a simulation engine by name.

    ``None`` falls back to the ``REPRO_SIM_ENGINE`` environment variable and
    then to ``"batched"``.  All engines produce bit-identical results:
    ``scalar`` is the reference model (and escape hatch), ``batched`` the
    default hot path, ``event`` the discrete-event core for long idle-heavy
    horizons (:mod:`repro.sim.events`).
    """
    chosen = name or os.environ.get("REPRO_SIM_ENGINE") or "batched"
    if chosen not in _ENGINES and chosen in _LAZY_ENGINES:
        module_name, _, attribute = _LAZY_ENGINES[chosen].partition(":")
        module = __import__(module_name, fromlist=[attribute])
        _ENGINES[chosen] = getattr(module, attribute)
    try:
        return _ENGINES[chosen]
    except KeyError:
        raise ValueError(
            f"unknown simulation engine {chosen!r}; "
            f"expected one of {sorted(_ENGINES.keys() | _LAZY_ENGINES.keys())}"
        ) from None
