"""The multi-core, trace-driven system simulator.

A :class:`Simulator` owns one instance of every substrate -- the shared LLC,
the memory controller with its RowHammer tracker, the DRAM timing model, and
one :class:`~repro.cpu.core.CoreModel` per core -- and advances them in global
time order.  Cores are driven by request generators: benign cores replay
synthetic workload traces, attacker cores replay attack kernels, and idle
cores generate nothing.

The simulation ends when every *benign* core has issued its request budget
(attackers have no budget; they provide pressure for as long as the benign
cores run), after which per-core IPCs, DRAM/LLC/tracker statistics, the energy
report and the optional security audit are collected into a
:class:`SimulationResult`.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass, field

from repro.analysis.security import GroundTruthAuditor, SecurityReport, SecurityViolation
from repro.cache.llc import CacheStats, SharedLLC
from repro.config import SystemConfig
from repro.cpu.core import CoreModel, CoreResult
from repro.cpu.trace import RequestGenerator
from repro.dram.address import AddressMapper
from repro.dram.commands import CommandKind
from repro.dram.dram_system import DRAMStats, DRAMSystem
from repro.dram.energy import EnergyReport
from repro.mc.controller import ControllerStats, MemoryController
from repro.trackers.base import RowHammerTracker, TrackerStats
from repro.trackers.registry import create_tracker


def _filtered_fields(cls, data: dict) -> dict:
    """Keep only the keys that are fields of dataclass ``cls``.

    Serialized results may come from a slightly newer or older code version;
    unknown keys are dropped rather than crashing deserialization (missing
    keys still raise, which the cache layer treats as a miss).
    """
    names = {f.name for f in dataclasses.fields(cls)}
    return {key: value for key, value in data.items() if key in names}


@dataclass(frozen=True)
class CoreSpec:
    """Describes one core of a simulation scenario."""

    generator: RequestGenerator | None
    request_budget: int | None
    mean_gap_instructions: float = 50.0
    is_attacker: bool = False
    #: Attack kernels use aggressive software prefetching / deep MLP; this
    #: overrides the per-core outstanding-miss limit for such cores.
    max_outstanding_override: int | None = None

    @property
    def is_idle(self) -> bool:
        return self.generator is None


@dataclass
class SimulationResult:
    """Everything a simulation produces."""

    tracker_name: str
    core_results: tuple[CoreResult, ...]
    elapsed_ns: float
    dram_stats: DRAMStats
    llc_stats: CacheStats
    controller_stats: ControllerStats
    tracker_stats: TrackerStats
    energy: EnergyReport
    security: SecurityReport | None = None
    extra: dict[str, float] = field(default_factory=dict)

    def benign_results(self) -> tuple[CoreResult, ...]:
        return tuple(result for result in self.core_results if not result.is_attacker)

    def benign_ipcs(self) -> list[float]:
        return [result.ipc for result in self.benign_results()]

    def ipc_of(self, core_id: int) -> float:
        for result in self.core_results:
            if result.core_id == core_id:
                return result.ipc
        raise KeyError(f"no core {core_id}")

    # ------------------------------------------------------------------ #
    # Serialization: results must cross process boundaries (sweep workers)
    # and cache boundaries (the on-disk result cache), so everything a
    # simulation produces round-trips through plain JSON-compatible types.
    # Float fields round-trip exactly (JSON uses shortest-repr floats).

    def to_dict(self) -> dict:
        """Serialize to a JSON-compatible dictionary (see :meth:`from_dict`)."""
        security = None
        if self.security is not None:
            security = {
                "nrh": self.security.nrh,
                "max_count": self.security.max_count,
                "rows_tracked": self.security.rows_tracked,
                "violations": [
                    dataclasses.asdict(violation)
                    for violation in self.security.violations
                ],
            }
        return {
            "tracker_name": self.tracker_name,
            "core_results": [
                dataclasses.asdict(result) for result in self.core_results
            ],
            "elapsed_ns": self.elapsed_ns,
            "dram_stats": dataclasses.asdict(self.dram_stats),
            "llc_stats": dataclasses.asdict(self.llc_stats),
            "controller_stats": dataclasses.asdict(self.controller_stats),
            "tracker_stats": dataclasses.asdict(self.tracker_stats),
            "energy": {
                "dynamic_nj": self.energy.dynamic_nj,
                "background_nj": self.energy.background_nj,
                "command_counts": {
                    kind.value: count
                    for kind, count in self.energy.command_counts.items()
                },
            },
            "security": security,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SimulationResult":
        """Rebuild a result serialized by :meth:`to_dict`.

        Raises ``KeyError`` / ``TypeError`` / ``ValueError`` on malformed
        input; callers that replay untrusted bytes (the on-disk cache) treat
        any of those as a cache miss.
        """
        llc_data = dict(data["llc_stats"])
        # JSON turns integer dictionary keys into strings; restore them.
        for key in ("per_core_hits", "per_core_misses"):
            llc_data[key] = {
                int(core): count for core, count in llc_data.get(key, {}).items()
            }
        energy_data = data["energy"]
        security = None
        if data.get("security") is not None:
            security_data = data["security"]
            security = SecurityReport(
                nrh=security_data["nrh"],
                max_count=security_data["max_count"],
                rows_tracked=security_data["rows_tracked"],
                violations=tuple(
                    SecurityViolation(**_filtered_fields(SecurityViolation, v))
                    for v in security_data["violations"]
                ),
            )
        return cls(
            tracker_name=data["tracker_name"],
            core_results=tuple(
                CoreResult(**_filtered_fields(CoreResult, result))
                for result in data["core_results"]
            ),
            elapsed_ns=data["elapsed_ns"],
            dram_stats=DRAMStats(**_filtered_fields(DRAMStats, data["dram_stats"])),
            llc_stats=CacheStats(**_filtered_fields(CacheStats, llc_data)),
            controller_stats=ControllerStats(
                **_filtered_fields(ControllerStats, data["controller_stats"])
            ),
            tracker_stats=TrackerStats(
                **_filtered_fields(TrackerStats, data["tracker_stats"])
            ),
            energy=EnergyReport(
                dynamic_nj=energy_data["dynamic_nj"],
                background_nj=energy_data["background_nj"],
                command_counts={
                    CommandKind(kind): count
                    for kind, count in energy_data["command_counts"].items()
                },
            ),
            security=security,
            extra=dict(data.get("extra", {})),
        )


class Simulator:
    """Runs one multi-core scenario to completion."""

    def __init__(
        self,
        config: SystemConfig,
        tracker: RowHammerTracker | str,
        core_specs: list[CoreSpec],
        enable_auditor: bool = False,
        llc_warmup_accesses: int = 0,
        probe=None,
    ):
        """``llc_warmup_accesses`` pre-plays that many accesses per core
        through the shared LLC (tags only, no timing) before measurement, so
        short windows start from a warm steady-state cache instead of a cold
        one.  ``probe`` is an optional :class:`repro.obs.Probe`; attaching
        one never changes the :class:`SimulationResult` (only wall-clock)."""
        if not core_specs:
            raise ValueError("at least one core is required")
        self.config = config
        self.probe = probe
        self.mapper = AddressMapper(config.dram)
        self.llc = SharedLLC(config.llc)
        self.dram = DRAMSystem(config)
        if isinstance(tracker, str):
            tracker = create_tracker(tracker, config)
        self.tracker = tracker
        self.tracker.configure_llc(self.llc)
        self.auditor = GroundTruthAuditor(config) if enable_auditor else None
        self.controller = MemoryController(
            config, self.dram, self.tracker, self.mapper, auditor=self.auditor
        )
        self.core_specs = core_specs
        self.llc_warmup_accesses = llc_warmup_accesses
        self.cores: list[CoreModel] = []
        for core_id, spec in enumerate(core_specs):
            if spec.is_idle:
                continue
            self.cores.append(
                CoreModel(
                    core_id=core_id,
                    config=config.cores,
                    generator=spec.generator,
                    request_budget=spec.request_budget,
                    mean_gap_instructions=spec.mean_gap_instructions,
                    is_attacker=spec.is_attacker,
                    max_outstanding_override=spec.max_outstanding_override,
                )
            )

    # ------------------------------------------------------------------ #

    def _warm_llc(self) -> None:
        """Pre-play accesses through the LLC so it starts warm (round-robin
        over every core that goes through the cache)."""
        if self.llc_warmup_accesses <= 0:
            return
        warm_cores = [
            core for core in self.cores if not core.generator.bypasses_llc
        ]
        if not warm_cores:
            return
        for _ in range(self.llc_warmup_accesses):
            for core in warm_cores:
                entry = core.generator.next_entry()
                self.llc.access(entry.address, entry.is_write, core.core_id)
        # Warm-up accesses should not count towards the measured statistics.
        self.llc.stats = type(self.llc.stats)()

    def run(self) -> SimulationResult:
        """Advance every core until all benign budgets are exhausted."""
        probe = self.probe
        profiler = probe.profiler if probe is not None else None
        try:
            if profiler is not None:
                with profiler.stage("llc-warmup"):
                    self._warm_llc()
                self._attach_probe()
                with profiler.stage("drain"):
                    self._drain()
                with profiler.stage("collect"):
                    return self._collect()
            self._warm_llc()
            self._attach_probe()
            self._drain()
            return self._collect()
        finally:
            if probe is not None:
                probe.finish()

    def _attach_probe(self) -> None:
        """Wire the probe into every component, after warm-up.

        Attaching after :meth:`_warm_llc` keeps warm-up untraced and lets
        metric sinks bind to the freshly reset LLC stats object."""
        probe = self.probe
        if probe is None:
            return
        self.controller.probe = probe
        self.llc.probe = probe
        self.tracker.probe = probe
        probe.bind(self)

    def _drain(self) -> None:
        """The event loop: pump requests until the benign budgets drain."""
        cores_by_id = {core.core_id: core for core in self.cores}
        benign_pending = {
            core.core_id
            for core in self.cores
            if core.request_budget is not None
        }
        if not benign_pending:
            raise ValueError("at least one core needs a finite request budget")

        sequence = 0
        heap: list[tuple[float, int, int]] = []
        for core in self.cores:
            heapq.heappush(heap, (core.next_event_time(), sequence, core.core_id))
            sequence += 1

        while benign_pending and heap:
            _, _, core_id = heapq.heappop(heap)
            core = cores_by_id[core_id]

            entry = core.generator.next_entry()
            issue_ns = core.begin_request(entry)
            completion_ns = self._service(core, entry, issue_ns)
            if not entry.is_write:
                core.complete_read(completion_ns)
            core.note_progress()

            if core.request_budget is not None and core.budget_reached:
                benign_pending.discard(core_id)
                continue
            heapq.heappush(heap, (core.next_event_time(), sequence, core_id))
            sequence += 1

    # ------------------------------------------------------------------ #

    def _service(self, core: CoreModel, entry, issue_ns: float) -> float:
        """Send one request through the LLC and (on a miss) the DRAM."""
        return self._service_addr(core, entry.address, entry.is_write, issue_ns)

    def _service_addr(
        self, core: CoreModel, address: int, is_write: bool, issue_ns: float
    ) -> float:
        """Service one request by address; the shared scalar reference path.

        The batched engine routes through this too whenever a probe is
        attached, so the hook sites below cover both engines."""
        probe = self.probe
        if core.generator.bypasses_llc:
            completion = self.controller.service(
                address, is_write, issue_ns, core.core_id
            )
            if probe is not None:
                probe.on_request(
                    core.core_id, issue_ns, completion, is_write, False, True
                )
            return completion

        llc_result = self.llc.access(address, is_write, core.core_id)
        if llc_result.hit:
            completion = issue_ns + self.config.llc.hit_latency_ns
            if probe is not None:
                probe.on_request(
                    core.core_id, issue_ns, completion, is_write, True, False
                )
            return completion

        completion = self.controller.service(
            address, is_write, issue_ns, core.core_id
        )
        if llc_result.writeback and llc_result.evicted_line is not None:
            writeback_address = (
                llc_result.evicted_line * self.config.llc.line_size_bytes
            )
            self.controller.service(
                writeback_address, True, completion, core.core_id
            )
        completion += self.config.llc.hit_latency_ns
        if probe is not None:
            probe.on_request(
                core.core_id, issue_ns, completion, is_write, False, False
            )
        return completion

    def _collect(self) -> SimulationResult:
        core_results = tuple(core.result() for core in self.cores)
        elapsed = max(
            (result.finish_time_ns for result in core_results), default=0.0
        )
        return SimulationResult(
            tracker_name=self.tracker.name,
            core_results=core_results,
            elapsed_ns=elapsed,
            dram_stats=self.dram.stats,
            llc_stats=self.llc.stats,
            controller_stats=self.controller.stats,
            tracker_stats=self.tracker.stats,
            energy=self.dram.energy_report(elapsed),
            security=self.auditor.report() if self.auditor is not None else None,
        )
