"""The multi-core, trace-driven system simulator.

A :class:`Simulator` owns one instance of every substrate -- the shared LLC,
the memory controller with its RowHammer tracker, the DRAM timing model, and
one :class:`~repro.cpu.core.CoreModel` per core -- and advances them in global
time order.  Cores are driven by request generators: benign cores replay
synthetic workload traces, attacker cores replay attack kernels, and idle
cores generate nothing.

The simulation ends when every *benign* core has issued its request budget
(attackers have no budget; they provide pressure for as long as the benign
cores run), after which per-core IPCs, DRAM/LLC/tracker statistics, the energy
report and the optional security audit are collected into a
:class:`SimulationResult`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.analysis.security import GroundTruthAuditor, SecurityReport
from repro.cache.llc import CacheStats, SharedLLC
from repro.config import SystemConfig
from repro.cpu.core import CoreModel, CoreResult
from repro.cpu.trace import RequestGenerator
from repro.dram.address import AddressMapper
from repro.dram.dram_system import DRAMStats, DRAMSystem
from repro.dram.energy import EnergyReport
from repro.mc.controller import ControllerStats, MemoryController
from repro.trackers.base import RowHammerTracker, TrackerStats
from repro.trackers.registry import create_tracker


@dataclass(frozen=True)
class CoreSpec:
    """Describes one core of a simulation scenario."""

    generator: RequestGenerator | None
    request_budget: int | None
    mean_gap_instructions: float = 50.0
    is_attacker: bool = False
    #: Attack kernels use aggressive software prefetching / deep MLP; this
    #: overrides the per-core outstanding-miss limit for such cores.
    max_outstanding_override: int | None = None

    @property
    def is_idle(self) -> bool:
        return self.generator is None


@dataclass
class SimulationResult:
    """Everything a simulation produces."""

    tracker_name: str
    core_results: tuple[CoreResult, ...]
    elapsed_ns: float
    dram_stats: DRAMStats
    llc_stats: CacheStats
    controller_stats: ControllerStats
    tracker_stats: TrackerStats
    energy: EnergyReport
    security: SecurityReport | None = None
    extra: dict[str, float] = field(default_factory=dict)

    def benign_results(self) -> tuple[CoreResult, ...]:
        return tuple(result for result in self.core_results if not result.is_attacker)

    def benign_ipcs(self) -> list[float]:
        return [result.ipc for result in self.benign_results()]

    def ipc_of(self, core_id: int) -> float:
        for result in self.core_results:
            if result.core_id == core_id:
                return result.ipc
        raise KeyError(f"no core {core_id}")


class Simulator:
    """Runs one multi-core scenario to completion."""

    def __init__(
        self,
        config: SystemConfig,
        tracker: RowHammerTracker | str,
        core_specs: list[CoreSpec],
        enable_auditor: bool = False,
        llc_warmup_accesses: int = 0,
    ):
        """``llc_warmup_accesses`` pre-plays that many accesses per core
        through the shared LLC (tags only, no timing) before measurement, so
        short windows start from a warm steady-state cache instead of a cold
        one."""
        if not core_specs:
            raise ValueError("at least one core is required")
        self.config = config
        self.mapper = AddressMapper(config.dram)
        self.llc = SharedLLC(config.llc)
        self.dram = DRAMSystem(config)
        if isinstance(tracker, str):
            tracker = create_tracker(tracker, config)
        self.tracker = tracker
        self.tracker.configure_llc(self.llc)
        self.auditor = GroundTruthAuditor(config) if enable_auditor else None
        self.controller = MemoryController(
            config, self.dram, self.tracker, self.mapper, auditor=self.auditor
        )
        self.core_specs = core_specs
        self.llc_warmup_accesses = llc_warmup_accesses
        self.cores: list[CoreModel] = []
        for core_id, spec in enumerate(core_specs):
            if spec.is_idle:
                continue
            self.cores.append(
                CoreModel(
                    core_id=core_id,
                    config=config.cores,
                    generator=spec.generator,
                    request_budget=spec.request_budget,
                    mean_gap_instructions=spec.mean_gap_instructions,
                    is_attacker=spec.is_attacker,
                    max_outstanding_override=spec.max_outstanding_override,
                )
            )

    # ------------------------------------------------------------------ #

    def _warm_llc(self) -> None:
        """Pre-play accesses through the LLC so it starts warm (round-robin
        over every core that goes through the cache)."""
        if self.llc_warmup_accesses <= 0:
            return
        warm_cores = [
            core for core in self.cores if not core.generator.bypasses_llc
        ]
        if not warm_cores:
            return
        for _ in range(self.llc_warmup_accesses):
            for core in warm_cores:
                entry = core.generator.next_entry()
                self.llc.access(entry.address, entry.is_write, core.core_id)
        # Warm-up accesses should not count towards the measured statistics.
        self.llc.stats = type(self.llc.stats)()

    def run(self) -> SimulationResult:
        """Advance every core until all benign budgets are exhausted."""
        self._warm_llc()
        cores_by_id = {core.core_id: core for core in self.cores}
        benign_pending = {
            core.core_id
            for core in self.cores
            if core.request_budget is not None
        }
        if not benign_pending:
            raise ValueError("at least one core needs a finite request budget")

        sequence = 0
        heap: list[tuple[float, int, int]] = []
        for core in self.cores:
            heapq.heappush(heap, (core.next_event_time(), sequence, core.core_id))
            sequence += 1

        while benign_pending and heap:
            _, _, core_id = heapq.heappop(heap)
            core = cores_by_id[core_id]

            entry = core.generator.next_entry()
            issue_ns = core.begin_request(entry)
            completion_ns = self._service(core, entry, issue_ns)
            if not entry.is_write:
                core.complete_read(completion_ns)
            core.note_progress()

            if core.request_budget is not None and core.budget_reached:
                benign_pending.discard(core_id)
                continue
            heapq.heappush(heap, (core.next_event_time(), sequence, core_id))
            sequence += 1

        return self._collect()

    # ------------------------------------------------------------------ #

    def _service(self, core: CoreModel, entry, issue_ns: float) -> float:
        """Send one request through the LLC and (on a miss) the DRAM."""
        if core.generator.bypasses_llc:
            return self.controller.service(
                entry.address, entry.is_write, issue_ns, core.core_id
            )

        llc_result = self.llc.access(entry.address, entry.is_write, core.core_id)
        if llc_result.hit:
            return issue_ns + self.config.llc.hit_latency_ns

        completion = self.controller.service(
            entry.address, entry.is_write, issue_ns, core.core_id
        )
        if llc_result.writeback and llc_result.evicted_line is not None:
            writeback_address = (
                llc_result.evicted_line * self.config.llc.line_size_bytes
            )
            self.controller.service(
                writeback_address, True, completion, core.core_id
            )
        return completion + self.config.llc.hit_latency_ns

    def _collect(self) -> SimulationResult:
        core_results = tuple(core.result() for core in self.cores)
        elapsed = max(
            (result.finish_time_ns for result in core_results), default=0.0
        )
        return SimulationResult(
            tracker_name=self.tracker.name,
            core_results=core_results,
            elapsed_ns=elapsed,
            dram_stats=self.dram.stats,
            llc_stats=self.llc.stats,
            controller_stats=self.controller.stats,
            tracker_stats=self.tracker.stats,
            energy=self.dram.energy_report(elapsed),
            security=self.auditor.report() if self.auditor is not None else None,
        )
