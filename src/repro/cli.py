"""Command-line interface for the DAPPER reproduction.

The CLI wraps the most common entry points so experiments can be launched
without writing Python:

``python -m repro.cli list-trackers``
    Show every registered RowHammer mitigation.
``python -m repro.cli list-workloads [--suite SPEC2K6]``
    Show the 57 workload profiles.
``python -m repro.cli run --tracker dapper-h --workload 429.mcf [--attack refresh]``
    Run one scenario and print normalized performance plus key statistics.
``python -m repro.cli storage``
    Regenerate the Table III storage comparison.
``python -m repro.cli security --tracker dapper-h``
    Mount a double-sided RowHammer attack with the ground-truth auditor.
``python -m repro.cli security-sweep [--trackers a,b] [--attacks x,y]``
    Audit several trackers against several hammering patterns at once.
``python -m repro.cli figure 11`` / ``python -m repro.cli table 3``
    Regenerate one figure or table of the paper (``figure --list`` shows ids).
``python -m repro.cli list-attacks``
    Show the attack kernels available to ``run --attack``.
``python -m repro.cli trace-record --workload 429.mcf --entries 10000 -o mcf.trace``
    Freeze a synthetic workload to a replayable trace file.
``python -m repro.cli sweep --trackers a,b --attacks x --workloads w [--jobs N]``
    Run a tracker x attack x workload cross-product through the sweep engine.
``python -m repro.cli scenarios list`` / ``scenarios show <family>``
    Browse the scenario catalog: named families (multi-attacker, workload
    blends, hammer-rate sweeps, fuzz, the paper's own figure batches) and
    their parameters.
``python -m repro.cli scenarios run <suite.yaml> [--jobs N]``
    Compile a YAML/JSON suite file through the catalog and execute it with
    the same caching/fan-out machinery as ``sweep`` (see docs/scenarios.md
    for the suite format).
``python -m repro.cli campaign run <suite.yaml> --store warehouse.sqlite``
    Run a suite as a named, resumable *campaign* against the experiment
    warehouse: sharded into checkpointed batches with progress/ETA, safe to
    kill at any point, and re-running executes only the missing scenarios.
    ``campaign status/list/report/diff`` inspect, export and compare saved
    campaigns (see docs/warehouse.md).
``python -m repro.cli campaign worker <suite.yaml> --store shared.sqlite``
    Join a campaign as one of N distributed workers: lease shards from the
    shared warehouse with heartbeats, reclaim the shards of crashed
    workers, and drain until the campaign is complete.  ``campaign leases``
    shows the per-shard lease/heartbeat/attempt state (see the
    "Distributed campaigns" section of docs/warehouse.md).
``python -m repro.cli store query/export/import/gc``
    Query and maintain the warehouse directly: filter/aggregate stored runs,
    export CSV/JSON, import a legacy JSON cache directory, and delete
    records from older simulator code versions.
``python -m repro.cli obs trace --tracker graphene --attack refresh -o t.json``
    Run one fully instrumented scenario: write a Chrome/Perfetto trace of the
    cycle-domain events, sample the metrics time-series, print the pipeline
    profile, and optionally persist everything to a warehouse (``--store``).
    ``--suite FILE --index N`` instruments a suite scenario instead
    (see docs/observability.md).
``python -m repro.cli store metrics --store warehouse.sqlite --key PREFIX``
    Inspect (or export) the metrics time-series stored next to a run.
``python -m repro.cli serve --store warehouse.sqlite --workers 2``
    Run the sweep service: a stdlib-only JSON REST API plus job queue over
    the warehouse.  Clients POST scenario suites, accepted suites become
    named campaigns drained by in-process lease workers (or an external
    ``campaign worker`` fleet with ``--workers 0``), and GET endpoints
    stream status/leases/results/metrics with pagination and optional
    per-client rate limiting (see docs/service.md).
``python -m repro.cli submit suite.json`` / ``status NAME --wait`` / ``results``
    Thin clients for a running service: submit a suite (idempotent -- a
    duplicate submission returns the existing campaign), poll a campaign
    to completion, and fetch/aggregate result rows over HTTP.

Global ``-v`` / ``-q`` flags raise or lower log verbosity (progress and
diagnostics go to stderr through :mod:`logging`; results stay on stdout).

Running sweeps
--------------

The ``sweep`` subcommand is the batch entry point: it expands comma-separated
tracker, attack and workload lists into the full cross-product of scenarios,
deduplicates the insecure baselines they share, fans the remaining simulations
out over ``--jobs`` worker processes, and memoizes every completed result in
an on-disk cache (``--cache-dir``, default ``.sweep-cache``) keyed by a stable
hash of the scenario and the full system configuration.  Re-running the same
sweep -- or any other sweep, figure or benchmark that overlaps with it -- is
served from the cache; the summary reports the hit rate.  Use ``none`` in
``--attacks`` for benign (attack-free) scenarios.  A JSON report with one
entry per scenario plus the cache/parallelism summary is written to
``--output`` (default ``sweep-report.json``)::

    python -m repro.cli sweep --trackers graphene,dapper-h --attacks refresh \
        --workloads 429.mcf --jobs 2

Exit codes: 0 on success, 2 for unknown tracker/attack/workload names.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import json
import logging
import os
import signal
import sys
import threading
import time

from repro.analysis.security_eval import (
    DEFAULT_SECURITY_ATTACKS,
    DETERMINISTIC_TRACKERS,
    format_security_table,
    security_sweep,
)
from repro.analysis.storage import storage_comparison_table
from repro.config import baseline_config, reduced_row_config
from repro.cpu.tracefile import record_workload_trace, write_trace
from repro.cpu.workloads import ALL_WORKLOADS, SUITES
from repro.eval import figures as figure_definitions
from repro.eval import tables as table_definitions
from repro.eval.report import format_table, print_figure
from repro.sim.experiment import ExperimentRunner, run_workload
from repro.sim.metrics import slowdown_percent
from repro.sim.sweep import ScenarioSpec, SweepRunner
from repro.trackers.registry import available_trackers

#: Figure numbers that have a regeneration function in :mod:`repro.eval.figures`.
FIGURE_IDS = (1, 2, 3, 4, 5, 9, 10, 11, 12, 13, 14, 15, 16, 17)
#: Table numbers that have a regeneration function in :mod:`repro.eval.tables`.
TABLE_IDS = (1, 2, 3, 4)


def _horizon_flags() -> argparse.ArgumentParser:
    """Shared ``--nrh``/``--trefw-scale`` declarations.

    Passed via ``parents=`` to every subcommand that builds a
    :class:`SystemConfig` horizon, so the flags (and their defaults) are
    declared exactly once.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("--nrh", type=int, default=500)
    parent.add_argument(
        "--trefw-scale",
        type=float,
        default=1.0 / 16.0,
        help="refresh-window scale used for short simulation windows",
    )
    return parent


def _engine_flag() -> argparse.ArgumentParser:
    """Shared ``--engine`` declaration (scalar / batched / event)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--engine",
        choices=("scalar", "batched", "event"),
        default=None,
        help="simulation engine (default: REPRO_SIM_ENGINE or batched); "
        "all engines are bit-identical",
    )
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAPPER (HPCA 2025) reproduction command-line interface",
    )
    horizon = _horizon_flags()
    engine = _engine_flag()
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more log output on stderr (repeatable)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="less log output on stderr (repeatable)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-trackers", help="list registered RowHammer mitigations")

    list_workloads = sub.add_parser("list-workloads", help="list workload profiles")
    list_workloads.add_argument("--suite", choices=SUITES, default=None)

    run = sub.add_parser(
        "run",
        help="run one simulation scenario",
        parents=[horizon, engine],
    )
    run.add_argument("--tracker", default="dapper-h", choices=available_trackers())
    run.add_argument("--workload", default="429.mcf")
    run.add_argument("--attack", default=None)
    run.add_argument("--requests", type=int, default=8_000)
    run.add_argument(
        "--attack-matched-baseline",
        action="store_true",
        help="normalise against a baseline that also runs the attacker",
    )

    sub.add_parser("storage", help="regenerate the Table III storage comparison")

    security = sub.add_parser(
        "security", help="RowHammer security audit under a double-sided attack"
    )
    security.add_argument("--tracker", default="dapper-h", choices=available_trackers())
    security.add_argument("--nrh", type=int, default=500)
    security.add_argument("--requests", type=int, default=3_000)

    sweep = sub.add_parser(
        "security-sweep",
        help="audit several trackers against several hammering patterns",
    )
    sweep.add_argument(
        "--trackers",
        default=",".join(DETERMINISTIC_TRACKERS),
        help="comma-separated tracker names",
    )
    sweep.add_argument(
        "--attacks",
        default=",".join(DEFAULT_SECURITY_ATTACKS),
        help="comma-separated attack names",
    )
    sweep.add_argument("--nrh", type=int, default=500)
    sweep.add_argument("--activations", type=int, default=20_000)

    figure = sub.add_parser("figure", help="regenerate one figure of the paper")
    figure.add_argument("number", nargs="?", type=int, default=None)
    figure.add_argument(
        "--list", action="store_true", help="list the figures that can be regenerated"
    )

    table = sub.add_parser("table", help="regenerate one table of the paper")
    table.add_argument("number", nargs="?", type=int, default=None)
    table.add_argument(
        "--list", action="store_true", help="list the tables that can be regenerated"
    )

    sweep_batch = sub.add_parser(
        "sweep",
        help="run a tracker x attack x workload cross-product with caching "
        "and parallel fan-out",
        parents=[horizon, engine],
    )
    sweep_batch.add_argument(
        "--trackers",
        default="dapper-h",
        help="comma-separated tracker names",
    )
    sweep_batch.add_argument(
        "--attacks",
        default="none",
        help="comma-separated attack names ('none' = benign, no attacker)",
    )
    sweep_batch.add_argument(
        "--workloads",
        default="429.mcf",
        help="comma-separated workload names",
    )
    sweep_batch.add_argument("--requests", type=int, default=4_000)
    sweep_batch.add_argument("--seed", type=int, default=None)
    sweep_batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to fan simulations out over",
    )
    sweep_batch.add_argument(
        "--cache-dir",
        default=".sweep-cache",
        help="result store: JSON cache directory or .sqlite warehouse "
        "('' disables caching)",
    )
    sweep_batch.add_argument(
        "-o",
        "--output",
        default="sweep-report.json",
        help="path of the JSON report ('-' prints it to stdout)",
    )
    sweep_batch.add_argument(
        "--attack-matched-baseline",
        action="store_true",
        help="normalise against baselines that also run the attacker",
    )

    scenarios = sub.add_parser(
        "scenarios",
        help="browse the scenario catalog and run declarative suite files",
    )
    scenarios_sub = scenarios.add_subparsers(dest="scenarios_command", required=True)
    scenarios_sub.add_parser("list", help="list the registered scenario families")
    scenarios_show = scenarios_sub.add_parser(
        "show", help="show one family's parameters and defaults"
    )
    scenarios_show.add_argument("family", help="scenario family name")
    scenarios_run = scenarios_sub.add_parser(
        "run", help="compile and execute a YAML/JSON suite file"
    )
    scenarios_run.add_argument("suite", help="path of the suite file")
    scenarios_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to fan simulations out over",
    )
    scenarios_run.add_argument(
        "--cache-dir",
        default=".sweep-cache",
        help="result store: JSON cache directory or .sqlite warehouse "
        "('' disables caching)",
    )
    scenarios_run.add_argument(
        "-o",
        "--output",
        default="scenario-report.json",
        help="path of the JSON report ('-' prints it to stdout)",
    )
    scenarios_run.add_argument(
        "--dry-run",
        action="store_true",
        help="only compile the suite and list its scenarios",
    )

    campaign = sub.add_parser(
        "campaign",
        help="resumable, checkpointed execution of large scenario suites "
        "against the experiment warehouse",
    )
    campaign_sub = campaign.add_subparsers(dest="campaign_command", required=True)

    def _store_argument(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--store",
            default="warehouse.sqlite",
            help="experiment warehouse: a .sqlite/.db path or a JSON cache "
            "directory (default warehouse.sqlite)",
        )

    campaign_run = campaign_sub.add_parser(
        "run", help="run (or resume) a campaign from a YAML/JSON suite file"
    )
    campaign_run.add_argument("suite", help="path of the suite file")
    campaign_run.add_argument(
        "--name",
        default=None,
        help="campaign name (default: the suite's own name)",
    )
    _store_argument(campaign_run)
    campaign_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to fan simulations out over",
    )
    campaign_run.add_argument(
        "--batch-size",
        type=int,
        default=32,
        help="simulations per checkpointed shard",
    )
    campaign_run.add_argument(
        "--force",
        action="store_true",
        help="replace the saved manifest when the scenario set changed",
    )
    campaign_run.add_argument(
        "--track-memory",
        action="store_true",
        help="record per-run peak memory with tracemalloc (slows simulation "
        "down severalfold; strictly opt-in)",
    )
    campaign_worker = campaign_sub.add_parser(
        "worker",
        help="join a campaign as one of N lease-based distributed workers "
        "(run the same command in several processes or hosts)",
    )
    campaign_worker.add_argument("suite", help="path of the suite file")
    campaign_worker.add_argument(
        "--name",
        default=None,
        help="campaign name (default: the suite's own name)",
    )
    _store_argument(campaign_worker)
    campaign_worker.add_argument(
        "--worker-id",
        default=None,
        help="lease holder identity (default <hostname>-<pid>)",
    )
    campaign_worker.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes to fan this worker's simulations out over",
    )
    campaign_worker.add_argument(
        "--shard-size",
        type=int,
        default=4,
        help="simulations per leased shard (only the first worker's plan "
        "is used; later joiners adopt it)",
    )
    campaign_worker.add_argument(
        "--lease-duration",
        type=float,
        default=60.0,
        help="seconds a claimed shard stays leased without a heartbeat "
        "(expired leases are reclaimed by surviving workers)",
    )
    campaign_worker.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per shard before poison-shard quarantine",
    )
    campaign_worker.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="stop after this many shard attempts (default: drain until "
        "the campaign is complete)",
    )
    campaign_worker.add_argument(
        "--init",
        action="store_true",
        help="create the campaign manifest if it does not exist yet "
        "(without this, joining an unknown campaign is an error)",
    )
    campaign_worker.add_argument(
        "--track-memory",
        action="store_true",
        help="record per-run peak memory with tracemalloc (slows simulation "
        "down severalfold; strictly opt-in)",
    )
    campaign_leases = campaign_sub.add_parser(
        "leases",
        help="per-shard lease, heartbeat and attempt state of a campaign",
    )
    campaign_leases.add_argument("name", help="campaign name")
    _store_argument(campaign_leases)
    campaign_leases.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable JSON instead of the aligned table",
    )
    campaign_status_p = campaign_sub.add_parser(
        "status", help="completion state of a saved campaign"
    )
    campaign_status_p.add_argument("name", help="campaign name")
    _store_argument(campaign_status_p)
    campaign_status_p.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable JSON instead of the key:value lines",
    )
    campaign_list = campaign_sub.add_parser(
        "list", help="list the campaigns saved in the warehouse"
    )
    _store_argument(campaign_list)
    campaign_report_p = campaign_sub.add_parser(
        "report", help="result table of a campaign (CSV/JSON export)"
    )
    campaign_report_p.add_argument("name", help="campaign name")
    _store_argument(campaign_report_p)
    campaign_report_p.add_argument(
        "-o",
        "--output",
        default="-",
        help="output path ('-' prints an aligned table)",
    )
    campaign_report_p.add_argument(
        "--format",
        choices=("csv", "json"),
        default=None,
        help="export format (default: from the output suffix)",
    )
    campaign_report_p.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the full report document (rows plus campaign metadata "
        "and lease state) as JSON; -o/--format export only the rows",
    )
    campaign_diff = campaign_sub.add_parser(
        "diff",
        help="per-metric deltas between two campaigns (or code versions)",
    )
    campaign_diff.add_argument("name_a", help="first campaign name")
    campaign_diff.add_argument("name_b", help="second campaign name")
    _store_argument(campaign_diff)
    campaign_diff.add_argument(
        "--store-b",
        default=None,
        help="warehouse holding the second campaign (default: --store)",
    )
    campaign_diff.add_argument(
        "-o",
        "--output",
        default="-",
        help="JSON diff output path ('-' prints a summary table)",
    )

    store_parser = sub.add_parser(
        "store", help="query, export and maintain the experiment warehouse"
    )
    store_sub = store_parser.add_subparsers(dest="store_command", required=True)

    def _filter_arguments(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--tracker", default=None)
        parser.add_argument("--workload", default=None)
        parser.add_argument("--attack", default=None)
        parser.add_argument("--nrh", type=int, default=None)
        parser.add_argument(
            "--code-version",
            default=None,
            help="filter by simulator code version",
        )
        parser.add_argument("--limit", type=int, default=None)
        parser.add_argument(
            "--offset",
            type=int,
            default=0,
            help="skip this many rows (stable key order, so --limit/--offset "
            "paginate deterministically)",
        )

    store_query = store_sub.add_parser(
        "query", help="filter and aggregate stored runs"
    )
    _store_argument(store_query)
    _filter_arguments(store_query)
    store_query.add_argument(
        "--group-by",
        default=None,
        help="comma-separated columns to aggregate over "
        "(e.g. tracker,workload)",
    )
    store_export = store_sub.add_parser(
        "export", help="export stored runs as CSV or JSON"
    )
    _store_argument(store_export)
    _filter_arguments(store_export)
    store_export.add_argument("-o", "--output", required=True)
    store_export.add_argument(
        "--format",
        choices=("csv", "json"),
        default=None,
        help="export format (default: from the output suffix)",
    )
    store_import = store_sub.add_parser(
        "import",
        help="import a cache directory (or another warehouse) into --store",
    )
    store_import.add_argument(
        "source", help="JSON cache directory or .sqlite warehouse to import"
    )
    _store_argument(store_import)
    store_import.add_argument(
        "--overwrite",
        action="store_true",
        help="replace records that already exist in the destination",
    )
    store_gc = store_sub.add_parser(
        "gc", help="delete records left behind by other code versions"
    )
    _store_argument(store_gc)
    store_gc.add_argument(
        "--dry-run",
        action="store_true",
        help="only count the records that would be deleted",
    )
    store_metrics = store_sub.add_parser(
        "metrics",
        help="inspect the metrics time-series stored next to a run",
    )
    _store_argument(store_metrics)
    store_metrics.add_argument(
        "--key",
        default=None,
        help="run key (a unique prefix is enough)",
    )
    store_metrics.add_argument(
        "--metric",
        default=None,
        help="only this metric (default: every series of the run)",
    )
    store_metrics.add_argument(
        "--list",
        action="store_true",
        dest="list_keys",
        help="list the run keys that have metrics stored",
    )
    store_metrics.add_argument(
        "-o",
        "--output",
        default="-",
        help="output path ('-' prints an aligned table)",
    )
    store_metrics.add_argument(
        "--format",
        choices=("csv", "json"),
        default=None,
        help="export format (default: from the output suffix)",
    )

    obs = sub.add_parser(
        "obs",
        help="instrumented runs: cycle-domain traces, metrics time-series "
        "and pipeline profiles",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_trace = obs_sub.add_parser(
        "trace",
        help="run one fully instrumented scenario and write a "
        "Chrome/Perfetto trace",
        parents=[horizon, engine],
    )
    obs_trace.add_argument(
        "--tracker", default="dapper-h", choices=available_trackers()
    )
    obs_trace.add_argument("--workload", default="429.mcf")
    obs_trace.add_argument("--attack", default=None)
    obs_trace.add_argument(
        "--requests",
        type=int,
        default=None,
        help="per-core request budget (default 4000; with --suite, "
        "overrides the suite's own budget)",
    )
    obs_trace.add_argument("--seed", type=int, default=None)
    obs_trace.add_argument(
        "--suite",
        default=None,
        help="instrument a scenario from a YAML/JSON suite file instead of "
        "building one from the flags",
    )
    obs_trace.add_argument(
        "--index",
        type=int,
        default=0,
        help="scenario index within --suite (default 0)",
    )
    obs_trace.add_argument(
        "-o",
        "--output",
        default="trace.json",
        help="Chrome-trace output path (load it in Perfetto or "
        "chrome://tracing)",
    )
    obs_trace.add_argument(
        "--metrics-interval-ns",
        type=float,
        default=100_000.0,
        help="metrics sampling interval in simulated nanoseconds",
    )
    obs_trace.add_argument(
        "--max-events",
        type=int,
        default=1_000_000,
        help="trace event cap (excess events are counted, not recorded)",
    )
    obs_trace.add_argument(
        "--store",
        default=None,
        help="also persist the run and its metrics time-series to this "
        "warehouse",
    )

    serve = sub.add_parser(
        "serve",
        help="run the sweep service: a JSON REST API + job queue over the "
        "warehouse (see docs/service.md)",
    )
    _store_argument(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8180)
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="in-process drain workers (0 = front end only; attach external "
        "'campaign worker' processes to the same store)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="simulation processes each drain worker fans out over",
    )
    serve.add_argument(
        "--shard-size",
        type=int,
        default=4,
        help="simulations per leased shard",
    )
    serve.add_argument(
        "--lease-duration",
        type=float,
        default=60.0,
        help="seconds a claimed shard stays leased without a heartbeat",
    )
    serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per shard before poison-shard quarantine",
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        help="requests per second each client address may make "
        "(token bucket; 0 disables rate limiting)",
    )
    serve.add_argument(
        "--burst",
        type=int,
        default=None,
        help="token-bucket burst size (default: the --rate-limit value)",
    )

    def _url_argument(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--url",
            default="http://127.0.0.1:8180",
            help="base URL of a running sweep service",
        )

    submit = sub.add_parser(
        "submit", help="submit a suite file to a running sweep service"
    )
    submit.add_argument("suite", help="path of the YAML/JSON suite file")
    _url_argument(submit)
    submit.add_argument(
        "--name",
        default=None,
        help="campaign name (default: the suite's own name)",
    )
    submit.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the service's response document as JSON",
    )

    status_p = sub.add_parser(
        "status", help="completion state of a campaign on a sweep service"
    )
    status_p.add_argument("name", help="campaign name")
    _url_argument(status_p)
    status_p.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable JSON instead of the key:value lines",
    )
    status_p.add_argument(
        "--wait",
        action="store_true",
        help="poll until the campaign is complete (exit 1 on timeout)",
    )
    status_p.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="poll interval in seconds (with --wait)",
    )
    status_p.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        help="give up after this many seconds (with --wait)",
    )

    results_p = sub.add_parser(
        "results", help="fetch stored result rows from a sweep service"
    )
    _url_argument(results_p)
    _filter_arguments(results_p)
    results_p.add_argument(
        "--all",
        action="store_true",
        dest="fetch_all",
        help="follow the pagination cursor until every matching row is "
        "fetched (--limit becomes the page size)",
    )
    results_p.add_argument(
        "--group-by",
        default=None,
        help="comma-separated columns to aggregate over "
        "(e.g. tracker,workload)",
    )
    results_p.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print rows as JSON (identical to 'store export --format json' "
        "over the same warehouse and filters)",
    )

    sub.add_parser("list-attacks", help="list the available attack kernels")

    trace = sub.add_parser(
        "trace-record", help="record a synthetic workload to a trace file"
    )
    trace.add_argument("--workload", default="429.mcf")
    trace.add_argument("--entries", type=int, default=10_000)
    trace.add_argument("--seed", type=int, default=None)
    trace.add_argument("-o", "--output", required=True)
    return parser


def _cmd_list_trackers() -> int:
    for name in available_trackers():
        print(name)
    return 0


def _cmd_list_workloads(suite: str | None) -> int:
    rows = [
        {
            "workload": profile.name,
            "suite": profile.suite,
            "apki": profile.apki,
            "row_locality": profile.row_locality,
            "footprint_mb": profile.footprint_bytes // (1024 * 1024),
            "memory_intensive": profile.memory_intensive,
        }
        for profile in ALL_WORKLOADS
        if suite is None or profile.suite == suite
    ]
    print(format_table(rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = baseline_config(nrh=args.nrh).with_refresh_window_scale(args.trefw_scale)
    runner = ExperimentRunner(config, requests_per_core=args.requests)
    run = runner.run(
        args.tracker,
        args.workload,
        attack=args.attack,
        attack_matched_baseline=args.attack_matched_baseline,
    )
    result = run.result
    print(f"tracker             : {args.tracker}")
    print(f"workload            : {args.workload}")
    print(f"attack              : {args.attack or 'none'}")
    print(f"RowHammer threshold : {args.nrh}")
    print(f"normalized perf     : {run.normalized:.4f} "
          f"({slowdown_percent(run.normalized):.2f}% slowdown)")
    print(f"benign IPCs         : "
          + ", ".join(f"{c.ipc:.3f}" for c in result.benign_results()))
    print(f"DRAM activations    : {result.dram_stats.activations}")
    print(f"counter traffic     : {result.dram_stats.counter_reads} reads, "
          f"{result.dram_stats.counter_writes} writes")
    print(f"mitigations         : {result.tracker_stats.mitigations_issued} "
          f"({result.tracker_stats.rows_mitigated} rows)")
    print(f"structure resets    : {result.tracker_stats.structure_resets}")
    print(f"blackout time       : {result.dram_stats.blackout_time_ns / 1e6:.3f} ms")
    return 0


def _cmd_storage() -> int:
    rows = [
        {
            "tracker": row.tracker,
            "sram_kb": round(row.sram_kb, 1),
            "cam_kb": round(row.cam_kb, 1),
            "die_area_mm2": round(row.die_area_mm2, 3),
            "paper_sram_kb": row.paper_sram_kb,
            "paper_cam_kb": row.paper_cam_kb,
        }
        for row in storage_comparison_table()
    ]
    print(format_table(rows))
    return 0


def _cmd_security(args: argparse.Namespace) -> int:
    config = reduced_row_config(nrh=args.nrh, rows_per_bank=4096)
    result = run_workload(
        config=config,
        tracker=args.tracker,
        workload="403.gcc",
        attack="rowhammer",
        requests_per_core=args.requests,
        enable_auditor=True,
    )
    report = result.security
    print(f"tracker                  : {args.tracker}")
    print(f"RowHammer threshold      : {report.nrh}")
    print(f"max per-row activations  : {report.max_count}")
    print(f"mitigations issued       : {result.tracker_stats.mitigations_issued}")
    print(f"verdict                  : {'SECURE' if report.is_secure else 'VULNERABLE'}")
    return 0 if report.is_secure or args.tracker == "none" else 1


def _cmd_security_sweep(args: argparse.Namespace) -> int:
    trackers = tuple(name for name in args.trackers.split(",") if name)
    attacks = tuple(name for name in args.attacks.split(",") if name)
    scenarios = security_sweep(
        trackers=trackers,
        attacks=attacks,
        config=baseline_config(nrh=args.nrh),
        activations=args.activations,
    )
    print(format_security_table(scenarios))
    insecure = [s for s in scenarios if not s.is_secure and s.tracker != "none"]
    return 1 if insecure else 0


def _split_names(raw: str) -> list[str]:
    return [name.strip() for name in raw.split(",") if name.strip()]


def _validate_sweep_names(
    trackers: list[str], attacks: list[str], workloads: list[str], config
) -> str | None:
    """Return an error message for the first unknown name, or ``None``."""
    from repro.attacks import available_attacks
    from repro.cpu.workloads import get_workload
    from repro.trackers.registry import create_tracker

    for tracker in trackers:
        # The registry is the single source of truth for tracker names
        # (including recursive breakhammer: composition).
        try:
            create_tracker(tracker, config)
        except ValueError as error:
            return str(error)
    known_attacks = available_attacks()
    for attack in attacks:
        if attack != "none" and attack not in known_attacks:
            return (
                f"unknown attack {attack!r}; "
                f"available: none, {', '.join(known_attacks)}"
            )
    for workload in workloads:
        try:
            get_workload(workload)
        except KeyError:
            return f"unknown workload {workload!r} (see list-workloads)"
    return None


def _cmd_sweep(args: argparse.Namespace) -> int:
    trackers = _split_names(args.trackers)
    attacks = _split_names(args.attacks)
    workloads = _split_names(args.workloads)
    if not (trackers and attacks and workloads):
        print("sweep: empty tracker/attack/workload list", file=sys.stderr)
        return 2
    config = baseline_config(nrh=args.nrh).with_refresh_window_scale(
        args.trefw_scale
    )
    error = _validate_sweep_names(trackers, attacks, workloads, config)
    if error is not None:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    specs = [
        ScenarioSpec(
            tracker=tracker,
            workload=workload,
            attack=None if attack == "none" else attack,
            seed=args.seed,
            requests_per_core=args.requests,
            attack_matched_baseline=args.attack_matched_baseline,
            config=config,
        )
        for tracker in trackers
        for attack in attacks
        for workload in workloads
    ]

    runner = SweepRunner(cache_dir=args.cache_dir or None, jobs=args.jobs)
    started = time.monotonic()
    outcomes = runner.run(specs)
    elapsed = time.monotonic() - started

    report = {
        "config": {
            "nrh": args.nrh,
            "requests_per_core": args.requests,
            "trefw_scale": args.trefw_scale,
            "seed": args.seed if args.seed is not None else config.seed,
            "attack_matched_baseline": args.attack_matched_baseline,
        },
        "scenarios": _outcome_rows(outcomes),
        "summary": _run_summary(runner.stats, args, elapsed),
    }
    _write_report(report, args.output, len(outcomes))
    _print_outcomes(outcomes, runner.stats, elapsed, args.jobs)
    return 0


def _outcome_rows(outcomes) -> list[dict]:
    """One JSON-report row per sweep outcome."""
    return [
        {
            **outcome.spec.describe(),
            "cache_key": outcome.spec.cache_key(),
            "normalized_performance": outcome.normalized,
            "slowdown_percent": slowdown_percent(outcome.normalized),
            "from_cache": outcome.from_cache,
            "baseline_from_cache": outcome.baseline_from_cache,
            "mitigations_issued": outcome.result.tracker_stats.mitigations_issued,
            "dram_activations": outcome.result.dram_stats.activations,
        }
        for outcome in outcomes
    ]


def _run_summary(stats, args: argparse.Namespace, elapsed: float) -> dict:
    return {
        "scenarios": stats.scenarios,
        "simulations": stats.simulations,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "cache_hit_rate": stats.hit_rate,
        "baselines_shared": stats.baselines_shared,
        "jobs": args.jobs,
        "cache_dir": args.cache_dir or None,
        "elapsed_seconds": elapsed,
    }


def _write_report(report: dict, output: str, count: int) -> None:
    serialized = json.dumps(report, indent=2)
    if output == "-":
        print(serialized)
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(serialized + "\n")
        print(f"wrote {output} ({count} scenarios)")


def _scenario_line_label(spec) -> str:
    """What a scenario ran: its attack, or its core plan for plan specs."""
    if spec.core_plan is not None:
        attackers = [a.label() for a in spec.core_plan if a.is_attacker]
        return "+".join(attackers) if attackers else "blend"
    return spec.attack or "none"


def _print_outcomes(outcomes, stats, elapsed: float, jobs: int) -> None:
    for outcome in outcomes:
        spec = outcome.spec
        origin = "cache" if outcome.from_cache else "run"
        print(
            f"{spec.tracker:<16} {spec.workload_name:<12} "
            f"{_scenario_line_label(spec):<18} {outcome.normalized:.4f} "
            f"({slowdown_percent(outcome.normalized):6.2f}% slowdown) [{origin}]"
        )
    print(
        f"simulations: {stats.simulations}  cache hits: {stats.cache_hits} "
        f"({stats.hit_rate * 100.0:.0f}%)  misses: {stats.cache_misses}  "
        f"baselines shared: {stats.baselines_shared}  "
        f"elapsed: {elapsed:.1f}s  jobs: {jobs}"
    )


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import available_families, family_by_name, load_suite
    from repro.scenarios.catalog import REQUIRED

    if args.scenarios_command == "list":
        for name in available_families():
            family = family_by_name(name)
            print(f"{name:<22} {family.description}")
        return 0

    if args.scenarios_command == "show":
        try:
            family = family_by_name(args.family)
        except ValueError as error:
            print(f"scenarios: {error}", file=sys.stderr)
            return 2
        print(f"family      : {family.name}")
        print(f"description : {family.description}")
        print("parameters  :")
        for parameter in family.parameters:
            default = (
                "(required)"
                if parameter.default is REQUIRED
                else f"default={parameter.default!r}"
            )
            doc = f"  -- {parameter.doc}" if parameter.doc else ""
            print(f"  {parameter.name:<24} {default}{doc}")
        return 0

    if args.scenarios_command == "run":
        try:
            suite = load_suite(args.suite)
            specs = suite.compile()
        except ValueError as error:
            print(f"scenarios: {error}", file=sys.stderr)
            return 2
        if args.dry_run:
            print(f"suite {suite.name!r}: {len(specs)} scenario(s)")
            for spec in specs:
                print(f"  {json.dumps(spec.describe())}")
            return 0
        runner = SweepRunner(cache_dir=args.cache_dir or None, jobs=args.jobs)
        started = time.monotonic()
        outcomes = runner.run(specs)
        elapsed = time.monotonic() - started
        report = {
            "suite": {
                "name": suite.name,
                "description": suite.description,
                "path": args.suite,
                "families": [entry.family for entry in suite.entries],
            },
            "scenarios": _outcome_rows(outcomes),
            "summary": _run_summary(runner.stats, args, elapsed),
        }
        _write_report(report, args.output, len(outcomes))
        _print_outcomes(outcomes, runner.stats, elapsed, args.jobs)
        return 0

    raise AssertionError(
        f"unhandled scenarios command {args.scenarios_command}"
    )  # pragma: no cover


def _open_store(target: str):
    from repro.store import open_store

    store = open_store(target)
    if store is None:
        raise ValueError("an empty --store disables the warehouse")
    return store


@contextlib.contextmanager
def _sigterm_as_interrupt():
    """Treat SIGTERM like Ctrl-C for the duration of the block.

    Long-running verbs (``campaign worker``, ``serve``) are shut down by
    service managers with SIGTERM; routing it through the existing
    ``KeyboardInterrupt`` path means a terminated worker releases its held
    lease immediately instead of making the fleet wait out the lease
    expiry.  Signal handlers can only be installed on the main thread; on
    any other thread (the in-process test suite) this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum, frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.scenarios import load_suite
    from repro.store import (
        Campaign,
        campaign_report,
        campaign_status,
        diff_campaigns,
        export_rows,
    )

    if args.campaign_command == "run":
        try:
            suite = load_suite(args.suite)
            specs = suite.compile()
            store = _open_store(args.store)
            campaign = Campaign(
                args.name or suite.name,
                specs,
                store,
                jobs=args.jobs,
                batch_size=args.batch_size,
                source=str(args.suite),
                description=suite.description,
                track_memory=args.track_memory,
            )
        except ValueError as error:
            print(f"campaign: {error}", file=sys.stderr)
            return 2
        try:
            # Batch progress/ETA is logged by Campaign.run itself (tune with
            # the global -v / -q flags).
            summary = campaign.run(force=args.force)
        except ValueError as error:
            print(f"campaign: {error}", file=sys.stderr)
            return 2
        except KeyboardInterrupt:
            print(
                f"\ncampaign {campaign.name!r} interrupted -- completed "
                "simulations are checkpointed; rerun the same command to "
                "resume",
                file=sys.stderr,
            )
            return 130
        verb = "resumed" if summary.resumed else "ran"
        print(
            f"campaign {summary.name!r} {verb}: {summary.entries} scenarios, "
            f"{summary.simulations_total} unique simulations "
            f"({summary.already_stored} already stored, "
            f"{summary.executed} executed) in {summary.elapsed_seconds:.1f}s"
        )
        return 0

    if args.campaign_command == "worker":
        from repro.store import CampaignWorker

        try:
            suite = load_suite(args.suite)
            specs = suite.compile()
            store = _open_store(args.store)
            worker = CampaignWorker(
                args.name or suite.name,
                specs,
                store,
                worker_id=args.worker_id,
                jobs=args.jobs,
                shard_size=args.shard_size,
                lease_duration=args.lease_duration,
                max_attempts=args.max_attempts,
                init=args.init,
                source=str(args.suite),
                description=suite.description,
                track_memory=args.track_memory,
            )
            worker.join()
        except ValueError as error:
            print(f"campaign: {error}", file=sys.stderr)
            return 2
        try:
            # SIGTERM (service-managed shutdown) takes the same path as
            # Ctrl-C: the held lease is released promptly, not by expiry.
            with _sigterm_as_interrupt():
                summary = worker.run(max_shards=args.max_shards)
        except KeyboardInterrupt:
            print(
                f"\nworker {worker.worker_id!r} interrupted -- its shard was "
                "released and completed simulations are checkpointed; other "
                "workers (or a rerun) finish the campaign",
                file=sys.stderr,
            )
            return 130
        print(
            f"worker {summary.worker_id!r} drained campaign "
            f"{summary.campaign!r}: {summary.completed}/{summary.shards} "
            f"shard(s) completed here ({summary.executed} executed, "
            f"{summary.reclaimed} reclaimed, {summary.lost} lost, "
            f"{summary.failed} failed) in {summary.elapsed_seconds:.1f}s"
        )
        leases = store.lease_summary(worker.name)
        if leases is not None and leases["quarantined"]:
            print(
                f"warning: {leases['quarantined']} shard(s) quarantined "
                "after repeated failures -- see 'campaign leases' "
                f"{worker.name}",
                file=sys.stderr,
            )
            return 1
        return 0

    if args.campaign_command == "leases":
        try:
            store = _open_store(args.store)
            if not getattr(store, "supports_leases", False):
                raise ValueError(
                    "lease state lives in the SQLite warehouse; this store "
                    "has no lease table"
                )
            from repro.store.campaign import load_manifest

            load_manifest(store, args.name)   # unknown campaign -> exit 2
        except ValueError as error:
            print(f"campaign: {error}", file=sys.stderr)
            return 2
        rows = store.lease_rows(args.name)
        if args.as_json:
            from repro.store import lease_document

            document = lease_document(rows, store.lease_summary(args.name))
            print(json.dumps(document, indent=2, default=str))
            return 0
        if not rows:
            print(
                f"campaign {args.name!r}: no lease rows (no distributed "
                "worker has joined it)"
            )
            return 0
        print(format_table([
            {
                "shard": row.shard,
                "keys": len(row.keys),
                "state": row.state,
                "worker": row.worker or "-",
                "deadline": (
                    f"{row.deadline:.1f}" if row.deadline is not None else "-"
                ),
                "heartbeats": row.heartbeats,
                "attempts": row.attempts,
                "reclaims": row.reclaims,
                "last_error": row.last_error or "-",
            }
            for row in rows
        ]))
        summary = store.lease_summary(args.name)
        print(
            f"{summary['done']}/{summary['shards']} shard(s) done, "
            f"{summary['leased']} leased, {summary['pending']} pending, "
            f"{summary['quarantined']} quarantined; "
            f"{summary['reclaims']} reclaim(s) across "
            f"{len(summary['workers'])} worker(s)"
        )
        return 0

    if args.campaign_command == "status":
        try:
            status = campaign_status(_open_store(args.store), args.name)
        except ValueError as error:
            print(f"campaign: {error}", file=sys.stderr)
            return 2
        if args.as_json:
            from repro.store import status_document

            print(json.dumps(status_document(status), indent=2, default=str))
            return 0
        print(f"campaign      : {status.name}")
        print(f"created       : {status.created_at}")
        print(f"code version  : {status.code_version} "
              f"(current {status.current_code_version})")
        print(f"source        : {status.source or '(none)'}")
        print(f"scenarios     : {status.entries_complete}/{status.entries} complete")
        print(f"simulations   : {status.simulations_stored}/"
              f"{status.simulations_total} stored ({status.percent:.0f}%)")
        print(f"state         : {'complete' if status.complete else 'resumable'}")
        leases = status.leases
        if leases:
            print(
                f"shards        : {leases['done']}/{leases['shards']} done "
                f"({leases['leased']} leased, {leases['pending']} pending, "
                f"{leases['quarantined']} quarantined)"
            )
            print(
                f"reclaimed     : {leases['reclaims']} shard claim(s) took "
                "over an expired lease"
            )
            for name, counts in leases["workers"].items():
                active = " (active)" if counts["active"] else ""
                print(
                    f"worker        : {name}: {counts['completed']} "
                    f"shard(s) completed{active}"
                )
        profile = status.last_run_profile
        if profile:
            utilization = float(profile.get("utilization") or 0.0)
            print(
                f"last run      : {profile.get('executed')} executed over "
                f"{profile.get('workers')} worker(s), "
                f"pool utilization {utilization * 100.0:.0f}% "
                f"({profile.get('finished_at')})"
            )
        return 0

    if args.campaign_command == "list":
        try:
            store = _open_store(args.store)
        except ValueError as error:
            print(f"campaign: {error}", file=sys.stderr)
            return 2
        for name in store.campaign_names():
            status = campaign_status(store, name)
            print(
                f"{name:<28} {status.entries_complete}/{status.entries} "
                f"scenarios complete ({status.percent:.0f}%)"
            )
        return 0

    if args.campaign_command == "report":
        try:
            report = campaign_report(_open_store(args.store), args.name)
        except ValueError as error:
            print(f"campaign: {error}", file=sys.stderr)
            return 2
        if args.as_json:
            from repro.store import report_document

            print(json.dumps(report_document(report), indent=2, default=str))
            return 0
        if args.output == "-" and args.format is None:
            print(format_table(report["rows"]))
            if report["incomplete_entries"]:
                print(
                    f"note: {report['incomplete_entries']} scenario(s) not "
                    "simulated yet (campaign run resumes them)"
                )
            return 0
        export_rows(report["rows"], args.output, format=args.format)
        if args.output != "-":
            print(f"wrote {args.output} ({len(report['rows'])} rows)")
        return 0

    if args.campaign_command == "diff":
        try:
            store_a = _open_store(args.store)
            store_b = (
                _open_store(args.store_b) if args.store_b else store_a
            )
            diff = diff_campaigns(store_a, args.name_a, store_b, args.name_b)
        except ValueError as error:
            print(f"campaign: {error}", file=sys.stderr)
            return 2
        if args.output != "-":
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(diff, handle, indent=2)
                handle.write("\n")
            print(f"wrote {args.output}")
        rows = [
            {
                **row["scenario"],
                "normalized_a": row["a"]["normalized_performance"],
                "normalized_b": row["b"]["normalized_performance"],
                "delta": row["delta"]["normalized_performance"],
            }
            for row in diff["rows"]
        ]
        print(format_table(rows))
        print(
            f"matched {diff['matched']} scenario(s); "
            f"only in {args.name_a}: {len(diff['only_in_a'])}, "
            f"only in {args.name_b}: {len(diff['only_in_b'])}; "
            f"max |delta normalized|: {diff['max_abs_normalized_delta']:.6f}"
        )
        return 0

    raise AssertionError(
        f"unhandled campaign command {args.campaign_command}"
    )  # pragma: no cover


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import (
        aggregate_rows,
        export_rows,
        gc_store,
        import_store,
        open_store,
        query_rows,
    )

    try:
        store = _open_store(args.store)
    except ValueError as error:
        print(f"store: {error}", file=sys.stderr)
        return 2

    if args.store_command in ("query", "export"):
        rows = query_rows(
            store,
            tracker=args.tracker,
            workload=args.workload,
            attack=args.attack,
            nrh=args.nrh,
            code_version=args.code_version,
            limit=args.limit,
            offset=args.offset,
        )
        if args.store_command == "export":
            export_rows(rows, args.output, format=args.format)
            if args.output != "-":
                print(f"wrote {args.output} ({len(rows)} rows)")
            return 0
        if args.group_by:
            try:
                rows = aggregate_rows(
                    rows, [name.strip() for name in args.group_by.split(",")]
                )
            except ValueError as error:
                print(f"store: {error}", file=sys.stderr)
                return 2
        print(format_table(rows))
        return 0

    if args.store_command == "metrics":
        keys = sorted(store.metrics_keys())
        if args.list_keys:
            for key in keys:
                print(key)
            return 0
        if not args.key:
            print("store: metrics needs --key (or --list)", file=sys.stderr)
            return 2
        matches = [key for key in keys if key.startswith(args.key)]
        if len(matches) != 1:
            problem = (
                f"{len(matches)} stored runs match"
                if matches
                else "no stored metrics match"
            )
            print(
                f"store: {problem} key prefix {args.key!r} "
                "(store metrics --list shows the keys)",
                file=sys.stderr,
            )
            return 2
        series = store.get_metrics(matches[0], metric=args.metric)
        rows = [
            {"metric": name, "t_ns": t_ns, "value": value}
            for name, points in sorted(series.items())
            for t_ns, value in points
        ]
        if args.output == "-" and args.format is None:
            print(format_table(rows))
            return 0
        export_rows(rows, args.output, format=args.format)
        if args.output != "-":
            print(f"wrote {args.output} ({len(rows)} rows)")
        return 0

    if args.store_command == "import":
        from pathlib import Path

        # Validate before open_store: opening a typo'd .sqlite path would
        # silently create a fresh empty warehouse there.
        if not args.source or not Path(args.source).exists():
            print(
                f"store: import source {args.source!r} does not exist",
                file=sys.stderr,
            )
            return 2
        source = open_store(args.source)
        imported, skipped = import_store(
            store, source, overwrite=args.overwrite
        )
        print(
            f"imported {imported} record(s) from {args.source} "
            f"({skipped} already present)"
        )
        return 0

    if args.store_command == "gc":
        removed = gc_store(store, dry_run=args.dry_run)
        verb = "would delete" if args.dry_run else "deleted"
        print(f"{verb} {removed} stale record(s)")
        return 0

    raise AssertionError(
        f"unhandled store command {args.store_command}"
    )  # pragma: no cover


def _obs_spec(args: argparse.Namespace) -> ScenarioSpec:
    """The scenario ``obs trace`` instruments: suite entry or ad-hoc flags."""
    if args.suite is not None:
        from repro.scenarios import load_suite

        suite = load_suite(args.suite)
        specs = suite.compile()
        if not 0 <= args.index < len(specs):
            raise ValueError(
                f"--index {args.index} out of range: suite {suite.name!r} "
                f"has {len(specs)} scenario(s)"
            )
        spec = specs[args.index]
        if args.requests is not None:
            spec = dataclasses.replace(spec, requests_per_core=args.requests)
        return spec
    config = baseline_config(nrh=args.nrh).with_refresh_window_scale(
        args.trefw_scale
    )
    return ScenarioSpec(
        tracker=args.tracker,
        workload=args.workload,
        attack=args.attack,
        seed=args.seed,
        requests_per_core=args.requests if args.requests is not None else 4_000,
        config=config,
    )


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import MetricsSampler, PipelineProfiler, Probe, TraceRecorder

    if args.obs_command != "trace":  # pragma: no cover
        raise AssertionError(f"unhandled obs command {args.obs_command}")
    try:
        spec = _obs_spec(args)
        trace = TraceRecorder(max_events=args.max_events)
        metrics = MetricsSampler(interval_ns=args.metrics_interval_ns)
        profiler = PipelineProfiler()
    except ValueError as error:
        print(f"obs: {error}", file=sys.stderr)
        return 2
    probe = Probe(trace=trace, metrics=metrics, profiler=profiler)
    result = run_workload(
        config=spec.resolved_config(),
        tracker=spec.tracker,
        workload=spec.workload if spec.core_plan is not None
        else spec.resolved_workload(),
        attack=spec.attack,
        requests_per_core=spec.requests_per_core,
        seed=spec.resolved_seed(),
        enable_auditor=spec.enable_auditor,
        attack_warmup_activations=spec.attack_warmup_activations,
        llc_warmup_accesses=spec.llc_warmup_accesses,
        core_plan=spec.core_plan,
        engine=args.engine,
        probe=probe,
    )

    trace.write(args.output)
    dropped = f", {trace.dropped} dropped" if trace.dropped else ""
    print(f"trace    : {args.output} ({len(trace.events)} events{dropped})")
    print(
        f"metrics  : {len(metrics.series)} series, {metrics.samples} samples "
        f"(every {args.metrics_interval_ns:g} simulated ns)"
    )
    report = profiler.report()
    print(f"profile  : {report['total_seconds']:.3f}s wall")
    for name, stage in report["stages"].items():
        print(
            f"  {name:<16} {stage['seconds']:8.3f}s "
            f"({stage['fraction'] * 100.0:5.1f}%)"
        )
    print(
        f"scenario : {json.dumps(spec.describe(), sort_keys=True)}"
    )
    print(
        f"result   : {result.dram_stats.activations} activations, "
        f"{result.tracker_stats.mitigations_issued} mitigations"
    )

    if args.store:
        from repro.sim.sweep import ResultCache

        try:
            cache = ResultCache(args.store)
        except ValueError as error:
            print(f"obs: {error}", file=sys.stderr)
            return 2
        key = spec.cache_key()
        cache.store(key, spec, result)
        cache.backend.put_metrics(key, metrics.to_rows())
        print(f"stored   : {key[:16]}... in {args.store}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        CampaignRepository,
        RateLimiter,
        ServiceApp,
        WorkerPool,
        make_service_server,
    )

    pool = None
    try:
        repository = CampaignRepository(args.store)
        if args.workers > 0 and not repository.supports_leases:
            raise ValueError(
                "the in-process job queue needs the SQLite warehouse (a "
                "--store path ending in .sqlite/.db); rerun with --workers 0 "
                "to serve a JSON cache directory read-only"
            )
        if args.workers > 0:
            pool = WorkerPool(
                args.store,
                workers=args.workers,
                jobs=args.jobs,
                shard_size=args.shard_size,
                lease_duration=args.lease_duration,
                max_attempts=args.max_attempts,
            )
        limiter = RateLimiter(args.rate_limit, burst=args.burst)
        app = ServiceApp(repository, pool=pool, rate_limiter=limiter)
        server = make_service_server(app, args.host, args.port)
    except ValueError as error:
        print(f"serve: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(
            f"serve: cannot bind {args.host}:{args.port}: {error}",
            file=sys.stderr,
        )
        return 2
    if pool is not None:
        pool.start()
    host, port = server.server_address[:2]
    limit = (
        f"{args.rate_limit:g} req/s per client"
        if args.rate_limit > 0
        else "off"
    )
    print(
        f"serving on http://{host}:{port} (store {args.store}, "
        f"{args.workers} worker(s), rate limit {limit})",
        flush=True,
    )
    try:
        with _sigterm_as_interrupt():
            server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print("serve: shutting down", file=sys.stderr)
    finally:
        server.server_close()
        if pool is not None:
            pool.stop(wait=True, timeout=5.0)
    return 0


def _load_suite_document(path: str):
    """The raw suite document to POST (parsed by suffix, not validated)."""
    from pathlib import Path

    text = Path(path).read_text(encoding="utf-8")
    if Path(path).suffix.lower() == ".json":
        return json.loads(text)
    try:
        import yaml
    except ImportError:
        raise ValueError(
            f"reading {path} needs PyYAML, which is not installed; "
            "convert the suite to JSON"
        ) from None
    return yaml.safe_load(text)


def _client_error(verb: str, error) -> int:
    print(f"{verb}: {error}", file=sys.stderr)
    return 2 if getattr(error, "status", 0) == 400 else 1


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        document = _load_suite_document(args.suite)
    except (OSError, ValueError) as error:
        print(f"submit: {error}", file=sys.stderr)
        return 2
    try:
        response = client.submit(document, name=args.name)
    except ServiceError as error:
        return _client_error("submit", error)
    if args.as_json:
        print(json.dumps(response, indent=2))
        return 0
    campaign = response["campaign"]
    verb = "created" if response["created"] else "already exists"
    queued = " (queued)" if response["queued"] else ""
    print(
        f"campaign {campaign['name']!r} {verb}: {campaign['entries']} "
        f"scenario(s), {campaign['simulations_stored']}/"
        f"{campaign['simulations_total']} simulations stored "
        f"({campaign['percent']:.0f}%)"
    )
    print(f"drain         : {response['drain']}{queued}")
    return 0


def _print_status_document(status: dict) -> None:
    """The client-side rendering of a service status document.

    Deliberately the same key:value layout as ``campaign status`` so the
    same greps work against either the local store or the service.
    """
    print(f"campaign      : {status['name']}")
    print(f"created       : {status['created_at']}")
    print(f"source        : {status['source'] or '(none)'}")
    print(
        f"scenarios     : {status['entries_complete']}/{status['entries']} "
        "complete"
    )
    print(
        f"simulations   : {status['simulations_stored']}/"
        f"{status['simulations_total']} stored ({status['percent']:.0f}%)"
    )
    print(f"state         : {status['state']}")


def _cmd_client_status(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(args.url)
    try:
        if args.wait:
            def _tick(status: dict) -> None:
                print(
                    f"status: {status['simulations_stored']}/"
                    f"{status['simulations_total']} simulations "
                    f"({status['percent']:.0f}%)",
                    file=sys.stderr,
                )

            status = client.wait_complete(
                args.name,
                timeout=args.timeout,
                interval=args.interval,
                progress=_tick,
            )
        else:
            status = client.status(args.name)
    except ServiceError as error:
        return _client_error("status", error)
    if args.as_json:
        print(json.dumps(status, indent=2))
        return 0
    _print_status_document(status)
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    from repro.service import ServiceClient, ServiceError
    from repro.store import export_rows

    client = ServiceClient(args.url)
    filters = dict(
        tracker=args.tracker,
        workload=args.workload,
        attack=args.attack,
        nrh=args.nrh,
        code_version=args.code_version,
    )
    next_offset = None
    try:
        if args.group_by:
            # Aggregation happens inside the service (one summary row per
            # group crosses the wire) instead of paging every raw row here.
            document = client.aggregate_results(
                group_by=[
                    name.strip()
                    for name in args.group_by.split(",")
                    if name.strip()
                ],
                **filters,
            )
            rows = document["rows"]
        elif args.fetch_all:
            rows = client.all_results(
                page_size=args.limit or 500, **filters
            )
        else:
            page = client.results(
                limit=args.limit, offset=args.offset, **filters
            )
            rows = page["rows"]
            next_offset = page["next_offset"]
    except ServiceError as error:
        return _client_error("results", error)
    if args.as_json:
        export_rows(rows, "-", format="json")
    else:
        print(format_table(rows))
    if next_offset is not None:
        print(
            f"results: more rows available (next page: --offset "
            f"{next_offset})",
            file=sys.stderr,
        )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.list or args.number is None:
        for number in FIGURE_IDS:
            function = getattr(figure_definitions, f"figure{number}")
            summary = (function.__doc__ or "").strip().splitlines()[0]
            print(f"figure {number:>2}: {summary}")
        return 0
    if args.number not in FIGURE_IDS:
        print(f"no regeneration function for figure {args.number}; "
              f"available: {', '.join(str(n) for n in FIGURE_IDS)}")
        return 2
    figure = getattr(figure_definitions, f"figure{args.number}")()
    print_figure(figure)
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.list or args.number is None:
        for number in TABLE_IDS:
            function = getattr(table_definitions, f"table{number}")
            summary = (function.__doc__ or "").strip().splitlines()[0]
            print(f"table {number}: {summary}")
        return 0
    if args.number not in TABLE_IDS:
        print(f"no regeneration function for table {args.number}; "
              f"available: {', '.join(str(n) for n in TABLE_IDS)}")
        return 2
    table = getattr(table_definitions, f"table{args.number}")()
    print_figure(table)
    return 0


def _cmd_list_attacks() -> int:
    from repro.attacks import attack_by_name, available_attacks
    from repro.dram.address import AddressMapper

    config = baseline_config()
    mapper = AddressMapper(config.dram)
    for name in available_attacks():
        attack = attack_by_name(name, config.dram, mapper)
        print(f"{name:<24} {type(attack).__name__}")
    return 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    entries = record_workload_trace(
        args.workload, args.entries, config=baseline_config(), seed=args.seed
    )
    written = write_trace(
        args.output,
        entries,
        header=f"synthetic trace of {args.workload} ({args.entries} entries)",
    )
    print(f"wrote {written} entries to {args.output}")
    return 0


def _configure_logging(verbose: int, quiet: int) -> None:
    """Map the global -v/-q counters onto the root logger.

    Results stay on stdout (plain ``print``); progress and diagnostics go to
    stderr through :mod:`logging`, so piping a command's output somewhere
    never captures its chatter.  The default level is INFO -- campaign batch
    progress stays visible without any flag.
    """
    noise = verbose - quiet
    if noise > 0:
        level = logging.DEBUG
    elif noise == 0:
        level = logging.INFO
    elif noise == -1:
        level = logging.WARNING
    else:
        level = logging.ERROR
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(message)s"))
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    # Replace (don't append) so repeated main() calls in one process -- the
    # test suite, notebooks -- never double-print.
    logger.handlers[:] = [handler]


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    # One engine selector for every simulating subcommand: the flag (from
    # the shared _engine_flag parent) overrides REPRO_SIM_ENGINE, which the
    # engine_class resolver reads wherever a simulator is constructed.
    if getattr(args, "engine", None):
        os.environ["REPRO_SIM_ENGINE"] = args.engine
    if args.command == "list-trackers":
        return _cmd_list_trackers()
    if args.command == "list-workloads":
        return _cmd_list_workloads(args.suite)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "storage":
        return _cmd_storage()
    if args.command == "security":
        return _cmd_security(args)
    if args.command == "security-sweep":
        return _cmd_security_sweep(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "scenarios":
        return _cmd_scenarios(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "store":
        return _cmd_store(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_client_status(args)
    if args.command == "results":
        return _cmd_results(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "table":
        return _cmd_table(args)
    if args.command == "list-attacks":
        return _cmd_list_attacks()
    if args.command == "trace-record":
        return _cmd_trace_record(args)
    raise AssertionError(f"unhandled command {args.command}")   # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
