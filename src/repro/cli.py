"""Command-line interface for the DAPPER reproduction.

The CLI wraps the most common entry points so experiments can be launched
without writing Python:

``python -m repro.cli list-trackers``
    Show every registered RowHammer mitigation.
``python -m repro.cli list-workloads [--suite SPEC2K6]``
    Show the 57 workload profiles.
``python -m repro.cli run --tracker dapper-h --workload 429.mcf [--attack refresh]``
    Run one scenario and print normalized performance plus key statistics.
``python -m repro.cli storage``
    Regenerate the Table III storage comparison.
``python -m repro.cli security --tracker dapper-h``
    Mount a double-sided RowHammer attack with the ground-truth auditor.
``python -m repro.cli security-sweep [--trackers a,b] [--attacks x,y]``
    Audit several trackers against several hammering patterns at once.
``python -m repro.cli figure 11`` / ``python -m repro.cli table 3``
    Regenerate one figure or table of the paper (``figure --list`` shows ids).
``python -m repro.cli list-attacks``
    Show the attack kernels available to ``run --attack``.
``python -m repro.cli trace-record --workload 429.mcf --entries 10000 -o mcf.trace``
    Freeze a synthetic workload to a replayable trace file.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.security_eval import (
    DEFAULT_SECURITY_ATTACKS,
    DETERMINISTIC_TRACKERS,
    format_security_table,
    security_sweep,
)
from repro.analysis.storage import storage_comparison_table
from repro.config import baseline_config, reduced_row_config
from repro.cpu.tracefile import record_workload_trace, write_trace
from repro.cpu.workloads import ALL_WORKLOADS, SUITES
from repro.eval import figures as figure_definitions
from repro.eval import tables as table_definitions
from repro.eval.report import format_table, print_figure
from repro.sim.experiment import ExperimentRunner, run_workload
from repro.sim.metrics import slowdown_percent
from repro.trackers.registry import available_trackers

#: Figure numbers that have a regeneration function in :mod:`repro.eval.figures`.
FIGURE_IDS = (1, 2, 3, 4, 5, 9, 10, 11, 12, 13, 14, 15, 16, 17)
#: Table numbers that have a regeneration function in :mod:`repro.eval.tables`.
TABLE_IDS = (1, 2, 3, 4)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DAPPER (HPCA 2025) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-trackers", help="list registered RowHammer mitigations")

    list_workloads = sub.add_parser("list-workloads", help="list workload profiles")
    list_workloads.add_argument("--suite", choices=SUITES, default=None)

    run = sub.add_parser("run", help="run one simulation scenario")
    run.add_argument("--tracker", default="dapper-h", choices=available_trackers())
    run.add_argument("--workload", default="429.mcf")
    run.add_argument("--attack", default=None)
    run.add_argument("--nrh", type=int, default=500)
    run.add_argument("--requests", type=int, default=8_000)
    run.add_argument(
        "--attack-matched-baseline",
        action="store_true",
        help="normalise against a baseline that also runs the attacker",
    )
    run.add_argument(
        "--trefw-scale",
        type=float,
        default=1.0 / 16.0,
        help="refresh-window scale used for short simulation windows",
    )

    sub.add_parser("storage", help="regenerate the Table III storage comparison")

    security = sub.add_parser(
        "security", help="RowHammer security audit under a double-sided attack"
    )
    security.add_argument("--tracker", default="dapper-h", choices=available_trackers())
    security.add_argument("--nrh", type=int, default=500)
    security.add_argument("--requests", type=int, default=3_000)

    sweep = sub.add_parser(
        "security-sweep",
        help="audit several trackers against several hammering patterns",
    )
    sweep.add_argument(
        "--trackers",
        default=",".join(DETERMINISTIC_TRACKERS),
        help="comma-separated tracker names",
    )
    sweep.add_argument(
        "--attacks",
        default=",".join(DEFAULT_SECURITY_ATTACKS),
        help="comma-separated attack names",
    )
    sweep.add_argument("--nrh", type=int, default=500)
    sweep.add_argument("--activations", type=int, default=20_000)

    figure = sub.add_parser("figure", help="regenerate one figure of the paper")
    figure.add_argument("number", nargs="?", type=int, default=None)
    figure.add_argument(
        "--list", action="store_true", help="list the figures that can be regenerated"
    )

    table = sub.add_parser("table", help="regenerate one table of the paper")
    table.add_argument("number", nargs="?", type=int, default=None)
    table.add_argument(
        "--list", action="store_true", help="list the tables that can be regenerated"
    )

    sub.add_parser("list-attacks", help="list the available attack kernels")

    trace = sub.add_parser(
        "trace-record", help="record a synthetic workload to a trace file"
    )
    trace.add_argument("--workload", default="429.mcf")
    trace.add_argument("--entries", type=int, default=10_000)
    trace.add_argument("--seed", type=int, default=None)
    trace.add_argument("-o", "--output", required=True)
    return parser


def _cmd_list_trackers() -> int:
    for name in available_trackers():
        print(name)
    return 0


def _cmd_list_workloads(suite: str | None) -> int:
    rows = [
        {
            "workload": profile.name,
            "suite": profile.suite,
            "apki": profile.apki,
            "row_locality": profile.row_locality,
            "footprint_mb": profile.footprint_bytes // (1024 * 1024),
            "memory_intensive": profile.memory_intensive,
        }
        for profile in ALL_WORKLOADS
        if suite is None or profile.suite == suite
    ]
    print(format_table(rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = baseline_config(nrh=args.nrh).with_refresh_window_scale(args.trefw_scale)
    runner = ExperimentRunner(config, requests_per_core=args.requests)
    run = runner.run(
        args.tracker,
        args.workload,
        attack=args.attack,
        attack_matched_baseline=args.attack_matched_baseline,
    )
    result = run.result
    print(f"tracker             : {args.tracker}")
    print(f"workload            : {args.workload}")
    print(f"attack              : {args.attack or 'none'}")
    print(f"RowHammer threshold : {args.nrh}")
    print(f"normalized perf     : {run.normalized:.4f} "
          f"({slowdown_percent(run.normalized):.2f}% slowdown)")
    print(f"benign IPCs         : "
          + ", ".join(f"{c.ipc:.3f}" for c in result.benign_results()))
    print(f"DRAM activations    : {result.dram_stats.activations}")
    print(f"counter traffic     : {result.dram_stats.counter_reads} reads, "
          f"{result.dram_stats.counter_writes} writes")
    print(f"mitigations         : {result.tracker_stats.mitigations_issued} "
          f"({result.tracker_stats.rows_mitigated} rows)")
    print(f"structure resets    : {result.tracker_stats.structure_resets}")
    print(f"blackout time       : {result.dram_stats.blackout_time_ns / 1e6:.3f} ms")
    return 0


def _cmd_storage() -> int:
    rows = [
        {
            "tracker": row.tracker,
            "sram_kb": round(row.sram_kb, 1),
            "cam_kb": round(row.cam_kb, 1),
            "die_area_mm2": round(row.die_area_mm2, 3),
            "paper_sram_kb": row.paper_sram_kb,
            "paper_cam_kb": row.paper_cam_kb,
        }
        for row in storage_comparison_table()
    ]
    print(format_table(rows))
    return 0


def _cmd_security(args: argparse.Namespace) -> int:
    config = reduced_row_config(nrh=args.nrh, rows_per_bank=4096)
    result = run_workload(
        config=config,
        tracker=args.tracker,
        workload="403.gcc",
        attack="rowhammer",
        requests_per_core=args.requests,
        enable_auditor=True,
    )
    report = result.security
    print(f"tracker                  : {args.tracker}")
    print(f"RowHammer threshold      : {report.nrh}")
    print(f"max per-row activations  : {report.max_count}")
    print(f"mitigations issued       : {result.tracker_stats.mitigations_issued}")
    print(f"verdict                  : {'SECURE' if report.is_secure else 'VULNERABLE'}")
    return 0 if report.is_secure or args.tracker == "none" else 1


def _cmd_security_sweep(args: argparse.Namespace) -> int:
    trackers = tuple(name for name in args.trackers.split(",") if name)
    attacks = tuple(name for name in args.attacks.split(",") if name)
    scenarios = security_sweep(
        trackers=trackers,
        attacks=attacks,
        config=baseline_config(nrh=args.nrh),
        activations=args.activations,
    )
    print(format_security_table(scenarios))
    insecure = [s for s in scenarios if not s.is_secure and s.tracker != "none"]
    return 1 if insecure else 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.list or args.number is None:
        for number in FIGURE_IDS:
            function = getattr(figure_definitions, f"figure{number}")
            summary = (function.__doc__ or "").strip().splitlines()[0]
            print(f"figure {number:>2}: {summary}")
        return 0
    if args.number not in FIGURE_IDS:
        print(f"no regeneration function for figure {args.number}; "
              f"available: {', '.join(str(n) for n in FIGURE_IDS)}")
        return 2
    figure = getattr(figure_definitions, f"figure{args.number}")()
    print_figure(figure)
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.list or args.number is None:
        for number in TABLE_IDS:
            function = getattr(table_definitions, f"table{number}")
            summary = (function.__doc__ or "").strip().splitlines()[0]
            print(f"table {number}: {summary}")
        return 0
    if args.number not in TABLE_IDS:
        print(f"no regeneration function for table {args.number}; "
              f"available: {', '.join(str(n) for n in TABLE_IDS)}")
        return 2
    table = getattr(table_definitions, f"table{args.number}")()
    print_figure(table)
    return 0


def _cmd_list_attacks() -> int:
    from repro.attacks import attack_by_name, available_attacks
    from repro.dram.address import AddressMapper

    config = baseline_config()
    mapper = AddressMapper(config.dram)
    for name in available_attacks():
        attack = attack_by_name(name, config.dram, mapper)
        print(f"{name:<24} {type(attack).__name__}")
    return 0


def _cmd_trace_record(args: argparse.Namespace) -> int:
    entries = record_workload_trace(
        args.workload, args.entries, config=baseline_config(), seed=args.seed
    )
    written = write_trace(
        args.output,
        entries,
        header=f"synthetic trace of {args.workload} ({args.entries} entries)",
    )
    print(f"wrote {written} entries to {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list-trackers":
        return _cmd_list_trackers()
    if args.command == "list-workloads":
        return _cmd_list_workloads(args.suite)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "storage":
        return _cmd_storage()
    if args.command == "security":
        return _cmd_security(args)
    if args.command == "security-sweep":
        return _cmd_security_sweep(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "table":
        return _cmd_table(args)
    if args.command == "list-attacks":
        return _cmd_list_attacks()
    if args.command == "trace-record":
        return _cmd_trace_record(args)
    raise AssertionError(f"unhandled command {args.command}")   # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
