"""Reporting helpers for the evaluation harness."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FigureData:
    """Data behind one figure or table of the paper.

    ``rows`` is a list of flat dictionaries (one per bar / point / table row);
    ``notes`` records scaling decisions or paper reference values so that the
    printed output is self-describing.
    """

    name: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row) -> None:
        self.rows.append(row)

    def column(self, key: str) -> list:
        return [row.get(key) for row in self.rows]

    def filter(self, **criteria) -> list[dict]:
        """Rows matching every ``key=value`` criterion."""
        matched = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                matched.append(row)
        return matched

    def value(self, value_key: str, **criteria) -> float:
        """The single value of ``value_key`` in the row matching ``criteria``."""
        rows = self.filter(**criteria)
        if len(rows) != 1:
            raise KeyError(
                f"expected exactly one row matching {criteria}, found {len(rows)}"
            )
        return rows[0][value_key]


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(rows: list[dict]) -> str:
    """Format a list of dictionaries as an aligned text table."""
    if not rows:
        return "(no data)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        column: max(len(column), *(len(_format_cell(row.get(column, ""))) for row in rows))
        for column in columns
    }
    lines = [
        "  ".join(column.ljust(widths[column]) for column in columns),
        "  ".join("-" * widths[column] for column in columns),
    ]
    for row in rows:
        lines.append(
            "  ".join(
                _format_cell(row.get(column, "")).ljust(widths[column])
                for column in columns
            )
        )
    return "\n".join(lines)


def print_figure(figure: FigureData) -> None:
    """Print a figure's rows (and notes) in the paper's table-like form."""
    print(f"\n=== {figure.name}: {figure.title} ===")
    print(format_table(figure.rows))
    for note in figure.notes:
        print(f"note: {note}")
