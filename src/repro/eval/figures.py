"""Experiment definitions for every performance figure in the paper.

Each ``figureN`` function runs the simulations behind the corresponding
figure and returns a :class:`~repro.eval.report.FigureData` whose rows are the
series the paper plots.  All functions accept ``workloads`` /
``requests_per_core`` / ``nrh_values`` arguments so the benchmark harness can
trade accuracy against runtime; the defaults are the "quick" settings used by
``benchmarks/``.

Two methodology notes (see EXPERIMENTS.md for the full discussion):

* Motivation figures (1-5) report slowdowns relative to the insecure,
  attack-free baseline, so they include the attack's own bandwidth cost --
  that is what the paper's 60-90% numbers mean.
* Mitigation-overhead figures (9-17) report slowdowns relative to an
  *attack-matched* insecure baseline, isolating the overhead added by the
  mitigation itself (the paper's sub-1% DAPPER-H numbers are only meaningful
  under this normalisation).
* Experiments that require the mapping-agnostic *streaming* attack to sweep
  the whole row space use the reduced-row configuration
  (:func:`repro.config.reduced_row_config`).
"""

from __future__ import annotations

from repro.attacks import tailored_attack_name
from repro.config import (
    MitigationCommand,
    SystemConfig,
    baseline_config,
    large_system_config,
    reduced_row_config,
)
from repro.eval.report import FigureData
from repro.scenarios import family_by_name
from repro.scenarios.families import (
    DEFAULT_TREFW_SCALE,
    MOTIVATION_TRACKERS,
    default_workloads,
    full_geometry_config,
    motivation_series,
    paper_figure12_series,
    streaming_config,
)
from repro.sim.experiment import ExperimentRunner
from repro.sim.sweep import SweepRunner

#: RowHammer thresholds swept by the sensitivity figures.
FULL_NRH_SWEEP: tuple[int, ...] = (125, 250, 500, 1000, 2000, 4000)
MOTIVATION_NRH_SWEEP: tuple[int, ...] = (500, 1000, 2000, 4000)


def _motivation_runner(
    nrh: int = 500,
    requests_per_core: int = 8_000,
    config: SystemConfig | None = None,
) -> ExperimentRunner:
    config = config or baseline_config(nrh=nrh)
    config = config.with_nrh(nrh).with_refresh_window_scale(DEFAULT_TREFW_SCALE)
    return ExperimentRunner(config, requests_per_core=requests_per_core)


def _dapper_runner(
    nrh: int = 500,
    requests_per_core: int = 8_000,
) -> ExperimentRunner:
    """Runner for the DAPPER / comparison figures (benign and refresh-attack
    scenarios) at the full Table I DRAM geometry."""
    config = baseline_config(nrh=nrh).with_refresh_window_scale(DEFAULT_TREFW_SCALE)
    return ExperimentRunner(config, requests_per_core=requests_per_core)


def _streaming_runner(
    nrh: int = 500,
    requests_per_core: int = 8_000,
) -> ExperimentRunner:
    """Runner for scenarios involving the mapping-agnostic *streaming* attack.

    The streaming attack must sweep the whole per-rank row space to charge the
    row-group counters, which takes ~6 ms of simulated time on the full 2M-row
    rank; the reduced-row geometry keeps that sweep inside a tractable window
    (documented substitution, see EXPERIMENTS.md).
    """
    config = reduced_row_config(nrh=nrh).with_refresh_window_scale(DEFAULT_TREFW_SCALE)
    return ExperimentRunner(config, requests_per_core=requests_per_core)


def _suite_of(workload_name: str) -> str:
    from repro.cpu.workloads import get_workload

    return get_workload(workload_name).suite


# --------------------------------------------------------------------------- #
# Sweep-based figure plumbing: figures that are plain scenario cross-products
# declare their scenarios as catalog families (repro.scenarios.families, the
# ``paper-*`` entries) and execute them through a SweepRunner, which
# deduplicates shared insecure baselines across the whole batch (and, given a
# cache directory, replays previously simulated scenarios from disk).  Pass
# ``sweep=SweepRunner(cache_dir=..., jobs=...)`` to any such figure to
# parallelise or cache its regeneration; suite files that reference the same
# ``paper-*`` families share the cache entries.
# --------------------------------------------------------------------------- #

def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# --------------------------------------------------------------------------- #
# Motivation figures (Section III)
# --------------------------------------------------------------------------- #


def figure1(
    workloads: list[str] | None = None,
    requests_per_core: int = 8_000,
    nrh: int = 500,
) -> FigureData:
    """Figure 1: per-suite normalized performance of the four scalable
    trackers under their tailored Perf-Attacks, versus cache thrashing."""
    workloads = workloads or default_workloads(1)
    runner = _motivation_runner(nrh, requests_per_core)
    figure = FigureData(
        name="figure1",
        title="Normalized performance under Perf-Attacks vs cache thrashing "
        f"(NRH={nrh})",
    )
    series = [("cache-thrashing", "none", "cache-thrashing")] + [
        (tracker, tracker, None) for tracker in MOTIVATION_TRACKERS
    ]

    by_suite: dict[str, dict[str, list[float]]] = {}
    for workload in workloads:
        suite = _suite_of(workload)
        for label, tracker, attack in series:
            attack_name = attack or tailored_attack_name(tracker)
            run = runner.run(tracker, workload, attack=attack_name)
            by_suite.setdefault(suite, {}).setdefault(label, []).append(
                run.normalized
            )
    for suite, values in by_suite.items():
        for label, normals in values.items():
            figure.add(
                suite=suite,
                series=label,
                normalized_performance=sum(normals) / len(normals),
                workloads=len(normals),
            )
    # Overall average ("All" bar of the paper's figure).
    for label, _, _ in series:
        all_values = [
            row["normalized_performance"]
            for row in figure.rows
            if row["series"] == label
        ]
        figure.add(
            suite="All",
            series=label,
            normalized_performance=sum(all_values) / len(all_values),
            workloads=len(workloads),
        )
    figure.notes.append(
        "Paper reports 60-90% slowdowns for tailored Perf-Attacks and ~40% "
        "for cache thrashing at NRH=500."
    )
    return figure


def figure2(
    workload: str = "470.lbm",
    requests_per_core: int = 8_000,
    nrh: int = 500,
) -> FigureData:
    """Figure 2 (qualitative): the mechanism each tailored attack exploits.

    Reports, per tracker, the extra in-DRAM counter traffic and the structure
    reset blackout time the attack induces.
    """
    runner = _motivation_runner(nrh, requests_per_core)
    figure = FigureData(
        name="figure2",
        title="Attack mechanics: counter traffic and reset blackouts",
    )
    for tracker in MOTIVATION_TRACKERS:
        run = runner.run(tracker, workload, attack=tailored_attack_name(tracker))
        stats = run.result.dram_stats
        activations = max(1, stats.activations)
        figure.add(
            tracker=tracker,
            attack=tailored_attack_name(tracker),
            counter_accesses_per_kilo_act=1000.0
            * (stats.counter_reads + stats.counter_writes)
            / activations,
            structure_resets=run.result.tracker_stats.structure_resets,
            blackout_ms=stats.blackout_time_ns / 1e6,
            normalized_performance=run.normalized,
        )
    figure.notes.append(
        "Hydra/START are hurt through counter traffic; CoMeT/ABACUS through "
        "full-structure reset refreshes."
    )
    return figure


def figure3(
    workloads: list[str] | None = None,
    requests_per_core: int = 8_000,
    nrh: int = 500,
    sweep: SweepRunner | None = None,
) -> FigureData:
    """Figure 3: per-workload normalized performance under cache thrashing
    and tailored Perf-Attacks for the four scalable trackers."""
    workloads = workloads or default_workloads(1)
    sweep = sweep or SweepRunner()
    figure = FigureData(
        name="figure3",
        title=f"Per-workload impact of Perf-Attacks (NRH={nrh})",
    )
    from repro.cpu.workloads import get_workload

    series = motivation_series()
    specs = family_by_name("paper-figure3").expand(
        {"workloads": workloads, "requests_per_core": requests_per_core, "nrh": nrh}
    )
    outcomes = iter(sweep.run(specs))
    for workload in workloads:
        memory_intensive = get_workload(workload).memory_intensive
        for label, _, _ in series:
            figure.add(
                workload=workload,
                memory_intensive=memory_intensive,
                series=label,
                normalized_performance=next(outcomes).normalized,
            )
    return figure


def figure4(
    workloads: list[str] | None = None,
    requests_per_core: int = 6_000,
    nrh_values: tuple[int, ...] = MOTIVATION_NRH_SWEEP,
    sweep: SweepRunner | None = None,
) -> FigureData:
    """Figure 4: sensitivity of the Perf-Attacks to the RowHammer threshold."""
    workloads = workloads or default_workloads(1)[:3]
    sweep = sweep or SweepRunner()
    figure = FigureData(
        name="figure4",
        title="Perf-Attack slowdowns as NRH varies",
    )
    series = motivation_series()
    specs = family_by_name("paper-figure4").expand(
        {
            "workloads": workloads,
            "requests_per_core": requests_per_core,
            "nrh_values": nrh_values,
        }
    )
    outcomes = iter(sweep.run(specs))
    for nrh in nrh_values:
        for label, _, _ in series:
            values = [next(outcomes).normalized for _ in workloads]
            figure.add(
                nrh=nrh, series=label, normalized_performance=_mean(values)
            )
    figure.notes.append(
        "Paper: even at NRH=4K the tailored attacks cost 46-71% vs ~41% for "
        "cache thrashing."
    )
    return figure


def figure5(
    workloads: list[str] | None = None,
    requests_per_core: int = 6_000,
    llc_sizes_mb: tuple[int, ...] = (2, 3, 4, 5),
    nrh: int = 500,
) -> FigureData:
    """Figure 5: sensitivity to per-core LLC size on the 8-channel system."""
    workloads = workloads or default_workloads(1)[:3]
    figure = FigureData(
        name="figure5",
        title="Perf-Attacks on the large system as per-core LLC size varies",
    )
    from repro.attacks import _TAILORED

    for llc_mb in llc_sizes_mb:
        config = large_system_config(per_core_llc_mb=llc_mb, nrh=nrh)
        config = config.with_refresh_window_scale(DEFAULT_TREFW_SCALE)
        runner = ExperimentRunner(config, requests_per_core=requests_per_core)
        thrash = runner.average_normalized("none", workloads, attack="cache-thrashing")
        figure.add(
            per_core_llc_mb=llc_mb,
            series="cache-thrashing",
            normalized_performance=thrash,
        )
        for tracker in MOTIVATION_TRACKERS:
            value = runner.average_normalized(
                tracker, workloads, attack=_TAILORED[tracker]
            )
            figure.add(
                per_core_llc_mb=llc_mb,
                series=tracker,
                normalized_performance=value,
            )
    return figure


# --------------------------------------------------------------------------- #
# DAPPER-S / DAPPER-H figures (Sections V and VI)
# --------------------------------------------------------------------------- #


def figure9(
    workloads: list[str] | None = None,
    requests_per_core: int = 8_000,
    nrh: int = 500,
) -> FigureData:
    """Figure 9: DAPPER-S under the two mapping-agnostic attacks, per suite."""
    workloads = workloads or default_workloads(1)
    refresh_runner = _dapper_runner(nrh, requests_per_core)
    streaming_runner = _streaming_runner(nrh, requests_per_core)
    figure = FigureData(
        name="figure9",
        title="Performance overhead of DAPPER-S under mapping-agnostic attacks",
    )
    by_suite: dict[str, dict[str, list[float]]] = {}
    for workload in workloads:
        suite = _suite_of(workload)
        for attack, runner in (
            ("row-streaming", streaming_runner),
            ("refresh", refresh_runner),
        ):
            run = runner.run(
                "dapper-s", workload, attack=attack, attack_matched_baseline=True
            )
            overhead = (1.0 - run.normalized) * 100.0
            by_suite.setdefault(suite, {}).setdefault(attack, []).append(overhead)
    for suite, values in by_suite.items():
        for attack, overheads in values.items():
            figure.add(
                suite=suite,
                attack="streaming" if attack == "row-streaming" else attack,
                overhead_percent=sum(overheads) / len(overheads),
            )
    for attack_label, attack in (("streaming", "row-streaming"), ("refresh", "refresh")):
        all_values = [
            row["overhead_percent"]
            for row in figure.rows
            if row["attack"] == attack_label
        ]
        figure.add(
            suite="All",
            attack=attack_label,
            overhead_percent=sum(all_values) / len(all_values),
        )
    figure.notes.append(
        "Paper: streaming costs DAPPER-S ~13% and the refresh attack ~20%."
    )
    return figure


def figure10(
    workloads: list[str] | None = None,
    requests_per_core: int = 8_000,
    nrh: int = 500,
) -> FigureData:
    """Figure 10: DAPPER-H under the streaming and refresh attacks."""
    workloads = workloads or default_workloads(1)
    refresh_runner = _dapper_runner(nrh, requests_per_core)
    streaming_runner = _streaming_runner(nrh, requests_per_core)
    figure = FigureData(
        name="figure10",
        title="Normalized performance of DAPPER-H under mapping-agnostic attacks",
    )
    from repro.cpu.workloads import get_workload

    for workload in workloads:
        memory_intensive = get_workload(workload).memory_intensive
        for attack, runner in (
            ("row-streaming", streaming_runner),
            ("refresh", refresh_runner),
        ):
            run = runner.run(
                "dapper-h", workload, attack=attack, attack_matched_baseline=True
            )
            figure.add(
                workload=workload,
                memory_intensive=memory_intensive,
                attack="streaming" if attack == "row-streaming" else attack,
                normalized_performance=run.normalized,
            )
    all_values = figure.column("normalized_performance")
    figure.add(
        workload="average",
        memory_intensive=True,
        attack="both",
        normalized_performance=sum(all_values) / len(all_values),
    )
    figure.notes.append("Paper: <1% average slowdown, worst case 4.7%.")
    return figure


def figure11(
    workloads: list[str] | None = None,
    requests_per_core: int = 8_000,
    nrh: int = 500,
    sweep: SweepRunner | None = None,
) -> FigureData:
    """Figure 11: DAPPER-H on benign applications (no attacker)."""
    workloads = workloads or default_workloads(1)
    sweep = sweep or SweepRunner()
    figure = FigureData(
        name="figure11",
        title="Normalized performance of DAPPER-H on benign applications",
    )
    from repro.cpu.workloads import get_workload

    specs = family_by_name("paper-figure11").expand(
        {"workloads": workloads, "requests_per_core": requests_per_core, "nrh": nrh}
    )
    for workload, outcome in zip(workloads, sweep.run(specs)):
        figure.add(
            workload=workload,
            memory_intensive=get_workload(workload).memory_intensive,
            normalized_performance=outcome.normalized,
        )
    values = figure.column("normalized_performance")
    figure.add(
        workload="average",
        memory_intensive=True,
        normalized_performance=sum(values) / len(values),
    )
    figure.notes.append("Paper: 0.1% average slowdown, worst case 4.4% (429.mcf).")
    return figure


def figure12(
    workloads: list[str] | None = None,
    requests_per_core: int = 6_000,
    nrh_values: tuple[int, ...] = (125, 250, 500, 1000),
    sweep: SweepRunner | None = None,
) -> FigureData:
    """Figure 12: DAPPER-H sensitivity to the RowHammer threshold."""
    workloads = workloads or default_workloads(1)[:3]
    sweep = sweep or SweepRunner()
    figure = FigureData(
        name="figure12",
        title="DAPPER-H vs NRH under benign and Perf-Attack conditions",
    )
    specs = family_by_name("paper-figure12").expand(
        {
            "workloads": workloads,
            "requests_per_core": requests_per_core,
            "nrh_values": nrh_values,
        }
    )
    outcomes = iter(sweep.run(specs))
    for nrh in nrh_values:
        for label, _, _ in paper_figure12_series(nrh):
            values = [next(outcomes).normalized for _ in workloads]
            figure.add(nrh=nrh, series=label, normalized_performance=_mean(values))
    figure.notes.append(
        "Paper: <1% slowdown at NRH >= 500; up to ~6% at NRH = 125 under attack."
    )
    return figure


def figure13(
    workloads: list[str] | None = None,
    requests_per_core: int = 6_000,
    nrh_values: tuple[int, ...] = (250, 500, 1000),
) -> FigureData:
    """Figure 13: blast radius 2 and Same-Bank DRFM mitigation back-ends."""
    workloads = workloads or default_workloads(1)[:3]
    figure = FigureData(
        name="figure13",
        title="DAPPER-H with blast radius 2 and DRFMsb, benign and refresh attack",
    )
    variants = (
        ("DAPPER-H", MitigationCommand.VRR, 1),
        ("DAPPER-H-BR2", MitigationCommand.VRR, 2),
        ("DAPPER-H-DRFMsb", MitigationCommand.DRFM_SB, 2),
    )
    for nrh in nrh_values:
        for label, command, blast_radius in variants:
            runner = _dapper_runner(nrh, requests_per_core)
            config = runner.config.with_mitigation(command, blast_radius)
            benign = runner.average_normalized("dapper-h", workloads, config=config)
            refresh = runner.average_normalized(
                "dapper-h",
                workloads,
                attack="refresh",
                config=config,
                attack_matched_baseline=True,
            )
            figure.add(
                nrh=nrh, series=label, normalized_performance=benign
            )
            figure.add(
                nrh=nrh,
                series=f"{label}-Refresh",
                normalized_performance=refresh,
            )
    figure.notes.append(
        "Paper: at NRH=500 under the refresh attack, BR1/BR2 cost 1%/2% and "
        "DRFMsb about 8%."
    )
    return figure


# --------------------------------------------------------------------------- #
# Comparison figures (Section VI-I .. VI-K)
# --------------------------------------------------------------------------- #


def figure14(
    workloads: list[str] | None = None,
    requests_per_core: int = 6_000,
    nrh_values: tuple[int, ...] = (125, 250, 500, 1000),
) -> FigureData:
    """Figure 14: BlockHammer versus DAPPER-H on benign applications."""
    workloads = workloads or default_workloads(1)[:3]
    figure = FigureData(
        name="figure14",
        title="BlockHammer vs DAPPER-H (benign) as NRH varies",
    )
    for nrh in nrh_values:
        runner = _dapper_runner(nrh, requests_per_core)
        figure.add(
            nrh=nrh,
            series="BlockHammer",
            normalized_performance=runner.average_normalized("blockhammer", workloads),
        )
        figure.add(
            nrh=nrh,
            series="DAPPER-H",
            normalized_performance=runner.average_normalized("dapper-h", workloads),
        )
        drfm_config = runner.config.with_mitigation(MitigationCommand.DRFM_SB, 2)
        figure.add(
            nrh=nrh,
            series="DAPPER-H-DRFMsb",
            normalized_performance=runner.average_normalized(
                "dapper-h", workloads, config=drfm_config
            ),
        )
    figure.notes.append(
        "Paper: BlockHammer loses 25% at NRH=500 and 66% at NRH=125, while "
        "DAPPER-H stays within a few percent."
    )
    return figure


def _probabilistic_series(nrh: int) -> list[tuple[str, str, MitigationCommand, int]]:
    return [
        ("PARA", "para", MitigationCommand.VRR, 1),
        ("PARA-DRFMsb", "para", MitigationCommand.DRFM_SB, 2),
        ("PrIDE", "pride", MitigationCommand.VRR, 1),
        ("PrIDE-RFMsb", "pride", MitigationCommand.RFM_SB, 1),
        ("DAPPER-H", "dapper-h", MitigationCommand.VRR, 1),
        ("DAPPER-H-DRFMsb", "dapper-h", MitigationCommand.DRFM_SB, 2),
    ]


def figure15(
    workloads: list[str] | None = None,
    requests_per_core: int = 6_000,
    nrh_values: tuple[int, ...] = (125, 500, 1000),
) -> FigureData:
    """Figure 15: PARA / PrIDE vs DAPPER-H on benign applications."""
    workloads = workloads or default_workloads(1)[:3]
    figure = FigureData(
        name="figure15",
        title="Probabilistic mitigations vs DAPPER-H (benign)",
    )
    for nrh in nrh_values:
        runner = _dapper_runner(nrh, requests_per_core)
        for label, tracker, command, blast_radius in _probabilistic_series(nrh):
            config = runner.config.with_mitigation(command, blast_radius)
            figure.add(
                nrh=nrh,
                series=label,
                normalized_performance=runner.average_normalized(
                    tracker, workloads, config=config
                ),
            )
    figure.notes.append(
        "Paper: at NRH=125, PARA and PrIDE cost 8.5% and 16.7%; DAPPER-H 4%."
    )
    return figure


def figure16(
    workloads: list[str] | None = None,
    requests_per_core: int = 6_000,
    nrh_values: tuple[int, ...] = (125, 500, 1000),
) -> FigureData:
    """Figure 16: PARA / PrIDE vs DAPPER-H under Perf-Attacks."""
    workloads = workloads or default_workloads(1)[:3]
    figure = FigureData(
        name="figure16",
        title="Probabilistic mitigations vs DAPPER-H under the refresh attack",
    )
    for nrh in nrh_values:
        runner = _dapper_runner(nrh, requests_per_core)
        for label, tracker, command, blast_radius in _probabilistic_series(nrh):
            config = runner.config.with_mitigation(command, blast_radius)
            figure.add(
                nrh=nrh,
                series=label,
                normalized_performance=runner.average_normalized(
                    tracker,
                    workloads,
                    attack="refresh",
                    config=config,
                    attack_matched_baseline=True,
                ),
            )
    figure.notes.append(
        "Paper: at NRH=125, DAPPER-H loses ~6% while PARA and PrIDE lose "
        "15% and 23%."
    )
    return figure


def figure17(
    workloads: list[str] | None = None,
    requests_per_core: int = 6_000,
    nrh_values: tuple[int, ...] = (125, 500, 1000),
) -> FigureData:
    """Figure 17: PRAC versus DAPPER-H, benign and under Perf-Attacks."""
    workloads = workloads or default_workloads(1)[:3]
    figure = FigureData(
        name="figure17",
        title="PRAC vs DAPPER-H, benign and under the refresh attack",
    )
    for nrh in nrh_values:
        runner = _dapper_runner(nrh, requests_per_core)
        drfm_config = runner.config.with_mitigation(MitigationCommand.DRFM_SB, 2)
        figure.add(
            nrh=nrh,
            series="PRAC",
            normalized_performance=runner.average_normalized("prac", workloads),
        )
        figure.add(
            nrh=nrh,
            series="PRAC-Perf",
            normalized_performance=runner.average_normalized(
                "prac", workloads, attack="refresh", attack_matched_baseline=True
            ),
        )
        figure.add(
            nrh=nrh,
            series="DAPPER-H",
            normalized_performance=runner.average_normalized("dapper-h", workloads),
        )
        figure.add(
            nrh=nrh,
            series="DAPPER-H-Refresh",
            normalized_performance=runner.average_normalized(
                "dapper-h", workloads, attack="refresh", attack_matched_baseline=True
            ),
        )
        figure.add(
            nrh=nrh,
            series="DAPPER-H-DRFMsb",
            normalized_performance=runner.average_normalized(
                "dapper-h", workloads, config=drfm_config
            ),
        )
    figure.notes.append(
        "Paper: PRAC costs ~7% on benign applications at every NRH but is "
        "largely insensitive to Perf-Attacks; DAPPER-H costs <4% benign."
    )
    return figure
