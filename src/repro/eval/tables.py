"""Experiment definitions for the paper's tables."""

from __future__ import annotations

import dataclasses

from repro.analysis.dapper_h_security import analyze_dapper_h_mapping_capture
from repro.analysis.mapping_capture import table2_rows
from repro.analysis.storage import storage_comparison_table
from repro.config import SystemConfig, baseline_config
from repro.eval.report import FigureData
from repro.scenarios import default_workloads, family_by_name
from repro.scenarios.families import paper_table4_series
from repro.sim.sweep import SweepRunner


def table1(config: SystemConfig | None = None) -> FigureData:
    """Table I: the simulated system configuration."""
    config = config or baseline_config()
    table = FigureData(name="table1", title="System configuration")
    table.add(parameter="Cores", value=f"{config.cores.num_cores} OoO @ {config.cores.freq_ghz} GHz")
    table.add(parameter="ROB entries", value=str(config.cores.rob_entries))
    table.add(
        parameter="Shared LLC",
        value=f"{config.llc.size_bytes // (1024 * 1024)}MB, {config.llc.ways}-way",
    )
    table.add(
        parameter="Memory size",
        value=f"{config.dram.total_bytes // (1024 ** 3)} GB DDR5",
    )
    table.add(
        parameter="DRAM organization",
        value=(
            f"{config.dram.banks_per_group} banks x {config.dram.bank_groups_per_rank} groups x "
            f"{config.dram.ranks_per_channel} ranks x {config.dram.channels} channels"
        ),
    )
    table.add(
        parameter="Rows per bank, size",
        value=f"{config.dram.rows_per_bank // 1024}K, {config.dram.row_size_bytes // 1024}KB",
    )
    table.add(
        parameter="tRC, tRFC, tREFI",
        value=(
            f"{config.timings.trc_ns}ns, {config.timings.trfc_ns}ns, "
            f"{config.timings.trefi_ns / 1000}us"
        ),
    )
    table.add(parameter="tRCD-tRP-tCL", value="16-16-16 ns")
    table.add(parameter="RowHammer threshold (default)", value=str(config.rowhammer.nrh))
    return table


def table2(config: SystemConfig | None = None) -> FigureData:
    """Table II: DAPPER-S Mapping-Capturing attack iterations and time."""
    table = FigureData(
        name="table2",
        title="Vulnerability of DAPPER-S to Mapping-Capturing attacks",
    )
    for row in table2_rows(config):
        table.add(**row)
    analysis = analyze_dapper_h_mapping_capture(config)
    table.notes.append(
        "DAPPER-H (Eq. 6-7): per-window capture probability "
        f"{analysis.success_probability_per_window:.5f} "
        f"(prevention rate {analysis.prevention_rate * 100:.2f}%)."
    )
    return table


def table3(config: SystemConfig | None = None) -> FigureData:
    """Table III: storage overhead per 32GB DDR5 channel."""
    table = FigureData(name="table3", title="Storage overhead per 32GB of DDR5")
    for row in storage_comparison_table(config):
        table.add(**dataclasses.asdict(row))
    table.notes.append(
        "Paper values: Hydra 56.5KB, CoMeT 112KB+23KB CAM, START 4KB, "
        "ABACUS 19.3KB+7.5KB CAM, DAPPER-H 96KB."
    )
    return table


#: The paper's Table IV values (percent energy overhead) for reference.
PAPER_TABLE4 = {
    (125, "benign"): 4.5,
    (125, "streaming"): 7.0,
    (125, "refresh"): 7.5,
    (500, "benign"): 0.1,
    (500, "streaming"): 0.2,
    (500, "refresh"): 1.1,
    (1000, "benign"): 0.0,
    (1000, "streaming"): 0.1,
    (1000, "refresh"): 0.6,
}


def table4(
    workloads: list[str] | None = None,
    requests_per_core: int = 6_000,
    nrh_values: tuple[int, ...] = (125, 500, 1000),
    sweep: SweepRunner | None = None,
) -> FigureData:
    """Table IV: energy overhead of DAPPER-H (benign, streaming, refresh)."""
    workloads = workloads or default_workloads(1)[:3]
    sweep = sweep or SweepRunner()
    table = FigureData(name="table4", title="Energy overhead of DAPPER-H")
    specs = family_by_name("paper-table4").expand(
        {
            "workloads": workloads,
            "requests_per_core": requests_per_core,
            "nrh_values": nrh_values,
        }
    )
    outcomes = iter(sweep.run(specs))
    for nrh in nrh_values:
        for scenario, _, _ in paper_table4_series(nrh):
            overheads = []
            for _ in workloads:
                outcome = next(outcomes)
                overheads.append(
                    outcome.result.energy.overhead_vs(outcome.baseline.energy)
                    * 100.0
                )
            table.add(
                nrh=nrh,
                scenario=scenario,
                energy_overhead_percent=sum(overheads) / len(overheads),
                paper_percent=PAPER_TABLE4.get((nrh, scenario)),
            )
    table.notes.append(
        "Overhead is relative to the insecure baseline under the same attack "
        "conditions; mitigative refreshes are the dominant contribution."
    )
    return table
