"""Per-figure and per-table experiment definitions.

Each function regenerates the data behind one figure or table of the paper
and returns it as a :class:`repro.eval.report.FigureData`, which the
benchmarks print as the rows/series the paper reports.
"""

from repro.eval.report import FigureData, format_table, print_figure
from repro.eval import figures, tables

__all__ = ["FigureData", "format_table", "print_figure", "figures", "tables"]
