"""PrIDE: probabilistic in-DRAM mitigation paced by RFM commands (ISCA 2024).

PrIDE samples activations into a small per-bank FIFO and performs the queued
mitigations on periodic refresh-management opportunities.  The number of
mitigation opportunities each bank needs per refresh window scales inversely
with the RowHammer threshold, so -- like PARA -- PrIDE becomes expensive at
ultra-low thresholds, and more so when the mitigation command blocks several
banks (RFMsb).

Paper context: probabilistic comparison point of Section VI-J (Figures 15
and 16).  Key parameters: the per-bank sampling FIFO depth and the
RFM-opportunity pacing derived from NRH.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.crypto.prng import XorShift64
from repro.dram.address import RowAddress
from repro.trackers.base import (
    EMPTY_RESPONSE,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)


@dataclass
class _BankQueue:
    """Per-bank sampling queue and activation budget."""

    queue: deque = field(default_factory=lambda: deque(maxlen=2))
    activations_since_mitigation: int = 0


class PrideTracker(RowHammerTracker):
    """PrIDE with 2-entry per-bank sampling queues."""

    name = "pride"

    QUEUE_ENTRIES = 2
    SAMPLE_PROBABILITY = 1.0 / 16.0
    #: A mitigation opportunity is granted every ``NRH * PACE_FRACTION``
    #: activations of a bank (the RFM pacing the design relies on).
    PACE_FRACTION = 0.125

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.activations_per_mitigation = max(
            1, int(self.nrh * self.PACE_FRACTION)
        )
        self._banks: dict[int, _BankQueue] = {}
        self._rng = XorShift64(config.seed ^ 0x50524944)  # "PRID"

    def _bank_queue(self, bank_flat: int) -> _BankQueue:
        state = self._banks.get(bank_flat)
        if state is None:
            state = _BankQueue(queue=deque(maxlen=self.QUEUE_ENTRIES))
            self._banks[bank_flat] = state
        return state

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self._note_activation()
        state = self._bank_queue(row.bank.flat(self.org))
        state.activations_since_mitigation += 1

        if self._rng.next_float() < self.SAMPLE_PROBABILITY:
            state.queue.append(row)

        if state.activations_since_mitigation >= self.activations_per_mitigation:
            state.activations_since_mitigation = 0
            target = state.queue.popleft() if state.queue else row
            self._note_mitigation()
            return TrackerResponse(mitigations=(target,))
        return EMPTY_RESPONSE

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        for state in self._banks.values():
            state.queue.clear()
            state.activations_since_mitigation = 0
        return EMPTY_RESPONSE

    def storage_report(self) -> StorageReport:
        per_bank_bits = self.QUEUE_ENTRIES * 21 + 16
        return StorageReport(
            sram_bytes=per_bank_bits * self.org.banks_per_channel // 8
        )
