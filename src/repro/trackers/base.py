"""Tracker interface shared by every RowHammer mitigation.

The memory controller calls into the tracker at two points:

* :meth:`RowHammerTracker.throttle_delay_ns` before servicing a request, so
  throttling mitigations (BlockHammer) can delay suspicious activations;
* :meth:`RowHammerTracker.on_activation` after every row activation, which
  returns a :class:`TrackerResponse` describing the work the mitigation needs
  the memory controller to perform: extra DRAM accesses to in-DRAM counters,
  mitigative refreshes for specific aggressor rows, bulk row-group refreshes,
  or full structure resets that blank out a rank or channel.

Every tracker also reports its storage cost (:class:`StorageReport`) so the
Table III comparison can be regenerated from the implementations themselves.

Paper context: this interface realises the controller/tracker interaction of
the paper's evaluation methodology (Section IV); the response vocabulary
(mitigations, group mitigations, counter traffic, blackouts) covers every
mechanism the Perf-Attacks of Section III exploit.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable

from repro.config import SystemConfig
from repro.dram.address import RowAddress
from repro.dram.commands import Blackout


@dataclass(frozen=True)
class GroupMitigation:
    """A bulk mitigative refresh of one row group (DAPPER-S style).

    Rather than enumerate hundreds of member rows eagerly, the mitigation
    carries a membership predicate over the rank's flat row index space; the
    memory controller charges the per-bank refresh cost analytically and the
    security auditor uses the predicate to reset the rows it tracks.
    """

    channel: int
    rank: int
    num_rows: int
    rows_per_bank: float
    covers: Callable[[int], bool]
    reason: str = "group-mitigation"


@dataclass(frozen=True)
class TrackerResponse:
    """Work requested from the memory controller after one activation."""

    counter_reads: int = 0
    counter_writes: int = 0
    mitigations: tuple[RowAddress, ...] = ()
    group_mitigations: tuple[GroupMitigation, ...] = ()
    blackouts: tuple[Blackout, ...] = ()

    @property
    def is_empty(self) -> bool:
        return (
            not self.counter_reads
            and not self.counter_writes
            and not self.mitigations
            and not self.group_mitigations
            and not self.blackouts
        )


#: Response used on the fast path when a tracker has nothing to request.
EMPTY_RESPONSE = TrackerResponse()


@dataclass
class TrackerStats:
    """Aggregate statistics every tracker maintains."""

    activations_observed: int = 0
    mitigations_issued: int = 0
    rows_mitigated: int = 0
    counter_reads: int = 0
    counter_writes: int = 0
    structure_resets: int = 0
    throttled_requests: int = 0
    throttle_time_ns: float = 0.0
    periodic_resets: int = 0


@dataclass(frozen=True)
class StorageReport:
    """Storage cost of a tracker, normalised per 32GB of DRAM (Table III)."""

    sram_bytes: int = 0
    cam_bytes: int = 0
    dram_bytes: int = 0
    reserved_llc_bytes: int = 0

    @property
    def sram_kb(self) -> float:
        return self.sram_bytes / 1024.0

    @property
    def cam_kb(self) -> float:
        return self.cam_bytes / 1024.0

    def die_area_mm2(self) -> float:
        """Rough die-area estimate following the paper's methodology.

        The paper scales published SRAM/CAM macro areas; we use the same
        per-KB constants that reproduce its Table III figures
        (~0.00078 mm^2/KB of SRAM and ~0.0042 mm^2/KB of CAM).
        """
        return 0.00078 * self.sram_kb + 0.0042 * self.cam_kb


class RowHammerTracker(abc.ABC):
    """Abstract base class of every host-side RowHammer mitigation."""

    #: Human-readable tracker name used by the evaluation harness.
    name: str = "base"

    #: Optional instrumentation probe (repro.obs), attached by the simulator.
    #: Class attribute so uninstrumented instances carry no per-object cost.
    probe = None

    def __init__(self, config: SystemConfig):
        self.config = config
        self.org = config.dram
        self.nrh = config.rowhammer.nrh
        self.mitigation_threshold = config.rowhammer.mitigation_threshold
        self.stats = TrackerStats()

    # ------------------------------------------------------------------ #
    # Memory-controller hooks
    # ------------------------------------------------------------------ #

    def note_request_source(self, core_id: int) -> None:
        """Inform the tracker which core issued the request being serviced.

        Most mitigations ignore the requester; thread-attribution schemes such
        as the BreakHammer shim use it to charge triggered mitigations to the
        responsible hardware thread.
        """

    def throttle_delay_ns(self, row: RowAddress, now_ns: float) -> float:
        """Extra delay to impose on a request before it activates ``row``.

        Pre-access throttling is the security mechanism of BlockHammer-style
        mitigations: the delayed request also activates later, so a row's
        activation rate is genuinely bounded.
        """
        return 0.0

    def completion_delay_ns(self, row: RowAddress, completion_ns: float) -> float:
        """Extra delay to add to the *response* of the request just serviced.

        Response-side throttling slows the requesting core (its next requests
        wait for this completion) without moving the DRAM access itself, so it
        does not hold banks hostage for co-running applications.  It is the
        hook used by performance-oriented throttling such as the BreakHammer
        shim; mitigations that need to bound activation rates for security
        must use :meth:`throttle_delay_ns` instead.
        """
        return 0.0

    def activation_extension_ns(self) -> float:
        """Extra time every activation takes (PRAC-style counter updates)."""
        return 0.0

    @abc.abstractmethod
    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        """Observe an activation of ``row`` at ``now_ns`` and request work."""

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        """Hook called when the simulation crosses a tREFW boundary."""
        return EMPTY_RESPONSE

    def epoch_event(self, window_index: int, now_ns: float):
        """Event-source adapter: this tracker's mitigation-epoch event.

        Published by the memory controller right after
        :meth:`on_refresh_window` whenever the discrete-event engine's bus
        has a :class:`~repro.sim.events.events.TrackerEpoch` subscriber.
        """
        from repro.sim.events.events import TrackerEpoch

        return TrackerEpoch(now_ns, window_index, self.name)

    # ------------------------------------------------------------------ #
    # Reporting / configuration
    # ------------------------------------------------------------------ #

    def configure_llc(self, llc) -> None:
        """Allow trackers (START) to reserve LLC capacity before the run."""

    @abc.abstractmethod
    def storage_report(self) -> StorageReport:
        """Storage cost normalised to one 32GB DDR5 channel."""

    def table_occupancy(self) -> float | None:
        """Fill fraction of the tracker's summary table, if it has one.

        ``None`` (the default) means "no table to report"; the metrics
        sampler then omits the ``tracker.table_occupancy`` gauge."""
        return None

    # Helper used by subclasses -----------------------------------------

    def _note_activation(self) -> None:
        self.stats.activations_observed += 1

    def _note_mitigation(self, rows: int = 1) -> None:
        self.stats.mitigations_issued += 1
        self.stats.rows_mitigated += rows
