"""Host-side RowHammer trackers.

This package contains the tracker interface shared by every mitigation
(:mod:`repro.trackers.base`), the generic counting structures they build on
(:mod:`repro.trackers.structures`), and a re-implementation of every baseline
the paper compares against: Hydra, START, CoMeT, ABACUS, BlockHammer, PARA,
PrIDE and PRAC.  Two related-work designs discussed but not evaluated by the
paper -- Graphene (the precise per-bank tracker whose storage does not scale)
and MINT (a minimalist RFM-paced in-DRAM sampler) -- are included as extra
baselines, together with the BreakHammer thread-throttling shim that can be
composed with any tracker.  The paper's own contribution, DAPPER-S and
DAPPER-H, lives in :mod:`repro.core`.
"""

from repro.trackers.base import (
    GroupMitigation,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
    TrackerStats,
)
from repro.trackers.none import NoMitigation
from repro.trackers.hydra import HydraTracker
from repro.trackers.start import StartTracker
from repro.trackers.comet import CoMeTTracker
from repro.trackers.abacus import AbacusTracker
from repro.trackers.blockhammer import BlockHammerTracker
from repro.trackers.graphene import GrapheneTracker
from repro.trackers.mint import MintTracker
from repro.trackers.para import ParaTracker
from repro.trackers.pride import PrideTracker
from repro.trackers.prac import PracTracker
from repro.trackers.throttling import BreakHammerShim
from repro.trackers.registry import available_trackers, create_tracker

__all__ = [
    "RowHammerTracker",
    "TrackerResponse",
    "TrackerStats",
    "StorageReport",
    "GroupMitigation",
    "NoMitigation",
    "HydraTracker",
    "StartTracker",
    "CoMeTTracker",
    "AbacusTracker",
    "BlockHammerTracker",
    "GrapheneTracker",
    "MintTracker",
    "ParaTracker",
    "PrideTracker",
    "PracTracker",
    "BreakHammerShim",
    "available_trackers",
    "create_tracker",
]
