"""BreakHammer-style thread throttling composed with any tracker.

The paper's related-work section (Section VII-A) describes BreakHammer, a
concurrent proposal that does not mitigate RowHammer itself but *attributes*
every triggered mitigation to the hardware thread whose request caused it and
throttles the memory requests of threads that trigger disproportionately many.
The paper notes that DAPPER "can be combined with BreakHammer to enhance
protection against Perf-Attacks"; this module provides that composition.

:class:`BreakHammerShim` wraps an inner :class:`RowHammerTracker`.  It passes
every hook through unchanged, but it also:

* remembers which core issued the request currently being serviced (the
  memory controller reports this through
  :meth:`repro.trackers.base.RowHammerTracker.note_request_source`);
* charges that core one "mitigation trigger" whenever the inner tracker's
  response contains mitigations, group mitigations or structure-reset
  blackouts;
* once a core's trigger count within the current scoring epoch exceeds both a
  minimum count and a multiple of the other cores' average, rate-limits that
  core by delaying the *responses* of its memory requests so that they are
  spaced at least :data:`BreakHammerShim.MIN_SPACING_NS` apart.  Delaying the
  response (rather than the DRAM access) slows the suspect core's issue rate
  without holding DRAM banks hostage for the co-running benign applications.

Scores are halved at every refresh-window boundary so a benign phase change
does not keep a core blacklisted forever (BreakHammer uses a similar decay).
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.dram.address import RowAddress
from repro.trackers.base import (
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)


class BreakHammerShim(RowHammerTracker):
    """Per-thread mitigation attribution and throttling around an inner tracker."""

    name = "breakhammer"

    #: A core is never throttled before it has triggered this many mitigations
    #: in the current scoring epoch.
    MIN_TRIGGERS = 8
    #: A core is throttled once its trigger count exceeds this multiple of the
    #: mean trigger count across all cores seen so far in the epoch.
    SUSPECT_RATIO = 2.0
    #: Minimum spacing enforced between consecutive *responses* delivered to a
    #: suspect core.  With a deep outstanding-miss window an attack kernel
    #: completes a request every few nanoseconds, so a 60 ns response spacing
    #: cuts its activation rate by an order of magnitude while leaving benign
    #: cores (which are never suspects) untouched.
    MIN_SPACING_NS = 60.0

    def __init__(self, config: SystemConfig, inner: RowHammerTracker):
        super().__init__(config)
        self.inner = inner
        self.name = f"breakhammer({inner.name})"
        self._triggers: dict[int, int] = {}
        self._next_allowed_ns: dict[int, float] = {}
        self._current_core = 0

    # ------------------------------------------------------------------ #
    # Scoring helpers
    # ------------------------------------------------------------------ #

    def trigger_count(self, core_id: int) -> int:
        """Mitigation triggers attributed to ``core_id`` this epoch."""
        return self._triggers.get(core_id, 0)

    def is_suspect(self, core_id: int) -> bool:
        """Whether ``core_id`` currently exceeds the throttling criterion.

        A core is suspect once it has triggered at least :data:`MIN_TRIGGERS`
        mitigations this epoch *and* its trigger count exceeds
        :data:`SUSPECT_RATIO` times the mean trigger count of the *other*
        observed cores (with a floor of one trigger, so a lone heavy triggerer
        among otherwise quiet cores is still caught).
        """
        count = self._triggers.get(core_id, 0)
        if count < self.MIN_TRIGGERS:
            return False
        others = [c for core, c in self._triggers.items() if core != core_id]
        if not others:
            return True
        mean_others = max(1.0, sum(others) / len(others))
        return count > self.SUSPECT_RATIO * mean_others

    def _attribute(self, response: TrackerResponse) -> None:
        triggered = bool(
            response.mitigations
            or response.group_mitigations
            or response.blackouts
        )
        if triggered:
            core = self._current_core
            self._triggers[core] = self._triggers.get(core, 0) + 1
        # Mirror the inner tracker's mitigation activity so reports built from
        # the shim's statistics stay meaningful.
        if response.mitigations or response.group_mitigations:
            self.stats.mitigations_issued += 1
            self.stats.rows_mitigated += len(response.mitigations) + sum(
                group.num_rows for group in response.group_mitigations
            )
        self.stats.counter_reads += response.counter_reads
        self.stats.counter_writes += response.counter_writes
        self.stats.structure_resets += len(response.blackouts)

    # ------------------------------------------------------------------ #
    # Tracker interface (delegation plus throttling)
    # ------------------------------------------------------------------ #

    def note_request_source(self, core_id: int) -> None:
        self._current_core = core_id
        # Register the core even if it never triggers a mitigation: the
        # suspect criterion compares against the mean over every observed
        # hardware thread, not just the ones that triggered something.
        self._triggers.setdefault(core_id, 0)
        self.inner.note_request_source(core_id)

    def throttle_delay_ns(self, row: RowAddress, now_ns: float) -> float:
        return self.inner.throttle_delay_ns(row, now_ns)

    def completion_delay_ns(self, row: RowAddress, completion_ns: float) -> float:
        """Rate-limit the responses of a suspect core.

        The delay is added to the *response* seen by the requesting core, so
        the core's outstanding-miss window drains more slowly and its request
        rate drops, while the DRAM access itself stays where it was -- benign
        sharers of the same banks are unaffected.
        """
        extra = self.inner.completion_delay_ns(row, completion_ns)
        core = self._current_core
        if self.is_suspect(core):
            allowed = self._next_allowed_ns.get(core, 0.0)
            spacing_delay = max(0.0, allowed - (completion_ns + extra))
            self._next_allowed_ns[core] = (
                max(completion_ns + extra, allowed) + self.MIN_SPACING_NS
            )
            if spacing_delay > 0.0:
                self.stats.throttled_requests += 1
                self.stats.throttle_time_ns += spacing_delay
            extra += spacing_delay
        return extra

    def activation_extension_ns(self) -> float:
        return self.inner.activation_extension_ns()

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self._note_activation()
        response = self.inner.on_activation(row, now_ns)
        self._attribute(response)
        return response

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        # Decay rather than clear: an attacker that hammers across windows
        # stays suspect, a benign phase that triggered a burst recovers.
        self._triggers = {
            core: count // 2 for core, count in self._triggers.items() if count > 1
        }
        self._next_allowed_ns.clear()
        return self.inner.on_refresh_window(window_index, now_ns)

    def configure_llc(self, llc) -> None:
        self.inner.configure_llc(llc)

    def storage_report(self) -> StorageReport:
        inner = self.inner.storage_report()
        # One 16-bit trigger counter per hardware thread.
        score_bytes = 2 * self.config.cores.num_cores
        return StorageReport(
            sram_bytes=inner.sram_bytes + score_bytes,
            cam_bytes=inner.cam_bytes,
            dram_bytes=inner.dram_bytes,
            reserved_llc_bytes=inner.reserved_llc_bytes,
        )
