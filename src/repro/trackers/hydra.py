"""Hydra: hybrid group/per-row tracking with in-DRAM counters (ISCA 2022).

Hydra keeps a small SRAM Group Counter Table (GCT) whose entries are shared by
groups of 128 rows.  When a group counter crosses 80% of the mitigation
threshold, the group switches to precise per-row tracking: per-row counters
live in a reserved DRAM region (the Row Counter Table, RCT) and a small Row
Counter Cache (RCC, 4K entries per rank, 32-way, random eviction) caches the
hot ones inside the memory controller.  An RCC miss costs one DRAM read (fetch
the counter) plus one DRAM write (write back the evicted counter) -- exactly
the traffic the paper's Perf-Attack amplifies by forcing RCC set conflicts.

Paper context: one of the four scalable trackers attacked in Section III
(Figure 2); its tailored Perf-Attack is the ``rcc-conflict`` kernel.  Key
parameters: 128-row groups, the 80% group-to-per-row promotion threshold,
and the 4K-entry 32-way RCC per rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.dram.address import RowAddress
from repro.trackers.base import (
    EMPTY_RESPONSE,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)
from repro.trackers.structures import SetAssociativeCounterCache


@dataclass
class _RankTrackingState:
    """Per-rank Hydra state: group counters, per-row mode set, RCC, RCT."""

    gct: dict[tuple[int, int], int] = field(default_factory=dict)
    per_row_groups: set[tuple[int, int]] = field(default_factory=set)
    rct: dict[int, int] = field(default_factory=dict)
    rcc: SetAssociativeCounterCache | None = None


class HydraTracker(RowHammerTracker):
    """Hydra with the paper's configuration (GC size 128, 4K-entry RCC)."""

    name = "hydra"

    GROUP_SIZE = 128
    RCC_ENTRIES = 4096
    RCC_WAYS = 32
    GROUP_THRESHOLD_FRACTION = 0.8

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.group_threshold = max(
            1, int(self.mitigation_threshold * self.GROUP_THRESHOLD_FRACTION)
        )
        self._ranks: dict[tuple[int, int], _RankTrackingState] = {}
        self._rcc_seed = config.seed ^ 0x48_59_44_52  # "HYDR"

    # ------------------------------------------------------------------ #

    def _rank_state(self, channel: int, rank: int) -> _RankTrackingState:
        key = (channel, rank)
        state = self._ranks.get(key)
        if state is None:
            state = _RankTrackingState(
                rcc=SetAssociativeCounterCache(
                    num_entries=self.RCC_ENTRIES,
                    ways=self.RCC_WAYS,
                    seed=self._rcc_seed ^ hash(key),
                    eviction="random",
                )
            )
            self._ranks[key] = state
        return state

    @staticmethod
    def _row_key(bank_local: int, row: int, rows_per_bank: int) -> int:
        # Row index in the low bits so that the RCC set index is ``row % sets``
        # (the structure the tailored Perf-Attack exploits).
        return bank_local * rows_per_bank + row

    # ------------------------------------------------------------------ #

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self._note_activation()
        org = self.org
        bank_local = row.bank.rank_local_bank(org)
        state = self._rank_state(row.bank.channel, row.bank.rank)
        group_key = (bank_local, row.row // self.GROUP_SIZE)

        if group_key not in state.per_row_groups:
            count = state.gct.get(group_key, 0) + 1
            state.gct[group_key] = count
            if count >= self.group_threshold:
                state.per_row_groups.add(group_key)
            return EMPTY_RESPONSE

        # Per-row tracking through the RCC / RCT.
        row_key = self._row_key(bank_local, row.row, org.rows_per_bank)
        counter_reads = 0
        counter_writes = 0
        cached = state.rcc.lookup(row_key)
        if cached is None:
            counter_reads = 1
            self.stats.counter_reads += 1
            value = state.rct.get(row_key, self.group_threshold)
            evicted = state.rcc.fill(row_key, value)
            if evicted is not None:
                counter_writes = 1
                self.stats.counter_writes += 1
                state.rct[evicted[0]] = evicted[1]
            cached = value

        new_value = cached + 1
        mitigations: tuple[RowAddress, ...] = ()
        if new_value >= self.mitigation_threshold:
            mitigations = (row,)
            self._note_mitigation()
            new_value = 0
        state.rcc.update(row_key, new_value)
        state.rct[row_key] = new_value

        if counter_reads == 0 and not mitigations:
            return EMPTY_RESPONSE
        return TrackerResponse(
            counter_reads=counter_reads,
            counter_writes=counter_writes,
            mitigations=mitigations,
        )

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        for state in self._ranks.values():
            state.gct.clear()
            state.per_row_groups.clear()
            state.rct.clear()
            state.rcc.reset()
        self.stats.periodic_resets += 1
        return EMPTY_RESPONSE

    # ------------------------------------------------------------------ #

    def storage_report(self) -> StorageReport:
        """SRAM per 32GB channel: GCT (per rank) + RCC tags/counters."""
        org = self.org
        groups_per_rank = org.rows_per_rank // self.GROUP_SIZE
        gct_bits = groups_per_rank * 8                      # 1-byte group counters
        rcc_bits = self.RCC_ENTRIES * (21 + 8)              # tag + counter
        per_rank_bits = gct_bits + rcc_bits
        sram_bytes = per_rank_bits * org.ranks_per_channel // 8
        rct_bytes = org.rows_per_channel                    # 1 byte per row in DRAM
        return StorageReport(sram_bytes=sram_bytes, dram_bytes=rct_bytes)
