"""START: Scalable Tracking for Any RowHammer Threshold (HPCA 2024).

START dedicates half of the shared last-level cache to per-row RowHammer
counters.  When the number of rows exceeds what the reserved region can hold
(as in the paper's evaluated system: 8M rows vs 4M counter slots), the
counters spill to a reserved DRAM region and the LLC region acts as a counter
cache.  START therefore hurts co-running applications in two ways that the
Perf-Attack amplifies: the LLC capacity available to data is halved, and every
counter-cache miss costs a DRAM read plus a write-back.

Paper context: one of the four scalable trackers attacked in Section III
(Figure 2); its tailored Perf-Attack is the ``counter-streaming`` kernel (a
64-row-stride variant of row streaming, so every activation touches a fresh
counter line).  Key parameters: the reserved LLC fraction (one half) and the
counter-slot-per-row geometry.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.dram.address import RowAddress
from repro.trackers.base import (
    EMPTY_RESPONSE,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)
from repro.trackers.structures import SetAssociativeCounterCache


class StartTracker(RowHammerTracker):
    """START with half of the LLC reserved for RowHammer counters."""

    name = "start"

    #: Fraction of the LLC reserved for counters (half, per the paper).
    RESERVED_FRACTION = 0.5
    #: Counters per cache line (64B line, 1-byte counters).
    COUNTERS_PER_LINE = 64
    #: Ways of the counter cache built from the reserved region.
    COUNTER_CACHE_WAYS = 16

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        reserved_bytes = int(config.llc.size_bytes * self.RESERVED_FRACTION)
        lines = max(
            self.COUNTER_CACHE_WAYS,
            reserved_bytes // config.llc.line_size_bytes,
        )
        # Round down to a multiple of the associativity.
        lines -= lines % self.COUNTER_CACHE_WAYS
        self._reserved_bytes = reserved_bytes
        self._counter_cache = SetAssociativeCounterCache(
            num_entries=lines,
            ways=self.COUNTER_CACHE_WAYS,
            seed=config.seed ^ 0x53_54_41,  # "STA"
            eviction="lru",
        )
        self._counters: dict[int, int] = {}

    # ------------------------------------------------------------------ #

    def configure_llc(self, llc) -> None:
        reserved_ways = int(round(llc.config.ways * self.RESERVED_FRACTION))
        llc.reserve_ways(reserved_ways)

    def _global_row_index(self, row: RowAddress) -> int:
        org = self.org
        bank_flat = row.bank.flat(org)
        return bank_flat * org.rows_per_bank + row.row

    # ------------------------------------------------------------------ #

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self._note_activation()
        row_index = self._global_row_index(row)
        line_id = row_index // self.COUNTERS_PER_LINE

        counter_reads = 0
        counter_writes = 0
        if self._counter_cache.lookup(line_id) is None:
            counter_reads = 1
            self.stats.counter_reads += 1
            evicted = self._counter_cache.fill(line_id, 1)
            if evicted is not None:
                counter_writes = 1
                self.stats.counter_writes += 1

        count = self._counters.get(row_index, 0) + 1
        mitigations: tuple[RowAddress, ...] = ()
        if count >= self.mitigation_threshold:
            mitigations = (row,)
            self._note_mitigation()
            count = 0
        self._counters[row_index] = count

        if counter_reads == 0 and not mitigations:
            return EMPTY_RESPONSE
        return TrackerResponse(
            counter_reads=counter_reads,
            counter_writes=counter_writes,
            mitigations=mitigations,
        )

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        self._counters.clear()
        self._counter_cache.reset()
        self.stats.periodic_resets += 1
        return EMPTY_RESPONSE

    # ------------------------------------------------------------------ #

    def storage_report(self) -> StorageReport:
        # START's dedicated SRAM is tiny (allocation metadata); the real cost
        # is the reserved LLC capacity and the spill region in DRAM.
        return StorageReport(
            sram_bytes=4 * 1024,
            reserved_llc_bytes=self._reserved_bytes,
            dram_bytes=self.org.rows_per_channel,
        )
