"""The insecure baseline: no RowHammer mitigation at all.

Every performance figure in the paper is normalised against this baseline
(Section IV's evaluation methodology; see EXPERIMENTS.md for the distinction
between the no-attack and attack-matched baselines).  It has no parameters
and zero storage.
"""

from __future__ import annotations

from repro.dram.address import RowAddress
from repro.trackers.base import EMPTY_RESPONSE, RowHammerTracker, StorageReport, TrackerResponse


class NoMitigation(RowHammerTracker):
    """Tracks nothing and never mitigates."""

    name = "none"

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self._note_activation()
        return EMPTY_RESPONSE

    def storage_report(self) -> StorageReport:
        return StorageReport()
