"""BlockHammer: throttling-based RowHammer prevention (HPCA 2021).

BlockHammer tracks activation rates with per-bank counting Bloom filters and
*throttles* (delays) further activations of rows whose estimated count crosses
a blacklisting threshold, so that no row can legally reach the RowHammer
threshold within a refresh window.  It never issues mitigative refreshes.

At ultra-low thresholds the blacklisting threshold shrinks to the point where
benign rows -- both genuinely warm rows and rows aliased with them in the
Bloom filter -- get throttled, which is the large benign slowdown the paper's
Figure 14 reports (25% at NRH=500, 66% at NRH=125).

Paper context: the throttling-based comparison point of Section VI-I.  Key
parameters: the per-bank counting-Bloom-filter geometry and the blacklisting
threshold derived from NRH and the refresh window.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.dram.address import RowAddress
from repro.trackers.base import (
    EMPTY_RESPONSE,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)
from repro.trackers.structures import CountingBloomFilter


class BlockHammerTracker(RowHammerTracker):
    """BlockHammer with per-bank counting Bloom filters and rate throttling."""

    name = "blockhammer"

    CBF_COUNTERS = 1024
    CBF_HASHES = 4
    #: Rows are blacklisted once their estimate exceeds this fraction of NRH.
    BLACKLIST_FRACTION = 0.125
    #: The filters are rotated (cleared) every half refresh window.
    EPOCH_FRACTION = 0.5

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.blacklist_threshold = max(1, int(self.nrh * self.BLACKLIST_FRACTION))
        # Minimum spacing enforced between activations of a blacklisted row.
        # The filters are cleared every EPOCH_FRACTION * tREFW, so within one
        # epoch a row gets ``blacklist_threshold`` unthrottled activations plus
        # one throttled activation per interval; the interval is chosen so the
        # per-epoch budget stays below the mitigation threshold (NRH / 2),
        # which keeps the per-refresh-window total below NRH even though the
        # filter history is lost at each epoch boundary.
        epoch_ns = config.timings.trefw_ns * self.EPOCH_FRACTION
        epoch_budget = max(1, self.mitigation_threshold - self.blacklist_threshold - 2)
        self.throttle_interval_ns = epoch_ns / epoch_budget
        self._filters: dict[int, CountingBloomFilter] = {}
        self._next_allowed_ns: dict[tuple[int, int], float] = {}
        self._epoch_ns = config.timings.trefw_ns * self.EPOCH_FRACTION
        self._next_epoch_ns = self._epoch_ns
        self._seed = config.seed ^ 0x424C4B  # "BLK"

    # ------------------------------------------------------------------ #

    def _filter(self, bank_flat: int) -> CountingBloomFilter:
        cbf = self._filters.get(bank_flat)
        if cbf is None:
            cbf = CountingBloomFilter(
                num_counters=self.CBF_COUNTERS,
                num_hashes=self.CBF_HASHES,
                seed=self._seed ^ (bank_flat * 0x9E3779B1),
            )
            self._filters[bank_flat] = cbf
        return cbf

    def _rotate_if_needed(self, now_ns: float) -> None:
        if now_ns < self._next_epoch_ns:
            return
        for cbf in self._filters.values():
            cbf.reset()
        self._next_allowed_ns.clear()
        self.stats.periodic_resets += 1
        while self._next_epoch_ns <= now_ns:
            self._next_epoch_ns += self._epoch_ns

    # ------------------------------------------------------------------ #

    def throttle_delay_ns(self, row: RowAddress, now_ns: float) -> float:
        self._rotate_if_needed(now_ns)
        bank_flat = row.bank.flat(self.org)
        cbf = self._filter(bank_flat)
        if cbf.estimate(row.row) < self.blacklist_threshold:
            return 0.0
        key = (bank_flat, row.row)
        next_allowed = self._next_allowed_ns.get(key, 0.0)
        delay = max(0.0, next_allowed - now_ns)
        self._next_allowed_ns[key] = max(next_allowed, now_ns + delay) + (
            self.throttle_interval_ns
        )
        if delay > 0.0:
            self.stats.throttled_requests += 1
            self.stats.throttle_time_ns += delay
        return delay

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self._note_activation()
        self._rotate_if_needed(now_ns)
        cbf = self._filter(row.bank.flat(self.org))
        cbf.increment(row.row)
        return EMPTY_RESPONSE

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        for cbf in self._filters.values():
            cbf.reset()
        self._next_allowed_ns.clear()
        return EMPTY_RESPONSE

    # ------------------------------------------------------------------ #

    def storage_report(self) -> StorageReport:
        per_bank_bits = self.CBF_COUNTERS * 16 * 2   # dual time-interleaved CBFs
        sram_bytes = per_bank_bits * self.org.banks_per_channel // 8
        return StorageReport(sram_bytes=sram_bytes)
