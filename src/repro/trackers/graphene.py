"""Graphene: exact per-bank Misra-Gries tracking (Park et al., MICRO 2020).

Graphene gives every bank its own Misra-Gries summary sized so that *no*
aggressor row can escape it: the number of entries equals the maximum number
of rows that can reach the table threshold within one refresh window, so the
summary degenerates into an exact heavy-hitter counter.  Whenever an entry
reaches the mitigation threshold Graphene refreshes the row's victims and
lowers the entry back to the spillover floor; all state is cleared at every
tREFW boundary.

The paper cites Graphene (reference [46]) as the canonical *precise* tracker
whose storage becomes impractical at ultra-low RowHammer thresholds -- the
per-bank content-addressable tables grow inversely with NRH.  It is included
here as the "ideal tracking" baseline: it is immune to the Perf-Attacks of
Section III because it never touches DRAM for counters and never performs
bulk structure-reset refreshes, but Table III-style storage reports show why
it does not scale.

Paper context: related work (Section VII) and the Table III storage
comparison.  Key parameters: the per-bank summary entry count and table
threshold, both derived from NRH and the refresh window.
"""

from __future__ import annotations

import math

from repro.config import SystemConfig
from repro.dram.address import RowAddress
from repro.trackers.base import (
    EMPTY_RESPONSE,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)
from repro.trackers.structures import MisraGriesSummary


def graphene_entries_per_bank(
    nrh: int,
    trefw_ns: float,
    trc_ns: float,
) -> int:
    """Number of Misra-Gries entries Graphene provisions for each bank.

    Graphene sizes each per-bank table so it can hold every row that could
    reach the table threshold (half the mitigation threshold, i.e. NRH / 4)
    within one refresh window: ``(tREFW / tRC) / (NRH / 4)``.  The quarter
    threshold is what guarantees exactness for the Misra-Gries summary.
    """
    activations_per_bank = trefw_ns / trc_ns
    table_threshold = max(1, nrh // 4)
    return max(4, math.ceil(activations_per_bank / table_threshold))


class GrapheneTracker(RowHammerTracker):
    """Exact per-bank aggressor tracking with Misra-Gries tables."""

    name = "graphene"

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.entries_per_bank = graphene_entries_per_bank(
            self.nrh,
            trefw_ns=config.timings.trefw_ns,
            trc_ns=config.timings.trc_ns,
        )
        self._tables: dict[int, MisraGriesSummary] = {}
        # RowAddress -> its bank's table: the row-to-bank mapping is fixed,
        # so this memo never invalidates (resets clear table contents only).
        self._row_table: dict[RowAddress, MisraGriesSummary] = {}

    # ------------------------------------------------------------------ #

    def _table(self, bank_flat: int) -> MisraGriesSummary:
        table = self._tables.get(bank_flat)
        if table is None:
            # A per-bank table only ever sees one bank, so the ABACUS-style
            # per-bank bit-vector degenerates to a single always-set bit.
            table = MisraGriesSummary(capacity=self.entries_per_bank, num_banks=1)
            self._tables[bank_flat] = table
        return table

    # ------------------------------------------------------------------ #

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self.stats.activations_observed += 1  # inlined _note_activation
        table = self._row_table.get(row)
        if table is None:
            table = self._table(row.bank.flat(self.org))
            self._row_table[row] = table
        probe = self.probe
        if probe is None:
            entry, _counted = table.observe(row.row, 0)
        else:
            # Snapshot insert/evict outcomes for the trace without touching
            # the summary's behaviour: spill_victim mirrors observe's own
            # replacement scan, and the hooks fire only on a new insertion.
            tracked = row.row in table
            victim = None if tracked else table.spill_victim()
            entry, _counted = table.observe(row.row, 0)
            if not tracked and entry is not None:
                if victim is not None:
                    probe.on_tracker_evict(victim, now_ns)
                probe.on_tracker_insert(row.row, entry.count, now_ns)

        if entry is not None and entry.count >= self.mitigation_threshold:
            self._note_mitigation()
            table.reset_entry(row.row)
            return TrackerResponse(mitigations=(row,))
        return EMPTY_RESPONSE

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        for table in self._tables.values():
            table.reset()
        self.stats.periodic_resets += 1
        return EMPTY_RESPONSE

    def table_occupancy(self) -> float | None:
        """Mean fill fraction across the per-bank summaries seen so far."""
        if not self._tables:
            return 0.0
        filled = sum(len(table) for table in self._tables.values())
        return filled / (len(self._tables) * self.entries_per_bank)

    # ------------------------------------------------------------------ #

    def storage_report(self) -> StorageReport:
        """Storage per 32GB channel: one table per bank of the channel.

        The row-identifier match logic is CAM; counters are SRAM.  This is the
        cost the paper calls impractical at ultra-low thresholds.
        """
        row_id_bits = max(1, (self.org.rows_per_bank - 1).bit_length())
        counter_bits = max(1, (self.mitigation_threshold - 1).bit_length())
        per_bank_cam_bits = self.entries_per_bank * row_id_bits
        per_bank_sram_bits = self.entries_per_bank * counter_bits
        banks = self.org.banks_per_channel
        return StorageReport(
            sram_bytes=per_bank_sram_bits * banks // 8,
            cam_bytes=per_bank_cam_bits * banks // 8,
        )
