"""Generic counting structures used by the baseline RowHammer trackers.

* :class:`CountMinSketch` -- CoMeT's shared counter table.
* :class:`MisraGriesSummary` -- ABACUS' shared aggressor tracker with a
  spillover counter and per-bank bit-vectors.
* :class:`CountingBloomFilter` -- BlockHammer's blacklisting filter.
* :class:`SetAssociativeCounterCache` -- Hydra's Row Counter Cache and the
  counter-cache behaviour of START's reserved LLC region.

All structures are deterministic: hash seeds are passed in explicitly.
Per-tracker sizing (entry counts, thresholds) lives with each tracker module,
which states its paper section and key parameters.

The counter-table structures (:class:`CountMinSketch` and
:class:`CountingBloomFilter`) are array-backed when numpy is available: the
counters live in numpy integer arrays and bulk updates go through vectorized
``increment_batch`` / ``estimate_batch`` methods.  The scalar API operates on
the same storage and remains the semantic reference model -- constructing
either structure with ``use_numpy=False`` forces the original pure-Python
list storage, and the parity tests assert both backends produce identical
counters and estimates for identical operation sequences.
:class:`SetAssociativeCounterCache` intentionally keeps its dict-based design:
its behaviour is dominated by per-access LRU recency updates and deterministic
victim choice, which are inherently sequential, and its per-set population is
bounded by the associativity, so there is no counter *table* to vectorize --
the bulk tables it backs (Hydra's RCT, START's spill region) are plain dicts
whose traffic the simulator charges through DRAM counter accesses.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

try:  # numpy backs the counter tables; everything works without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

from repro.crypto.prng import XorShift64

_MASK64 = (1 << 64) - 1


def _mix(value: int, seed: int) -> int:
    """Cheap deterministic 64-bit hash used by the sketch structures."""
    x = (value ^ seed) & _MASK64
    x = (x * 0xFF51AFD7ED558CCD) & _MASK64
    x ^= x >> 33
    x = (x * 0xC4CEB9FE1A85EC53) & _MASK64
    x ^= x >> 33
    return x & _MASK64


def _mix_batch(values, seed: int):
    """Vectorized :func:`_mix` over a numpy uint64 array (same bits)."""
    x = values ^ _np.uint64(seed)
    x = x * _np.uint64(0xFF51AFD7ED558CCD)
    x ^= x >> _np.uint64(33)
    x = x * _np.uint64(0xC4CEB9FE1A85EC53)
    x ^= x >> _np.uint64(33)
    return x


class CountMinSketch:
    """Count-Min Sketch with ``depth`` hash rows of ``width`` counters each.

    Counters are stored in a numpy ``(depth, width)`` int64 array when numpy
    is available (``use_numpy=None`` auto-detects); ``use_numpy=False`` keeps
    the pure-Python list-of-lists reference storage.  Both backends are exact
    integer counters -- every scalar and batch operation produces identical
    results on either.
    """

    def __init__(self, depth: int, width: int, seed: int, use_numpy: bool | None = None):
        if depth < 1 or width < 1:
            raise ValueError("depth and width must be positive")
        self.depth = depth
        self.width = width
        self._seeds = [_mix(seed, 0x1000 + i) for i in range(depth)]
        self._use_numpy = (_np is not None) if use_numpy is None else (use_numpy and _np is not None)
        if self._use_numpy:
            self._rows = [_np.zeros(width, dtype=_np.int64) for _ in range(depth)]
        else:
            self._rows = [[0] * width for _ in range(depth)]

    def _indices(self, key: int) -> list[int]:
        return [
            _mix(key, self._seeds[row]) % self.width for row in range(self.depth)
        ]

    def increment(self, key: int, amount: int = 1) -> int:
        """Increment ``key`` and return the new (over-)estimate."""
        estimate = None
        for row, index in enumerate(self._indices(key)):
            counters = self._rows[row]
            value = int(counters[index]) + amount
            counters[index] = value
            estimate = value if estimate is None else min(estimate, value)
        return estimate or 0

    def estimate(self, key: int) -> int:
        """Current (over-)estimate of ``key``'s count."""
        rows = self._rows
        return min(
            int(rows[row][index]) for row, index in enumerate(self._indices(key))
        )

    def increment_batch(self, keys, amount: int = 1) -> None:
        """Apply ``increment(key, amount)`` for every key in one shot.

        Duplicate keys accumulate exactly as repeated scalar increments would
        (integer additions commute); only the intermediate per-key estimates
        of the scalar sequence are not produced.  Callers that consult the
        estimate after every single activation must use :meth:`increment`.
        """
        if not self._use_numpy:
            for key in keys:
                self.increment(int(key), amount)
            return
        key_arr = _np.asarray(keys, dtype=_np.uint64)
        for row in range(self.depth):
            indices = (_mix_batch(key_arr, self._seeds[row]) % _np.uint64(self.width)).astype(_np.int64)
            _np.add.at(self._rows[row], indices, amount)

    def estimate_batch(self, keys):
        """Vectorized :meth:`estimate`; returns one estimate per key."""
        if not self._use_numpy:
            return [self.estimate(int(key)) for key in keys]
        key_arr = _np.asarray(keys, dtype=_np.uint64)
        estimates = None
        for row in range(self.depth):
            indices = (_mix_batch(key_arr, self._seeds[row]) % _np.uint64(self.width)).astype(_np.int64)
            values = self._rows[row][indices]
            estimates = values if estimates is None else _np.minimum(estimates, values)
        return estimates

    def reset(self) -> None:
        if self._use_numpy:
            for row in self._rows:
                row.fill(0)
            return
        for row in self._rows:
            for index in range(self.width):
                row[index] = 0

    @property
    def storage_bits(self) -> int:
        """Storage assuming 1-byte counters (as the paper's configs use)."""
        return self.depth * self.width * 8


@dataclass
class MisraGriesEntry:
    """One entry of the ABACUS-style Misra-Gries summary."""

    row_id: int
    count: int
    bank_bits: int = 0


class MisraGriesSummary:
    """Misra-Gries heavy-hitter summary with a spillover counter.

    Follows the ABACUS formulation: the summary is shared by every bank of a
    channel, entries are keyed by the *row identifier* (the row index inside a
    bank, identical across sibling banks), each entry carries a per-bank
    bit-vector used to avoid over-counting accesses coming from different
    banks, and a spillover counter tracks the count of evicted keys.
    """

    def __init__(self, capacity: int, num_banks: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.num_banks = num_banks
        self.spillover = 0
        self._entries: dict[int, MisraGriesEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, row_id: int) -> bool:
        return row_id in self._entries

    def get(self, row_id: int) -> MisraGriesEntry | None:
        return self._entries.get(row_id)

    def observe(self, row_id: int, bank_index: int) -> tuple[MisraGriesEntry | None, bool]:
        """Observe one activation.

        Returns ``(entry, counted)`` where ``entry`` is the summary entry
        tracking the row (or ``None`` if the activation only advanced the
        spillover counter) and ``counted`` says whether the entry's counter
        was actually incremented (the per-bank bit-vector suppresses the first
        activation seen from each bank).

        Per-bank bit-vector semantics (the ABACUS RAC + SAV formulation):
        ``count`` models the Row Activation Counter, which tracks the
        *maximum* activation count any sibling bank has reached for this row
        identifier, and ``bank_bits`` models the Sibling Activation Vector,
        which records the banks that have caught up to that maximum.  An
        activation from a bank whose SAV bit is clear only sets the bit -- the
        bank is catching up to a count another bank already reached, so the
        maximum is unchanged.  An activation from a bank whose bit is already
        set pushes that bank *past* the recorded maximum: the counter
        increments and the SAV collapses to just that bank's bit, because it
        is now the only bank at the new maximum.  Discarding the other banks'
        pending bits on the collapse is therefore intentional, not lossy:
        those banks were at the previous count level and must set their bit
        again (one suppressed activation each) before they can advance the
        counter.  This keeps the RAC equal to the per-bank maximum (the
        quantity the mitigation threshold must bound) while charging each
        bank's activations at most once per count level.
        """
        bank_bit = 1 << bank_index
        entry = self._entries.get(row_id)
        if entry is not None:
            if entry.bank_bits & bank_bit:
                entry.count += 1
                entry.bank_bits = bank_bit
                return entry, True
            entry.bank_bits |= bank_bit
            return entry, False

        if len(self._entries) < self.capacity:
            entry = MisraGriesEntry(row_id=row_id, count=self.spillover + 1, bank_bits=bank_bit)
            self._entries[row_id] = entry
            return entry, True

        # Replace an entry whose count has fallen to the spillover floor, if any.
        victim_id = None
        for candidate_id, candidate in self._entries.items():
            if candidate.count <= self.spillover:
                victim_id = candidate_id
                break
        if victim_id is not None:
            del self._entries[victim_id]
            entry = MisraGriesEntry(row_id=row_id, count=self.spillover + 1, bank_bits=bank_bit)
            self._entries[row_id] = entry
            return entry, True

        # ABACUS spillover semantics: an unplaced activation (table full, every
        # entry strictly above the spillover floor) advances the shared
        # spillover counter.  Streaming over distinct row identifiers therefore
        # advances it roughly once per ``capacity + 1`` activations, which is
        # the overflow rate the ABACUS Perf-Attack exploits.
        self.spillover += 1
        return None, False

    def spill_victim(self) -> int | None:
        """The row id :meth:`observe` would replace for a new key right now.

        Mirrors the replacement scan above exactly (first entry at or below
        the spillover floor, in insertion order) without mutating anything;
        ``None`` when the table still has room or no entry is replaceable.
        Used by the instrumentation layer to report evictions.
        """
        if len(self._entries) < self.capacity:
            return None
        for candidate_id, candidate in self._entries.items():
            if candidate.count <= self.spillover:
                return candidate_id
        return None

    def reset_entry(self, row_id: int) -> None:
        """Reset a mitigated entry's count to the spillover floor."""
        entry = self._entries.get(row_id)
        if entry is not None:
            entry.count = self.spillover
            entry.bank_bits = 0

    def reset(self) -> None:
        self._entries.clear()
        self.spillover = 0

    @property
    def storage_bits(self) -> int:
        # row id (16 bits) + counter (16 bits) + per-bank bit-vector.
        return self.capacity * (16 + 16 + self.num_banks)


class CountingBloomFilter:
    """Counting Bloom filter used by BlockHammer's blacklisting logic.

    Array-backed like :class:`CountMinSketch`: counters live in one numpy
    int64 array when available (``use_numpy=False`` keeps the pure-Python
    reference list), and bulk updates go through :meth:`increment_batch`.
    """

    def __init__(self, num_counters: int, num_hashes: int, seed: int, use_numpy: bool | None = None):
        if num_counters < 1 or num_hashes < 1:
            raise ValueError("counters and hashes must be positive")
        self.num_counters = num_counters
        self.num_hashes = num_hashes
        self._seeds = [_mix(seed, 0x2000 + i) for i in range(num_hashes)]
        self._use_numpy = (_np is not None) if use_numpy is None else (use_numpy and _np is not None)
        if self._use_numpy:
            self._counters = _np.zeros(num_counters, dtype=_np.int64)
        else:
            self._counters = [0] * num_counters

    def _indices(self, key: int) -> list[int]:
        return [
            _mix(key, self._seeds[i]) % self.num_counters
            for i in range(self.num_hashes)
        ]

    def increment(self, key: int) -> int:
        counters = self._counters
        estimate = None
        for index in self._indices(key):
            value = int(counters[index]) + 1
            counters[index] = value
            estimate = value if estimate is None else min(estimate, value)
        return estimate or 0

    def estimate(self, key: int) -> int:
        counters = self._counters
        return min(int(counters[index]) for index in self._indices(key))

    def increment_batch(self, keys) -> None:
        """Apply :meth:`increment` for every key in one shot.

        Final counter state matches the scalar sequence exactly; the
        intermediate per-key estimates are not produced (see
        :meth:`CountMinSketch.increment_batch`).
        """
        if not self._use_numpy:
            for key in keys:
                self.increment(int(key))
            return
        key_arr = _np.asarray(keys, dtype=_np.uint64)
        for i in range(self.num_hashes):
            indices = (_mix_batch(key_arr, self._seeds[i]) % _np.uint64(self.num_counters)).astype(_np.int64)
            _np.add.at(self._counters, indices, 1)

    def estimate_batch(self, keys):
        """Vectorized :meth:`estimate`; returns one estimate per key."""
        if not self._use_numpy:
            return [self.estimate(int(key)) for key in keys]
        key_arr = _np.asarray(keys, dtype=_np.uint64)
        estimates = None
        for i in range(self.num_hashes):
            indices = (_mix_batch(key_arr, self._seeds[i]) % _np.uint64(self.num_counters)).astype(_np.int64)
            values = self._counters[indices]
            estimates = values if estimates is None else _np.minimum(estimates, values)
        return estimates

    def reset(self) -> None:
        if self._use_numpy:
            self._counters.fill(0)
            return
        for index in range(self.num_counters):
            self._counters[index] = 0

    @property
    def storage_bits(self) -> int:
        return self.num_counters * 16


class SetAssociativeCounterCache:
    """Set-associative cache of per-row counters.

    Used for Hydra's Row Counter Cache (random eviction) and for modelling
    START's reserved-LLC counter cache (LRU eviction).  The cache stores
    ``key -> counter`` pairs; misses report whether a (dirty) victim was
    evicted so the caller can charge the DRAM write-back.
    """

    def __init__(
        self,
        num_entries: int,
        ways: int,
        seed: int,
        eviction: str = "random",
    ):
        if num_entries < ways or num_entries % ways != 0:
            raise ValueError("num_entries must be a positive multiple of ways")
        if eviction not in ("random", "lru"):
            raise ValueError("eviction must be 'random' or 'lru'")
        self.num_entries = num_entries
        self.ways = ways
        self.num_sets = num_entries // ways
        self.eviction = eviction
        self._rng = XorShift64(seed)
        self._sets: list[OrderedDict[int, int]] = [
            OrderedDict() for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def set_index(self, key: int) -> int:
        """Set index of ``key`` (direct modulo so set-conflict attacks work)."""
        return key % self.num_sets

    def lookup(self, key: int) -> int | None:
        """Return the cached counter value or ``None`` on a miss (no fill)."""
        cache_set = self._sets[self.set_index(key)]
        if key in cache_set:
            if self.eviction == "lru":
                cache_set.move_to_end(key)
            self.hits += 1
            return cache_set[key]
        self.misses += 1
        return None

    def fill(self, key: int, value: int) -> tuple[int, int] | None:
        """Insert ``key`` with ``value``.

        Returns the evicted ``(key, value)`` pair if a victim had to be
        evicted (so the caller can write it back to the DRAM backing store),
        or ``None`` if there was room.
        """
        cache_set = self._sets[self.set_index(key)]
        evicted: tuple[int, int] | None = None
        if key not in cache_set and len(cache_set) >= self.ways:
            if self.eviction == "random":
                victim = list(cache_set.keys())[self._rng.next_below(len(cache_set))]
            else:
                victim = next(iter(cache_set))
            evicted = (victim, cache_set.pop(victim))
            self.evictions += 1
        cache_set[key] = value
        if self.eviction == "lru":
            cache_set.move_to_end(key)
        return evicted

    def update(self, key: int, value: int) -> None:
        """Update the counter of a key known to be resident."""
        cache_set = self._sets[self.set_index(key)]
        if key not in cache_set:
            raise KeyError(f"key {key} is not resident")
        cache_set[key] = value
        if self.eviction == "lru":
            cache_set.move_to_end(key)

    def reset(self) -> None:
        for cache_set in self._sets:
            cache_set.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(cache_set) for cache_set in self._sets)
