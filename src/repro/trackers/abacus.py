"""ABACUS: all-bank activation counters via a shared Misra-Gries tracker
(USENIX Security 2024).

A single Misra-Gries summary per channel tracks *row identifiers* (the row
index inside a bank), shared across every bank of the channel; per-entry
per-bank bit-vectors stop activations of sibling rows in different banks from
over-counting.  The summary size is chosen so it can hold the maximum number
of aggressors a single bank can produce within one refresh window at the
configured RowHammer threshold (2466 entries at NRH = 500).

The spillover counter, however, is shared by everything that does not fit in
the summary.  The paper's Perf-Attack streams over distinct row identifiers
across banks, pushing the spillover counter to the mitigation threshold, which
forces ABACUS to refresh every row of the channel and reset -- a blackout of
roughly two milliseconds that the attack can retrigger continuously.

Paper context: one of the four scalable trackers the motivation section
(Section III, Figure 2) attacks; its tailored Perf-Attack is the
``id-streaming`` kernel.  Key parameters: summary entries per channel (sized
from NRH and the refresh window), the per-entry per-bank bit-vectors, and
the spillover mitigation threshold.
"""

from __future__ import annotations

import math

from repro.config import SystemConfig
from repro.dram.address import BankAddress, RowAddress
from repro.dram.commands import Blackout, MitigationScope
from repro.trackers.base import (
    EMPTY_RESPONSE,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)
from repro.trackers.structures import MisraGriesSummary


#: Misra-Gries entry counts used in the paper for each RowHammer threshold.
PAPER_ENTRY_COUNTS = {
    4000: 309,
    2000: 617,
    1000: 1233,
    500: 2466,
    250: 4931,
    125: 9783,
}


def misra_gries_entries(
    nrh: int,
    trefw_ns: float = 32_000_000.0,
    trc_ns: float = 48.0,
) -> int:
    """Number of Misra-Gries entries ABACUS provisions for a given NRH.

    The tracker is sized to hold the maximum number of aggressor rows a single
    bank can produce within one refresh window: ``(tREFW / tRC) / (NRH / 2)``.
    For the paper's DDR5 timing this reproduces the published entry counts
    (e.g. 2466 at NRH = 500); when the simulation uses a scaled refresh window
    the structure scales down consistently.
    """
    if trefw_ns >= 31_000_000.0 and nrh in PAPER_ENTRY_COUNTS:
        return PAPER_ENTRY_COUNTS[nrh]
    activations_per_bank = trefw_ns / trc_ns
    return max(16, math.ceil(activations_per_bank / max(1, nrh // 2)))


class AbacusTracker(RowHammerTracker):
    """ABACUS with per-channel shared Misra-Gries tracking."""

    name = "abacus"

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.entries = misra_gries_entries(
            self.nrh,
            trefw_ns=config.timings.trefw_ns,
            trc_ns=config.timings.trc_ns,
        )
        self._summaries: dict[int, MisraGriesSummary] = {}

    # ------------------------------------------------------------------ #

    def _summary(self, channel: int) -> MisraGriesSummary:
        summary = self._summaries.get(channel)
        if summary is None:
            summary = MisraGriesSummary(
                capacity=self.entries,
                num_banks=self.org.banks_per_channel,
            )
            self._summaries[channel] = summary
        return summary

    def _mitigate_siblings(self, row: RowAddress, bank_bits: int) -> tuple[RowAddress, ...]:
        """Mitigation refreshes the row identifier in every flagged bank."""
        org = self.org
        mitigations = []
        for bank_index in range(org.banks_per_channel):
            if not (bank_bits >> bank_index) & 1:
                continue
            rank = bank_index // org.banks_per_rank
            local = bank_index % org.banks_per_rank
            bank_group = local // org.banks_per_group
            bank = local % org.banks_per_group
            mitigations.append(
                RowAddress(
                    BankAddress(row.bank.channel, rank, bank_group, bank), row.row
                )
            )
        if not mitigations:
            mitigations.append(row)
        return tuple(mitigations)

    # ------------------------------------------------------------------ #

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self._note_activation()
        org = self.org
        summary = self._summary(row.bank.channel)
        bank_index = (
            row.bank.rank * org.banks_per_rank + row.bank.rank_local_bank(org)
        )
        entry, _counted = summary.observe(row.row, bank_index)

        mitigations: tuple[RowAddress, ...] = ()
        blackouts: tuple[Blackout, ...] = ()

        if entry is not None and entry.count >= self.mitigation_threshold:
            # The shared counter tracks the *maximum* per-bank activation count
            # of this row identifier, so every sibling row (same row index in
            # every bank of the channel) may be at the threshold and must be
            # mitigated, not just the banks currently flagged in the entry's
            # bit-vector (those were cleared when the counter last advanced).
            all_banks = (1 << org.banks_per_channel) - 1
            mitigations = self._mitigate_siblings(row, all_banks)
            self._note_mitigation(len(mitigations))
            summary.reset_entry(row.row)

        if summary.spillover >= self.mitigation_threshold - 1:
            # Spillover overflow: any further unplaced row would inherit a
            # count at the mitigation threshold, so ABACUS refreshes every row
            # in the channel and resets its structures.
            duration = (
                org.rows_per_bank * self.config.timings.reset_refresh_per_row_ns
            )
            blackouts = (
                Blackout(
                    scope=MitigationScope.CHANNEL,
                    channel=row.bank.channel,
                    rank=row.bank.rank,
                    duration_ns=duration,
                    reason="abacus-spillover-reset",
                ),
            )
            summary.reset()
            self.stats.structure_resets += 1

        if not mitigations and not blackouts:
            return EMPTY_RESPONSE
        return TrackerResponse(mitigations=mitigations, blackouts=blackouts)

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        for summary in self._summaries.values():
            summary.reset()
        self.stats.periodic_resets += 1
        return EMPTY_RESPONSE

    # ------------------------------------------------------------------ #

    def storage_report(self) -> StorageReport:
        summary_bits = MisraGriesSummary(
            capacity=self.entries, num_banks=self.org.banks_per_channel
        ).storage_bits
        # Row-id match logic is CAM; counters and bit-vectors are SRAM.
        cam_bits = self.entries * 16
        sram_bits = summary_bits - cam_bits
        return StorageReport(sram_bytes=sram_bits // 8, cam_bytes=cam_bits // 8)
