"""Factory registry mapping tracker names to implementations.

The evaluation harness and the examples create trackers by name; this module
is the single place that knows every available mitigation, including the
DAPPER trackers that live in :mod:`repro.core`.

Two kinds of names are accepted:

* plain tracker names such as ``"dapper-h"`` or ``"hydra"``;
* composed names of the form ``"breakhammer:<inner>"`` which wrap the inner
  tracker in the :class:`repro.trackers.throttling.BreakHammerShim`
  thread-throttling layer (Section VII-A of the paper).
"""

from __future__ import annotations

from typing import Callable

from repro.config import SystemConfig
from repro.trackers.base import RowHammerTracker
from repro.trackers.none import NoMitigation
from repro.trackers.hydra import HydraTracker
from repro.trackers.start import StartTracker
from repro.trackers.comet import CoMeTTracker
from repro.trackers.abacus import AbacusTracker
from repro.trackers.blockhammer import BlockHammerTracker
from repro.trackers.graphene import GrapheneTracker
from repro.trackers.mint import MintTracker
from repro.trackers.para import ParaTracker
from repro.trackers.pride import PrideTracker
from repro.trackers.prac import PracTracker
from repro.trackers.throttling import BreakHammerShim


def _dapper_s(config: SystemConfig) -> RowHammerTracker:
    from repro.core.dapper_s import DapperSTracker

    return DapperSTracker(config)


def _dapper_h(config: SystemConfig) -> RowHammerTracker:
    from repro.core.dapper_h import DapperHTracker

    return DapperHTracker(config)


_FACTORIES: dict[str, Callable[[SystemConfig], RowHammerTracker]] = {
    "none": NoMitigation,
    "hydra": HydraTracker,
    "start": StartTracker,
    "comet": CoMeTTracker,
    "abacus": AbacusTracker,
    "blockhammer": BlockHammerTracker,
    "graphene": GrapheneTracker,
    "mint": MintTracker,
    "para": ParaTracker,
    "pride": PrideTracker,
    "prac": PracTracker,
    "dapper-s": _dapper_s,
    "dapper-h": _dapper_h,
}

#: Prefix used to compose the BreakHammer thread-throttling shim with any
#: registered tracker, e.g. ``"breakhammer:dapper-h"`` or ``"breakhammer:hydra"``.
BREAKHAMMER_PREFIX = "breakhammer:"


def available_trackers() -> tuple[str, ...]:
    """Names of every registered tracker."""
    return tuple(_FACTORIES)


def create_tracker(name: str, config: SystemConfig) -> RowHammerTracker:
    """Instantiate a tracker by name.

    ``"breakhammer:<inner>"`` wraps the inner tracker in the BreakHammer
    thread-throttling shim.
    """
    if name.startswith(BREAKHAMMER_PREFIX):
        inner_name = name[len(BREAKHAMMER_PREFIX):]
        return BreakHammerShim(config, create_tracker(inner_name, config))
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown tracker {name!r}; available: {', '.join(_FACTORIES)}"
        ) from None
    return factory(config)
