"""PRAC: Per-Row Activation Counting with Alert Back-Off (JEDEC DDR5 / QPRAC).

PRAC keeps an activation counter inside every DRAM row.  Updating the counter
requires a read-modify-write on every activation, which lengthens the row
cycle and costs roughly constant performance regardless of the RowHammer
threshold; in exchange, tracking is exact and Perf-Attacks gain little.  The
mitigation path follows the QPRAC formulation: when a row's counter crosses
the back-off threshold the DRAM raises an alert and the controller services
the mitigation during a refresh-management opportunity.

Paper context: the in-DRAM exact-counting comparison point of Section VI-K
(Figure 17).  Key parameters: the per-activation counter-update latency
added to the row cycle and the alert back-off threshold.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.dram.address import RowAddress
from repro.trackers.base import (
    EMPTY_RESPONSE,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)


class PracTracker(RowHammerTracker):
    """PRAC/QPRAC-style per-row counting in DRAM."""

    name = "prac"

    #: Additional time each activation takes for the counter read-modify-write
    #: (the tRC extension PRAC imposes).
    ACT_EXTENSION_NS = 10.0

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self._counters: dict[tuple[int, int], int] = {}

    def activation_extension_ns(self) -> float:
        return self.ACT_EXTENSION_NS

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self._note_activation()
        key = (row.bank.flat(self.org), row.row)
        count = self._counters.get(key, 0) + 1
        if count >= self.mitigation_threshold:
            self._counters[key] = 0
            self._note_mitigation()
            return TrackerResponse(mitigations=(row,))
        self._counters[key] = count
        return EMPTY_RESPONSE

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        self._counters.clear()
        return EMPTY_RESPONSE

    def storage_report(self) -> StorageReport:
        # Counters live inside the DRAM array; the controller needs no SRAM.
        return StorageReport(dram_bytes=self.org.rows_per_channel * 2)
