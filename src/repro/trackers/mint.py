"""MINT: a minimalist in-DRAM probabilistic tracker (Qureshi et al., MICRO 2024).

MINT (reference [49] in the paper) keeps a *single* candidate row per bank.
Activations within a mitigation window are sampled with reservoir sampling, so
every activation of the window is equally likely to be the one mitigated when
the bank's next refresh-management opportunity arrives.  Compared to PARA it
issues a bounded, paced number of mitigations (one per window) instead of an
unbounded stream of coin flips; compared to PrIDE it stores one candidate
rather than a queue.

The paper groups MINT with the RFM-paced in-DRAM mitigations whose security
depends on receiving at least one mitigation opportunity every
``NRH * PACE_FRACTION`` activations; at ultra-low thresholds that pacing --
and especially its Same-Bank RFM variant -- costs DRAM bandwidth, which is the
comparison the extended probabilistic benchmarks regenerate.

Paper context: related work (Section VII, reference [49]); evaluated here
alongside the Section VI-J probabilistic comparisons.  Key parameters: the
mitigation-window pace (``NRH * PACE_FRACTION``) and the RFM command flavour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig
from repro.crypto.prng import XorShift64
from repro.dram.address import RowAddress
from repro.trackers.base import (
    EMPTY_RESPONSE,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)


@dataclass
class _BankWindow:
    """Reservoir state of one bank's current mitigation window."""

    candidate: RowAddress | None = None
    activations: int = 0


class MintTracker(RowHammerTracker):
    """Single-candidate reservoir sampling paced by RFM opportunities."""

    name = "mint"

    #: A mitigation opportunity is granted every ``NRH * PACE_FRACTION``
    #: activations of a bank, mirroring the RFM pacing MINT relies on.
    PACE_FRACTION = 0.125

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.activations_per_mitigation = max(1, int(self.nrh * self.PACE_FRACTION))
        self._banks: dict[int, _BankWindow] = {}
        self._rng = XorShift64(config.seed ^ 0x4D494E54)  # "MINT"

    def _bank_window(self, bank_flat: int) -> _BankWindow:
        state = self._banks.get(bank_flat)
        if state is None:
            state = _BankWindow()
            self._banks[bank_flat] = state
        return state

    # ------------------------------------------------------------------ #

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self._note_activation()
        state = self._bank_window(row.bank.flat(self.org))
        state.activations += 1

        # Reservoir sampling: the i-th activation of the window replaces the
        # candidate with probability 1/i, making every activation equally
        # likely to be mitigated at the end of the window.
        if self._rng.next_below(state.activations) == 0:
            state.candidate = row

        if state.activations < self.activations_per_mitigation:
            return EMPTY_RESPONSE

        target = state.candidate if state.candidate is not None else row
        state.candidate = None
        state.activations = 0
        self._note_mitigation()
        return TrackerResponse(mitigations=(target,))

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        for state in self._banks.values():
            state.candidate = None
            state.activations = 0
        return EMPTY_RESPONSE

    # ------------------------------------------------------------------ #

    def storage_report(self) -> StorageReport:
        # One candidate row id plus one activation counter per bank.
        row_id_bits = max(1, (self.org.rows_per_bank - 1).bit_length())
        counter_bits = max(1, (self.activations_per_mitigation).bit_length())
        per_bank_bits = row_id_bits + counter_bits
        return StorageReport(
            sram_bytes=per_bank_bits * self.org.banks_per_channel // 8
        )
