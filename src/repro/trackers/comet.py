"""CoMeT: Count-Min-Sketch-based row tracking (HPCA 2024).

CoMeT shares counters across rows through a per-bank Count-Min Sketch (four
hash functions, 512 counters each) with a mitigation threshold of NRH/4, and
uses a small Recent Aggressor Table (RAT, 128 entries) of per-row counters to
avoid repeatedly mitigating rows whose sketch counters are saturated (the
sketch cannot be selectively reset).  When the RAT cannot capture the working
set of aggressors -- which the tailored Perf-Attack ensures by hammering more
rows than the RAT holds -- CoMeT falls back to resetting its structures by
refreshing every DRAM row of the rank, blocking it for milliseconds.

Paper context: one of the four scalable trackers attacked in Section III
(Figure 2); its tailored Perf-Attack is the ``rat-thrash`` kernel.  Key
parameters: 4 hash functions x 512 counters per bank, mitigation threshold
NRH/4, 128-entry RAT, 25% RAT-miss reset trigger.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field

from repro.config import SystemConfig
from repro.dram.address import RowAddress
from repro.dram.commands import Blackout, MitigationScope
from repro.trackers.base import (
    EMPTY_RESPONSE,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)
from repro.trackers.structures import CountMinSketch


@dataclass
class _ChannelState:
    """Per-channel CoMeT state: per-bank sketches plus the shared RAT."""

    sketches: dict[int, CountMinSketch] = field(default_factory=dict)
    rat: OrderedDict = field(default_factory=OrderedDict)
    miss_history: deque = field(default_factory=lambda: deque(maxlen=256))


class CoMeTTracker(RowHammerTracker):
    """CoMeT with the paper's configuration (4x512 CT, 128-entry RAT)."""

    name = "comet"

    CT_HASHES = 4
    CT_WIDTH = 512
    RAT_ENTRIES = 128
    MISS_HISTORY = 256
    MISS_RATE_RESET_THRESHOLD = 0.25
    PERIODIC_RESET_FRACTION = 1.0 / 3.0   # reset every tREFW / 3

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.ct_threshold = max(1, self.nrh // 4)
        self._channels: dict[int, _ChannelState] = {}
        self._next_periodic_reset_ns = (
            config.timings.trefw_ns * self.PERIODIC_RESET_FRACTION
        )
        self._seed = config.seed ^ 0x43_4F_4D  # "COM"

    # ------------------------------------------------------------------ #

    def _channel_state(self, channel: int) -> _ChannelState:
        state = self._channels.get(channel)
        if state is None:
            state = _ChannelState()
            self._channels[channel] = state
        return state

    def _sketch_for(self, state: _ChannelState, bank_flat: int) -> CountMinSketch:
        sketch = state.sketches.get(bank_flat)
        if sketch is None:
            sketch = CountMinSketch(
                depth=self.CT_HASHES,
                width=self.CT_WIDTH,
                seed=self._seed ^ (bank_flat * 0x9E3779B1),
            )
            state.sketches[bank_flat] = sketch
        return sketch

    def _structure_reset(self, row: RowAddress, reason: str) -> Blackout:
        """Clear every structure and refresh all rows of the accessed rank."""
        state = self._channel_state(row.bank.channel)
        for sketch in state.sketches.values():
            sketch.reset()
        state.rat.clear()
        state.miss_history.clear()
        self.stats.structure_resets += 1
        duration = (
            self.org.rows_per_bank * self.config.timings.reset_refresh_per_row_ns
        )
        return Blackout(
            scope=MitigationScope.RANK,
            channel=row.bank.channel,
            rank=row.bank.rank,
            duration_ns=duration,
            reason=reason,
        )

    # ------------------------------------------------------------------ #

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self._note_activation()

        # Periodic reset of the sketch and RAT every tREFW/3 (no bulk refresh:
        # the threshold of NRH/4 keeps the periodic reset safe, matching the
        # original CoMeT design; only attack-induced early resets pay the
        # full-rank refresh).
        if now_ns >= self._next_periodic_reset_ns:
            for state in self._channels.values():
                for sketch in state.sketches.values():
                    sketch.reset()
                state.rat.clear()
                state.miss_history.clear()
            self.stats.periodic_resets += 1
            self._next_periodic_reset_ns += (
                self.config.timings.trefw_ns * self.PERIODIC_RESET_FRACTION
            )

        org = self.org
        state = self._channel_state(row.bank.channel)
        bank_flat = row.bank.flat(org)
        sketch = self._sketch_for(state, bank_flat)
        estimate = sketch.increment(row.row)

        rat_key = (bank_flat, row.row)
        mitigations: tuple[RowAddress, ...] = ()
        blackouts: tuple[Blackout, ...] = ()

        if rat_key in state.rat:
            # Recently mitigated row: rely on its precise RAT counter rather
            # than the (saturated, non-resettable) sketch estimate.
            state.rat[rat_key] += 1
            state.rat.move_to_end(rat_key)
            if estimate >= self.ct_threshold:
                state.miss_history.append(False)
            if state.rat[rat_key] >= self.ct_threshold:
                mitigations = (row,)
                self._note_mitigation()
                state.rat[rat_key] = 0
        elif estimate >= self.ct_threshold:
            # Sketch saturated for a row the RAT does not know: mitigate it
            # and start tracking it precisely.  This is a RAT miss.
            mitigations = (row,)
            self._note_mitigation()
            state.miss_history.append(True)
            if len(state.rat) >= self.RAT_ENTRIES:
                state.rat.popitem(last=False)
            state.rat[rat_key] = 0
            # Early reset when the RAT miss rate over the last 256 saturation
            # events exceeds 25%.
            if (
                len(state.miss_history) >= self.MISS_HISTORY
                and (sum(state.miss_history) / len(state.miss_history))
                > self.MISS_RATE_RESET_THRESHOLD
            ):
                blackouts = (self._structure_reset(row, "comet-early-reset"),)
        else:
            return EMPTY_RESPONSE

        return TrackerResponse(mitigations=mitigations, blackouts=blackouts)

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        for state in self._channels.values():
            for sketch in state.sketches.values():
                sketch.reset()
            state.rat.clear()
            state.miss_history.clear()
        self.stats.periodic_resets += 1
        return EMPTY_RESPONSE

    # ------------------------------------------------------------------ #

    def storage_report(self) -> StorageReport:
        org = self.org
        banks_per_channel = org.banks_per_channel
        ct_bits = banks_per_channel * self.CT_HASHES * self.CT_WIDTH * 8
        rat_bits = self.RAT_ENTRIES * (21 + 8)
        history_bits = self.MISS_HISTORY
        sram_bytes = (ct_bits + history_bits) // 8
        cam_bytes = rat_bits // 8 + 23 * 1024 // 2
        return StorageReport(sram_bytes=sram_bytes, cam_bytes=cam_bytes)
