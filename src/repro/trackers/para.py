"""PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

PARA is stateless: on every activation it refreshes the neighbours of the
activated row with a small probability ``p``.  To remain secure as the
RowHammer threshold drops, ``p`` must grow roughly as ``1/NRH``, which is why
its overhead rises sharply at ultra-low thresholds (and further when the
mitigation uses the heavyweight DRFMsb command).

Paper context: probabilistic comparison point of Section VI-J (Figures 15
and 16).  Key parameter: the refresh probability ``p``, derived from NRH.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.dram.address import RowAddress
from repro.crypto.prng import XorShift64
from repro.trackers.base import (
    EMPTY_RESPONSE,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)


class ParaTracker(RowHammerTracker):
    """Stateless probabilistic mitigation."""

    name = "para"

    #: Scaling constant for the per-activation mitigation probability: the
    #: probability that an aggressor escapes mitigation over NRH/2 activations
    #: is (1-p)^(NRH/2) ~= exp(-SCALE/2), i.e. well below 1% per window.
    PROBABILITY_SCALE = 11.0

    def __init__(self, config: SystemConfig):
        super().__init__(config)
        self.probability = min(1.0, self.PROBABILITY_SCALE / max(1, self.nrh))
        self._rng = XorShift64(config.seed ^ 0x50415241)  # "PARA"

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self._note_activation()
        if self._rng.next_float() < self.probability:
            self._note_mitigation()
            return TrackerResponse(mitigations=(row,))
        return EMPTY_RESPONSE

    def storage_report(self) -> StorageReport:
        return StorageReport(sram_bytes=16)   # just the PRNG / threshold state
