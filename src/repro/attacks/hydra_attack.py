"""Tailored Perf-Attack against Hydra: Row Counter Cache set conflicts.

Hydra caches per-row counters in a small set-associative Row Counter Cache
(RCC) inside the memory controller; misses cost one DRAM read (fetch the
counter) plus one DRAM write (write back the evicted counter).  The attack
first pushes its rows' group counters past Hydra's per-row threshold, then
keeps activating more rows than one RCC set can hold so that (almost) every
activation misses, tripling the attacker's effective DRAM traffic and starving
co-running applications of bandwidth.

Paper context: Section III-B / Figure 2 (the ``rcc-conflict`` kernel).  Key
parameters: the conflict-set size (beyond the RCC's 32 ways) and the group
pre-charging phase that first flips the targets into per-row mode.
"""

from __future__ import annotations

from repro.attacks.base import AttackGenerator
from repro.config import DRAMOrganization
from repro.cpu.trace import TraceEntry
from repro.dram.address import AddressMapper


class RCCConflictAttack(AttackGenerator):
    """Activates rows that collide in Hydra's Row Counter Cache."""

    name = "hydra-rcc-conflict"

    #: Number of RCC sets in the evaluated Hydra configuration (4K entries,
    #: 32 ways).  Rows whose index is congruent modulo this value share a set.
    RCC_SETS = 128
    #: Rows alternated per bank so every access is a row conflict (an ACT).
    ROWS_PER_BANK = 2

    def __init__(
        self,
        org: DRAMOrganization,
        mapper: AddressMapper,
        seed: int = 1,
        target_set: int = 7,
        banks_used: int | None = None,
    ):
        super().__init__(org, mapper, seed)
        self.target_set = target_set % self.RCC_SETS
        self.banks_used = banks_used or org.banks_per_channel
        self._sequence: list[int] = []
        self._build_sequence()
        self._cursor = 0

    def _build_sequence(self) -> None:
        """Precompute the cyclic activation sequence.

        For each bank we pick ``ROWS_PER_BANK`` rows in the target RCC set
        (row indices congruent to the set index modulo the set count); the
        sequence interleaves banks so consecutive activations are only tRRD
        apart, and alternates the per-bank rows so the row buffer never hits.
        """
        org = self.org
        # Number of distinct rows per bank that fall into the target RCC set.
        rows_in_set_per_bank = max(2, org.rows_per_bank // self.RCC_SETS)
        for phase in range(self.ROWS_PER_BANK):
            for bank_index in range(self.banks_used):
                channel = 0
                rank = (bank_index // org.banks_per_rank) % org.ranks_per_channel
                bank_local = bank_index % org.banks_per_rank
                slot = (bank_index * self.ROWS_PER_BANK + phase) % rows_in_set_per_bank
                row = self.target_set + slot * self.RCC_SETS
                self._sequence.append(
                    self._encode(channel, rank, bank_local, row)
                )

    def next_entry(self) -> TraceEntry:
        address = self._sequence[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._sequence)
        return self._entry(address)

    #: The plain sequence-cycling pattern vectorizes directly.
    next_batch = AttackGenerator._cycle_batch
