"""Attack kernels: Performance Attacks, mapping-capture, and RowHammer.

``tailored_attack_for`` returns the Perf-Attack the paper designs for each
tracker (Figure 2): RCC set conflicts for Hydra, row streaming for START and
ABACUS, RAT thrashing for CoMeT, and the mapping-agnostic streaming / refresh
attacks for DAPPER.
"""

from __future__ import annotations

from repro.attacks.base import AttackGenerator
from repro.attacks.blind import (
    ManySidedRowHammerAttack,
    RandomRowCapacityAttack,
    ResetProbeAttack,
)
from repro.attacks.cache_thrash import CacheThrashingAttack
from repro.attacks.comet_attack import RATThrashingAttack
from repro.attacks.hydra_attack import RCCConflictAttack
from repro.attacks.mapping_capture import MappingCaptureResult, run_mapping_capture_attack
from repro.attacks.refresh_attack import DoubleSidedRowHammerAttack, RefreshAttack
from repro.attacks.streaming import RowStreamingAttack
from repro.config import DRAMOrganization
from repro.dram.address import AddressMapper

__all__ = [
    "AttackGenerator",
    "CacheThrashingAttack",
    "RCCConflictAttack",
    "RATThrashingAttack",
    "RowStreamingAttack",
    "RefreshAttack",
    "DoubleSidedRowHammerAttack",
    "ManySidedRowHammerAttack",
    "RandomRowCapacityAttack",
    "ResetProbeAttack",
    "MappingCaptureResult",
    "run_mapping_capture_attack",
    "tailored_attack_for",
    "tailored_attack_name",
    "attack_by_name",
    "available_attacks",
]


#: Attack the paper tailors to each tracker for the motivation figures.  The
#: START variant of the streaming attack uses a stride of 64 rows so every
#: activation touches a fresh counter cache line in START's reserved region.
_TAILORED = {
    "hydra": "rcc-conflict",
    "start": "counter-streaming",
    "abacus": "id-streaming",
    "comet": "rat-thrash",
    "dapper-s": "refresh",
    "dapper-h": "refresh",
}


#: Factories for every attack kernel, keyed by the short name used throughout
#: the CLI, the experiment runner and the benchmarks.
_ATTACK_FACTORIES = {
    "cache-thrashing": CacheThrashingAttack,
    "rcc-conflict": RCCConflictAttack,
    "rat-thrash": RATThrashingAttack,
    "row-streaming": RowStreamingAttack,
    "counter-streaming": lambda org, mapper, seed: RowStreamingAttack(
        org, mapper, seed, row_stride=64
    ),
    "id-streaming": lambda org, mapper, seed: RowStreamingAttack(
        org, mapper, seed, distinct_row_ids=True
    ),
    "refresh": RefreshAttack,
    "rowhammer": DoubleSidedRowHammerAttack,
    "many-sided-rowhammer": ManySidedRowHammerAttack,
    "blind-random-rows": RandomRowCapacityAttack,
    "blind-reset-probe": ResetProbeAttack,
    # The steady state after the probe has concluded: the attacker hammers the
    # row count the probe discovered (Section III-E notes the probe is needed
    # only once, after which the attack runs continuously at that size).
    "blind-post-probe": lambda org, mapper, seed: ResetProbeAttack(
        org, mapper, seed, initial_rows=1024, max_rows=1024
    ),
}


def available_attacks() -> tuple[str, ...]:
    """Names of every attack kernel :func:`attack_by_name` can build."""
    return tuple(_ATTACK_FACTORIES)


def attack_by_name(
    name: str,
    org: DRAMOrganization,
    mapper: AddressMapper,
    seed: int = 1,
) -> AttackGenerator:
    """Instantiate an attack kernel by short name."""
    try:
        factory = _ATTACK_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown attack {name!r}; available: {', '.join(_ATTACK_FACTORIES)}"
        ) from None
    return factory(org, mapper, seed)


def tailored_attack_name(tracker_name: str) -> str:
    """Short name of the Perf-Attack the paper tailors to ``tracker_name``.

    Trackers without a tailored attack (Figure 2 covers Hydra, START, ABACUS,
    CoMeT and the two DAPPER variants) fall back to the mapping-agnostic
    row-streaming attack.
    """
    return _TAILORED.get(tracker_name, "row-streaming")


def tailored_attack_for(
    tracker_name: str,
    org: DRAMOrganization,
    mapper: AddressMapper,
    seed: int = 1,
) -> AttackGenerator:
    """The RH-Tracker-based Perf-Attack the paper tailors to ``tracker_name``."""
    return attack_by_name(tailored_attack_name(tracker_name), org, mapper, seed)
