"""The mapping-agnostic *refresh attack* (Section V-E) and classic hammering.

The refresh attack repeatedly activates a small number of rows per bank as
fast as the DRAM timing allows.  Against DAPPER-S this drives the hammered
rows' group counters to the mitigation threshold over and over, and every
mitigation refreshes all 256 rows of the group -- a steady stream of bulk
refreshes that costs benign applications about 20%.  Against DAPPER-H the same
pattern only triggers single-shared-row refreshes, which is why the paper
reports <1% overhead.

Because the pattern is simply "hammer these rows", the same generator doubles
as the classic RowHammer aggressor used by the security audit tests: run it
against a tracker with the ground-truth auditor enabled and verify no row
crosses the RowHammer threshold.
"""

from __future__ import annotations

from repro.attacks.base import AttackGenerator
from repro.config import DRAMOrganization
from repro.cpu.trace import TraceEntry
from repro.dram.address import AddressMapper


class RefreshAttack(AttackGenerator):
    """Hammers a few rows per bank across every bank of the target channel(s)."""

    name = "refresh-attack"

    def __init__(
        self,
        org: DRAMOrganization,
        mapper: AddressMapper,
        seed: int = 1,
        rows_per_bank: int = 2,
        banks_used: int | None = 16,
        channels: tuple[int, ...] | None = (0,),
        base_row: int = 4096,
        row_stride: int = 3,
    ):
        super().__init__(org, mapper, seed)
        self.rows_per_bank = max(2, rows_per_bank)
        self.banks_used = banks_used or org.banks_per_channel
        self.channels = channels or tuple(range(org.channels))
        self.base_row = base_row
        self.row_stride = row_stride
        self._sequence: list[int] = []
        self._build_sequence()
        self._cursor = 0

    def _build_sequence(self) -> None:
        org = self.org
        for phase in range(self.rows_per_bank):
            for channel in self.channels:
                for bank_index in range(self.banks_used):
                    rank = (bank_index // org.banks_per_rank) % org.ranks_per_channel
                    bank_local = bank_index % org.banks_per_rank
                    row = self.base_row + phase * self.row_stride + bank_index
                    self._sequence.append(
                        self._encode(channel, rank, bank_local, row)
                    )

    @property
    def hammered_rows(self) -> int:
        """Total number of distinct rows the attack hammers."""
        return len(self._sequence)

    def next_entry(self) -> TraceEntry:
        address = self._sequence[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._sequence)
        return self._entry(address)

    #: The plain sequence-cycling pattern vectorizes directly.
    next_batch = AttackGenerator._cycle_batch


class DoubleSidedRowHammerAttack(AttackGenerator):
    """Classic double-sided RowHammer against one victim row per bank pair.

    Alternates the two aggressor rows surrounding a victim row in a handful of
    banks.  Used by the security tests: without a mitigation the victim's
    neighbours accumulate activations far past the RowHammer threshold; with
    any sound tracker they must not.
    """

    name = "double-sided-rowhammer"

    def __init__(
        self,
        org: DRAMOrganization,
        mapper: AddressMapper,
        seed: int = 1,
        victim_row: int = 30_000,
        banks_used: int = 4,
        channel: int = 0,
        rank: int = 0,
    ):
        super().__init__(org, mapper, seed)
        self.victim_row = victim_row
        self.banks_used = banks_used
        self.channel = channel
        self.rank = rank
        self._sequence = []
        for bank_local in range(banks_used):
            for aggressor in (victim_row - 1, victim_row + 1):
                self._sequence.append(
                    self._encode(channel, rank, bank_local, aggressor)
                )
        self._cursor = 0

    @property
    def aggressor_rows(self) -> tuple[int, int]:
        return (self.victim_row - 1, self.victim_row + 1)

    def next_entry(self) -> TraceEntry:
        address = self._sequence[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._sequence)
        return self._entry(address)

    #: The plain sequence-cycling pattern vectorizes directly.
    next_batch = AttackGenerator._cycle_batch
