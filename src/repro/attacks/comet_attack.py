"""Tailored Perf-Attack against CoMeT: Recent Aggressor Table thrashing.

CoMeT's Count-Min Sketch cannot be selectively reset, so it relies on a small
Recent Aggressor Table (RAT, 128 entries) of per-row counters to suppress
repeated mitigations of rows whose sketch counters are saturated.  The attack
rapidly activates far more rows than the RAT can hold: the sketch saturates
for all of them (helped by hash aliasing), the RAT thrashes, the RAT-miss rate
crosses CoMeT's 25% reset trigger, and CoMeT repeatedly resets its structures
by refreshing every row of the rank -- a multi-millisecond blackout each time.

Paper context: Section III-B / Figure 2 (the ``rat-thrash`` kernel).  Key
parameter: the hammered row count, a multiple of the 128-entry RAT.
"""

from __future__ import annotations

from repro.attacks.base import AttackGenerator
from repro.config import DRAMOrganization
from repro.cpu.trace import TraceEntry
from repro.dram.address import AddressMapper


class RATThrashingAttack(AttackGenerator):
    """Round-robins over more aggressor rows than CoMeT's RAT can track."""

    name = "comet-rat-thrash"

    def __init__(
        self,
        org: DRAMOrganization,
        mapper: AddressMapper,
        seed: int = 1,
        num_rows: int = 768,
        banks_used: int = 16,
        channel: int = 0,
    ):
        super().__init__(org, mapper, seed)
        self.num_rows = num_rows
        self.banks_used = min(banks_used, org.banks_per_channel)
        self.channel = channel
        self._sequence: list[int] = []
        self._build_sequence()
        self._cursor = 0

    def _build_sequence(self) -> None:
        org = self.org
        rows_per_bank_used = max(2, self.num_rows // self.banks_used)
        # Interleave banks so the activation rate is tRRD-bound, and walk each
        # bank's private row list so every access is a row conflict.
        for step in range(rows_per_bank_used):
            for bank_index in range(self.banks_used):
                rank = (bank_index // org.banks_per_rank) % org.ranks_per_channel
                bank_local = bank_index % org.banks_per_rank
                row = 1000 + step * 17 + bank_index  # distinct rows per bank
                self._sequence.append(
                    self._encode(self.channel, rank, bank_local, row)
                )

    def next_entry(self) -> TraceEntry:
        address = self._sequence[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._sequence)
        return self._entry(address)

    #: The plain sequence-cycling pattern vectorizes directly.
    next_batch = AttackGenerator._cycle_batch
