"""Empirical Mapping-Capturing attack against DAPPER-S and DAPPER-H.

Section V-D describes an attack that learns which rows share a Row Group
Counter by (1) charging a target row to one activation below the mitigation
threshold and (2) probing other rows while watching for the mitigative refresh
that betrays a shared group.  This module mounts that attack directly against
the tracker objects: the attacker "observes" a mitigation exactly when the
tracker requests one (the timing side channel the paper assumes), and the
experiment measures how many probe activations / reset periods are needed to
capture one mapping pair.

Running it against DAPPER-S reproduces the trend of Table II (a single hash is
capturable within milliseconds even with aggressive re-keying); running it
against DAPPER-H demonstrates the double-hash defence (the attack practically
never succeeds within a refresh window).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import SystemConfig, baseline_config
from repro.crypto.prng import XorShift64
from repro.dram.address import AddressMapper, BankAddress, RowAddress
from repro.core.dapper_s import DapperSTracker
from repro.trackers.base import RowHammerTracker


@dataclass(frozen=True)
class MappingCaptureResult:
    """Outcome of one empirical Mapping-Capturing attack run."""

    captured: bool
    probe_activations: int
    target_activations: int
    elapsed_ns: float
    reset_periods_used: int
    captured_row: int | None = None

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_ns / 1e6


def _row_address(config: SystemConfig, channel: int, rank: int, bank_local: int, row: int) -> RowAddress:
    org = config.dram
    bank_group = bank_local // org.banks_per_group
    bank = bank_local % org.banks_per_group
    return RowAddress(BankAddress(channel, rank, bank_group, bank), row)


def run_mapping_capture_attack(
    tracker: RowHammerTracker,
    config: SystemConfig | None = None,
    target_row: int = 12345,
    max_time_ns: float = 32_000_000.0,
    seed: int = 7,
) -> MappingCaptureResult:
    """Mount the Section V-D attack against a DAPPER tracker instance.

    The attacker hammers ``target_row`` in bank 0 up to one (DAPPER-S) or two
    (DAPPER-H) activations below the mitigation threshold, then probes rows in
    a different bank.  A mitigation issued while probing reveals that the
    probed row shares the target's group(s).  Time is charged following the
    paper: tRC per target activation, tRRD_S per probe activation.
    """
    config = config or baseline_config()
    timings = config.timings
    nm = config.rowhammer.mitigation_threshold
    rng = XorShift64(seed)

    is_single_hash = isinstance(tracker, DapperSTracker)
    charge_to = nm - 1 if is_single_hash else nm - 2

    now_ns = 0.0
    target = _row_address(config, 0, 0, 0, target_row)
    probe_bank = 1
    probe_row_space = config.dram.rows_per_bank

    target_activations = 0
    probe_activations = 0
    reset_periods = 0

    while now_ns < max_time_ns:
        reset_periods += 1
        # Phase 1: charge the target row to just below the threshold.
        for _ in range(charge_to):
            response = tracker.on_activation(target, now_ns)
            target_activations += 1
            now_ns += timings.trc_ns
            if response.mitigations or response.group_mitigations:
                # The probe phase of a previous period already consumed some
                # budget; a mitigation here still reveals nothing new.
                pass
        # Phase 2: probe rows in another bank until the reset period expires
        # (single hash) or until the per-trial guess budget is used (double
        # hash, where each trial needs the target re-charged).
        probes_this_period = 0
        probe_budget = (
            int(max(0.0, (12_000.0 - timings.trc_ns * charge_to)) / timings.trrd_s_ns)
            if is_single_hash
            else 2
        )
        while probes_this_period < max(1, probe_budget) and now_ns < max_time_ns:
            probe_row = rng.next_below(probe_row_space)
            probe = _row_address(config, 0, 0, probe_bank, probe_row)
            response = tracker.on_activation(probe, now_ns)
            probe_activations += 1
            probes_this_period += 1
            now_ns += timings.trrd_s_ns
            if response.mitigations or response.group_mitigations:
                return MappingCaptureResult(
                    captured=True,
                    probe_activations=probe_activations,
                    target_activations=target_activations,
                    elapsed_ns=now_ns,
                    reset_periods_used=reset_periods,
                    captured_row=probe_row,
                )
        # Final check activation for the double-hash variant.
        if not is_single_hash:
            response = tracker.on_activation(target, now_ns)
            target_activations += 1
            now_ns += timings.trc_ns
            if response.mitigations:
                return MappingCaptureResult(
                    captured=True,
                    probe_activations=probe_activations,
                    target_activations=target_activations,
                    elapsed_ns=now_ns,
                    reset_periods_used=reset_periods,
                    captured_row=probe_row,
                )
        # The reset period expires: DAPPER re-keys, the attacker starts over.
        tracker.on_refresh_window(reset_periods, now_ns)

    return MappingCaptureResult(
        captured=False,
        probe_activations=probe_activations,
        target_activations=target_activations,
        elapsed_ns=now_ns,
        reset_periods_used=reset_periods,
    )
