"""Common machinery for attack request generators.

Attack kernels implement the same :class:`repro.cpu.trace.RequestGenerator`
protocol as benign workload traces, so the simulator schedules them on a core
like any other application: their activation rate is bounded by the core's
memory-level parallelism and by DRAM timing, exactly as a real attacker
process would be.

Most attacks bypass the shared LLC (``bypasses_llc = True``): real attack
kernels either flush their lines or walk footprints far larger than the LLC,
and what matters to the attack is that every access reaches DRAM and causes a
row activation.

Paper context: the threat model of Section III -- the attacker is an
unprivileged process on one (or, with core plans, several) of the cores.
Key parameters: ``GAP_INSTRUCTIONS`` (one instruction of work per access)
and the deep MLP override granted by the experiment layer, which together
set the attacker's peak activation rate.
"""

from __future__ import annotations

from repro.config import DRAMOrganization
from repro.crypto.prng import XorShift64
from repro.cpu.trace import TraceEntry
from repro.dram.address import AddressMapper


class AttackGenerator:
    """Base class for attack request streams."""

    #: Name used by the evaluation harness and reports.
    name = "attack"
    bypasses_llc = True

    #: Attackers issue an access after a single instruction of work.
    GAP_INSTRUCTIONS = 1

    def __init__(self, org: DRAMOrganization, mapper: AddressMapper, seed: int = 1):
        self.org = org
        self.mapper = mapper
        self.rng = XorShift64(seed or 1)
        self.requests_generated = 0

    # ------------------------------------------------------------------ #

    def _entry(self, address: int, is_write: bool = False) -> TraceEntry:
        self.requests_generated += 1
        return TraceEntry(
            gap_instructions=self.GAP_INSTRUCTIONS,
            address=address,
            is_write=is_write,
        )

    def _encode(
        self,
        channel: int,
        rank: int,
        bank_local: int,
        row: int,
        column: int = 0,
    ) -> int:
        """Encode a (channel, rank, rank-local bank, row) target."""
        org = self.org
        bank_group = bank_local // org.banks_per_group
        bank = bank_local % org.banks_per_group
        return self.mapper.encode(
            channel=channel,
            rank=rank,
            bank_group=bank_group,
            bank=bank,
            row=row % org.rows_per_bank,
            column=column % org.lines_per_row,
        )

    def next_entry(self) -> TraceEntry:  # pragma: no cover - overridden
        raise NotImplementedError

    # ------------------------------------------------------------------ #

    def next_batch(self, count: int):
        """Next ``count`` entries as parallel ``(gaps, addresses, writes)``.

        Generic implementation driving the subclass's :meth:`next_entry`, so
        it is correct for every attack; subclasses whose ``next_entry`` is the
        plain sequence-cycling pattern alias this to :meth:`_cycle_batch`.
        """
        gaps = [self.GAP_INSTRUCTIONS] * count
        addresses = [0] * count
        writes = [False] * count
        next_entry = self.next_entry
        for i in range(count):
            entry = next_entry()
            gaps[i] = entry.gap_instructions
            addresses[i] = entry.address
            writes[i] = entry.is_write
        return gaps, addresses, writes

    def _cycle_batch(self, count: int):
        """Batched equivalent of the read-only sequence-cycling next_entry."""
        sequence = self._sequence
        length = len(sequence)
        cursor = self._cursor
        if count <= length - cursor:
            addresses = sequence[cursor:cursor + count]
        else:
            addresses = sequence[cursor:]
            remaining = count - (length - cursor)
            full, tail = divmod(remaining, length)
            addresses = addresses + sequence * full + sequence[:tail]
        self._cursor = (cursor + count) % length
        self.requests_generated += count
        return [self.GAP_INSTRUCTIONS] * count, addresses, [False] * count
