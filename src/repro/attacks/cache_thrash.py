"""Cache thrashing: the non-RowHammer baseline Performance Attack.

The attacker streams reads over a footprint many times larger than the shared
LLC, evicting the benign cores' working sets and consuming DRAM bandwidth.
The paper uses this attack as the yardstick Perf-Attacks are compared against
(Section III, Figures 1 and 3-5: roughly a 40% average slowdown at the
baseline configuration).  Key parameter: the streamed footprint, a multiple
of the LLC size so no line survives between passes.
"""

from __future__ import annotations

from repro.attacks.base import AttackGenerator
from repro.config import DRAMOrganization
from repro.cpu.trace import TraceEntry
from repro.dram.address import AddressMapper


class CacheThrashingAttack(AttackGenerator):
    """Streams over a large footprint through the LLC."""

    name = "cache-thrashing"
    bypasses_llc = False

    def __init__(
        self,
        org: DRAMOrganization,
        mapper: AddressMapper,
        seed: int = 1,
        footprint_bytes: int = 16 * 1024 * 1024,
    ):
        super().__init__(org, mapper, seed)
        line = org.line_size_bytes
        total_lines = org.total_bytes // line
        self.footprint_lines = min(footprint_bytes // line, total_lines // 2)
        # Walk the upper half of memory so the footprint does not overlap the
        # benign cores' private regions.
        self.base_line = total_lines // 2
        self._cursor = 0

    def next_entry(self) -> TraceEntry:
        line = self.base_line + self._cursor
        self._cursor = (self._cursor + 1) % self.footprint_lines
        return self._entry(line * self.org.line_size_bytes)
