"""Row-streaming attacks.

A single kernel that activates a new DRAM row on every access, rotating over
the banks of the targeted channel(s) so activations are only tRRD apart.
This one pattern is the tailored Perf-Attack against three different defences:

* **START** -- every new row needs a counter, so the reserved LLC region fills
  and every further activation costs a counter fetch and write-back;
* **ABACUS** -- every new row identifier misses the shared Misra-Gries table,
  so the spillover counter climbs to the mitigation threshold and forces a
  full-channel refresh reset;
* **DAPPER-S** (mapping-agnostic streaming attack) -- every group counter
  receives its members' activations and eventually triggers a group-wide
  mitigative refresh, regardless of the secret hash.

Paper context: Section III-B / Figure 2 for the START and ABACUS variants,
Section V-E for the mapping-agnostic use against DAPPER.  Key parameters:
``row_stride`` (64 for START's counter lines) and ``distinct_row_ids``
(ABACUS tracks row identifiers, not physical rows).
"""

from __future__ import annotations

from repro.attacks.base import AttackGenerator
from repro.config import DRAMOrganization
from repro.cpu.trace import TraceEntry
from repro.dram.address import AddressMapper


class RowStreamingAttack(AttackGenerator):
    """Activates every row of the target ranks, bank-interleaved."""

    name = "row-streaming"

    def __init__(
        self,
        org: DRAMOrganization,
        mapper: AddressMapper,
        seed: int = 1,
        channels: tuple[int, ...] | None = None,
        ranks: tuple[int, ...] | None = None,
        row_stride: int = 1,
        distinct_row_ids: bool = False,
    ):
        """``distinct_row_ids`` makes every access use a different row index
        (row 0 in bank 0, row 1 in bank 1, ...), which is the exact pattern the
        paper uses against ABACUS' shared row-identifier tracker."""
        super().__init__(org, mapper, seed)
        self.channels = channels or tuple(range(org.channels))
        self.ranks = ranks or tuple(range(org.ranks_per_channel))
        self.row_stride = max(1, row_stride)
        self.distinct_row_ids = distinct_row_ids
        self._targets = [
            (channel, rank)
            for channel in self.channels
            for rank in self.ranks
        ]
        self._bank_cursor = 0
        self._row_cursor = 0
        self._target_cursor = 0
        self._unique_counter = 0

    def next_entry(self) -> TraceEntry:
        channel, rank = self._targets[self._target_cursor]
        bank_local = self._bank_cursor
        if self.distinct_row_ids:
            row = self._unique_counter % self.org.rows_per_bank
            self._unique_counter += 1
        else:
            row = self._row_cursor

        address = self._encode(channel, rank, bank_local, row)

        # Advance: banks fastest (tRRD-limited), then targets, then rows.
        self._target_cursor += 1
        if self._target_cursor >= len(self._targets):
            self._target_cursor = 0
            self._bank_cursor += 1
            if self._bank_cursor >= self.org.banks_per_rank:
                self._bank_cursor = 0
                self._row_cursor = (
                    self._row_cursor + self.row_stride
                ) % self.org.rows_per_bank
        return self._entry(address)
