"""Perf-Attacks that need no knowledge of the tracker's internals (Section III-E).

The tailored attacks of Section III-B assume the attacker knows structure
sizes and mappings (e.g. which rows collide in Hydra's Row Counter Cache).
Section III-E observes that the attacks stay potent without that knowledge:

* **Random-row capacity attack.**  Instead of engineering RCC set conflicts,
  the attacker picks a few hundred rows at random and keeps activating them.
  The Row Counter Cache (or START's reserved LLC region) simply fills up, so
  the misses become *capacity* misses instead of conflict misses -- the DRAM
  counter traffic is the same.
* **Reset-probe attack.**  Against CoMeT the attacker does not know the Recent
  Aggressor Table size, but structure resets are easy to observe (they block
  DRAM for ~2.4 ms).  The attacker escalates the number of hammered rows
  geometrically, probing until resets appear, and then keeps hammering that
  many rows.  The probe is needed only once; afterwards the attack is as
  potent as the informed one.
* **Many-sided RowHammer.**  Not a Perf-Attack but the classic Blacksmith-style
  non-uniform aggressor pattern, included so the security audits can exercise
  trackers with more aggressors per bank than the double-sided kernel.
"""

from __future__ import annotations

from repro.attacks.base import AttackGenerator
from repro.config import DRAMOrganization
from repro.cpu.trace import TraceEntry
from repro.dram.address import AddressMapper


class RandomRowCapacityAttack(AttackGenerator):
    """Repeatedly activates a random set of rows to thrash counter caches.

    Works against any tracker that caches per-row counters (Hydra's RCC,
    START's reserved LLC region) without knowing the cache geometry: once the
    attacker's working set exceeds the cache capacity, every activation misses
    and costs extra DRAM counter traffic.

    The default working set (8192 rows) is kept inside a single rank so it
    comfortably exceeds Hydra's 4K-entry per-rank Row Counter Cache.  Note
    that the attack needs a long ramp: each shared group counter must first
    reach Hydra's per-row-tracking threshold, which takes on the order of
    ``group_threshold * num_rows`` activations (the benchmarks pre-play that
    ramp through the tracker warm-up helper).
    """

    name = "blind-random-rows"

    def __init__(
        self,
        org: DRAMOrganization,
        mapper: AddressMapper,
        seed: int = 1,
        num_rows: int = 8192,
        banks_used: int | None = None,
        channel: int = 0,
    ):
        super().__init__(org, mapper, seed)
        self.num_rows = num_rows
        self.banks_used = banks_used or org.banks_per_rank
        self.channel = channel
        self._sequence: list[int] = []
        self._build_sequence()
        self._cursor = 0

    def _build_sequence(self) -> None:
        org = self.org
        seen: set[tuple[int, int]] = set()
        while len(self._sequence) < self.num_rows:
            bank_index = self.rng.next_below(self.banks_used)
            row = self.rng.next_below(org.rows_per_bank)
            if (bank_index, row) in seen:
                continue
            seen.add((bank_index, row))
            rank = (bank_index // org.banks_per_rank) % org.ranks_per_channel
            bank_local = bank_index % org.banks_per_rank
            self._sequence.append(self._encode(self.channel, rank, bank_local, row))
        # Interleave the per-bank lists implicitly by shuffling the sequence so
        # consecutive activations usually target different banks (tRRD-bound).
        for i in range(len(self._sequence) - 1, 0, -1):
            j = self.rng.next_below(i + 1)
            self._sequence[i], self._sequence[j] = self._sequence[j], self._sequence[i]

    @property
    def distinct_rows(self) -> int:
        """Number of distinct rows in the attacker's working set."""
        return len(self._sequence)

    def next_entry(self) -> TraceEntry:
        address = self._sequence[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._sequence)
        return self._entry(address)

    #: The plain sequence-cycling pattern vectorizes directly.
    next_batch = AttackGenerator._cycle_batch


class ResetProbeAttack(AttackGenerator):
    """Escalates its aggressor-row count until structure resets appear.

    Models the Section III-E attacker who does not know CoMeT's RAT size: it
    hammers ``initial_rows`` rows for ``activations_per_episode`` activations,
    then doubles the row count, and so on up to ``max_rows``.  In a real attack
    the escalation stops as soon as the 2.4 ms reset blackouts become visible;
    here the attack simply continues to the cap, which it reaches within the
    first few percent of any simulation window, so the steady-state potency
    matches the informed RAT-thrashing attack.
    """

    name = "blind-reset-probe"

    def __init__(
        self,
        org: DRAMOrganization,
        mapper: AddressMapper,
        seed: int = 1,
        initial_rows: int = 32,
        max_rows: int = 1024,
        activations_per_episode: int = 2048,
        banks_used: int = 16,
        channel: int = 0,
    ):
        super().__init__(org, mapper, seed)
        if initial_rows < 1 or max_rows < initial_rows:
            raise ValueError("need 1 <= initial_rows <= max_rows")
        self.initial_rows = initial_rows
        self.max_rows = max_rows
        self.activations_per_episode = activations_per_episode
        self.banks_used = min(banks_used, org.banks_per_channel)
        self.channel = channel
        self._episode_rows = initial_rows
        self._episode_activations = 0
        self._sequence: list[int] = []
        self._build_sequence()
        self._cursor = 0

    @property
    def current_rows(self) -> int:
        """Number of distinct rows hammered in the current probe episode."""
        return self._episode_rows

    def _build_sequence(self) -> None:
        org = self.org
        self._sequence = []
        rows_per_bank_used = max(1, self._episode_rows // self.banks_used)
        for step in range(rows_per_bank_used):
            for bank_index in range(self.banks_used):
                rank = (bank_index // org.banks_per_rank) % org.ranks_per_channel
                bank_local = bank_index % org.banks_per_rank
                row = 2000 + step * 13 + bank_index
                self._sequence.append(
                    self._encode(self.channel, rank, bank_local, row)
                )
        self._cursor = 0

    def _maybe_escalate(self) -> None:
        if self._episode_activations < self.activations_per_episode:
            return
        self._episode_activations = 0
        if self._episode_rows < self.max_rows:
            self._episode_rows = min(self.max_rows, self._episode_rows * 2)
            self._build_sequence()

    def next_entry(self) -> TraceEntry:
        self._maybe_escalate()
        address = self._sequence[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._sequence)
        self._episode_activations += 1
        return self._entry(address)


class ManySidedRowHammerAttack(AttackGenerator):
    """Blacksmith-style many-sided hammering of one victim region per bank.

    ``num_aggressors`` rows spaced ``spacing`` apart are hammered round-robin
    in each of ``banks_used`` banks.  Used by the security audits to exercise
    trackers with several simultaneous aggressors per bank; any sound tracker
    must keep every aggressor below the RowHammer threshold between victim
    refreshes.
    """

    name = "many-sided-rowhammer"

    def __init__(
        self,
        org: DRAMOrganization,
        mapper: AddressMapper,
        seed: int = 1,
        base_row: int = 20_000,
        num_aggressors: int = 8,
        spacing: int = 2,
        banks_used: int = 4,
        channel: int = 0,
        rank: int = 0,
    ):
        super().__init__(org, mapper, seed)
        if num_aggressors < 1:
            raise ValueError("need at least one aggressor row")
        self.base_row = base_row
        self.num_aggressors = num_aggressors
        self.spacing = max(1, spacing)
        self.banks_used = banks_used
        self.channel = channel
        self.rank = rank
        self._sequence = [
            self._encode(
                channel, rank, bank_local, base_row + aggressor * self.spacing
            )
            for aggressor in range(num_aggressors)
            for bank_local in range(banks_used)
        ]
        self._cursor = 0

    @property
    def aggressor_rows(self) -> tuple[int, ...]:
        """Row indices hammered in every targeted bank."""
        return tuple(
            self.base_row + aggressor * self.spacing
            for aggressor in range(self.num_aggressors)
        )

    def next_entry(self) -> TraceEntry:
        address = self._sequence[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._sequence)
        return self._entry(address)

    #: The plain sequence-cycling pattern vectorizes directly.
    next_batch = AttackGenerator._cycle_batch
