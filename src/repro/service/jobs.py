"""In-process drain pool: accepted campaigns become CampaignWorker jobs.

The service's job queue does not invent a second execution path -- each pool
thread runs the exact :class:`~repro.store.worker.CampaignWorker` protocol
an external ``campaign worker`` process would, against its own short-lived
store handle.  That buys three things for free:

* **Fan-out.**  An accepted campaign is enqueued once per pool thread; the
  lease table arbitrates who drains which shard, so N in-process workers
  genuinely parallelise one campaign (and duplicate queue entries for an
  already-terminal campaign cost one claim attempt, nothing more).
* **Mixed fleets.**  External ``campaign worker`` processes attaching to
  the same warehouse participate in the same drain -- the service does not
  distinguish them from its own threads (``serve --workers 0`` runs the
  service as a pure front end over an external fleet).
* **Crash safety.**  A pool thread dying mid-shard looks exactly like a
  dead external worker: its lease expires and a survivor reclaims it.
"""

from __future__ import annotations

import logging
import queue
import threading

from repro.store import CampaignWorker, open_store

_LOG = logging.getLogger("repro.service")

_STOP = object()


class WorkerPool:
    """N daemon threads draining submitted campaigns via the lease table."""

    def __init__(
        self,
        target: str,
        workers: int = 1,
        jobs: int = 1,
        shard_size: int = 4,
        lease_duration: float = 60.0,
        max_attempts: int = 3,
        track_memory: bool = False,
    ):
        self.target = str(target)
        self.workers = max(1, int(workers))
        self.jobs = max(1, int(jobs))
        self.shard_size = max(1, int(shard_size))
        self.lease_duration = float(lease_duration)
        self.max_attempts = max(1, int(max_attempts))
        self.track_memory = bool(track_memory)
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._outstanding: dict[str, int] = {}   # campaign -> queued entries
        self._threads: list[threading.Thread] = []
        self._states: dict[str, dict] = {}
        self._stopping = False

    # ------------------------------------------------------------------ #

    def start(self) -> None:
        for index in range(self.workers):
            worker_id = f"svc-worker-{index + 1}"
            self._states[worker_id] = {
                "worker": worker_id,
                "state": "idle",
                "campaign": None,
                "shards_completed": 0,
                "simulations_executed": 0,
                "last_error": None,
            }
            thread = threading.Thread(
                target=self._loop,
                args=(worker_id,),
                name=worker_id,
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def stop(self, wait: bool = True, timeout: float | None = 10.0) -> None:
        """Stop accepting work and let threads exit after their current job."""
        with self._lock:
            self._stopping = True
        for _ in self._threads:
            self._queue.put(_STOP)
        if wait:
            for thread in self._threads:
                thread.join(timeout=timeout)

    # ------------------------------------------------------------------ #

    def enqueue(self, name: str, specs) -> bool:
        """Queue a campaign for draining; no-op if it is already queued.

        One queue entry per pool thread, so every idle worker joins the
        drain.  Returns whether anything was enqueued.
        """
        with self._lock:
            if self._stopping or name in self._outstanding:
                return False
            self._outstanding[name] = self.workers
        for _ in range(self.workers):
            self._queue.put((name, list(specs)))
        return True

    def snapshot(self) -> dict:
        """Pool state for ``GET /api/v1/workers``."""
        with self._lock:
            return {
                "workers": [dict(state) for state in self._states.values()],
                "queued_campaigns": sorted(self._outstanding),
                "queue_depth": self._queue.qsize(),
            }

    # ------------------------------------------------------------------ #

    def _loop(self, worker_id: str) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            name, specs = item
            self._set(worker_id, state="draining", campaign=name)
            try:
                self._drain(worker_id, name, specs)
            except Exception as error:
                # A failed drain never kills the pool thread: the campaign
                # stays resumable (leases expire, results are checkpointed)
                # and the error is visible on /workers.
                _LOG.exception(
                    "service worker %s: drain of %r failed", worker_id, name
                )
                self._set(
                    worker_id,
                    last_error=f"{name}: {type(error).__name__}: {error}",
                )
            finally:
                self._set(worker_id, state="idle", campaign=None)
                with self._lock:
                    remaining = self._outstanding.get(name, 1) - 1
                    if remaining <= 0:
                        self._outstanding.pop(name, None)
                    else:
                        self._outstanding[name] = remaining

    def _drain(self, worker_id: str, name: str, specs) -> None:
        store = open_store(self.target)
        try:
            worker = CampaignWorker(
                name,
                specs,
                store,
                worker_id=worker_id,
                jobs=self.jobs,
                shard_size=self.shard_size,
                lease_duration=self.lease_duration,
                max_attempts=self.max_attempts,
                init=False,
                source="service",
                track_memory=self.track_memory,
            )
            worker.join()
            summary = worker.run()
        finally:
            store.close()
        _LOG.info(
            "service worker %s drained %r: %d/%d shard(s) here "
            "(%d executed, %d reclaimed)",
            worker_id, name, summary.completed, summary.shards,
            summary.executed, summary.reclaimed,
        )
        with self._lock:
            state = self._states[worker_id]
            state["shards_completed"] += summary.completed
            state["simulations_executed"] += summary.executed

    def _set(self, worker_id: str, **fields) -> None:
        with self._lock:
            self._states[worker_id].update(fields)
