"""The sweep service: a stdlib-only WSGI app over the campaign warehouse.

Endpoints (all JSON, all under ``/api/v1``):

========  ==============================  =======================================
Method    Path                            Meaning
========  ==============================  =======================================
GET       ``/health``                     liveness probe (never rate limited)
POST      ``/campaigns``                  submit a suite document (idempotent)
GET       ``/campaigns``                  list campaigns with completion state
GET       ``/campaigns/{name}``           one campaign's status document
GET       ``/campaigns/{name}/leases``    per-shard lease table
GET       ``/campaigns/{name}/report``    result rows (``offset``/``limit``)
GET       ``/campaigns/{name}/aggregate`` grouped report summary (``group-by``)
GET       ``/results``                    flattened runs (filters + pagination)
GET       ``/results/aggregate``          grouped runs summary (``group-by``)
GET       ``/metrics``                    run keys with metrics stored
GET       ``/metrics/{key}``              one run's metrics series (``?metric=``)
GET       ``/workers``                    in-process drain pool state
========  ==============================  =======================================

The app is a plain WSGI callable built on :mod:`wsgiref` -- no third-party
framework -- served by a threading server so a long POST cannot starve
status polls.  Request handling is strictly: rate limit, parse, route,
serialize; every failure path emits the structured JSON error shape from
:mod:`repro.service.errors`.
"""

from __future__ import annotations

import json
import logging
from socketserver import ThreadingMixIn
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from repro.service.errors import (
    REASONS,
    ApiError,
    BadRequest,
    PayloadTooLarge,
    RateLimited,
)
from repro.service.jobs import WorkerPool
from repro.service.ratelimit import RateLimiter
from repro.service.repository import CampaignRepository
from repro.service.router import Request, Router, parse_json_body, parse_query

_LOG = logging.getLogger("repro.service")

#: Request bodies past this size are refused before parsing (a suite file
#: that expands to the full paper matrix is a few kilobytes).
MAX_BODY_BYTES = 8 * 1024 * 1024


class ServiceApp:
    """WSGI callable wiring the router to the repository and the pool."""

    def __init__(
        self,
        repository: CampaignRepository,
        pool: WorkerPool | None = None,
        rate_limiter: RateLimiter | None = None,
        max_body_bytes: int = MAX_BODY_BYTES,
    ):
        self.repository = repository
        self.pool = pool
        self.rate_limiter = rate_limiter or RateLimiter(0.0)
        self.max_body_bytes = int(max_body_bytes)
        self.router = Router()
        self.router.get("/api/v1/health", self._health)
        self.router.post("/api/v1/campaigns", self._submit)
        self.router.get("/api/v1/campaigns", self._campaigns)
        self.router.get("/api/v1/campaigns/{name}", self._status)
        self.router.get("/api/v1/campaigns/{name}/leases", self._leases)
        self.router.get("/api/v1/campaigns/{name}/report", self._report)
        self.router.get(
            "/api/v1/campaigns/{name}/aggregate", self._aggregate_report
        )
        self.router.get("/api/v1/results", self._results)
        self.router.get("/api/v1/results/aggregate", self._aggregate_results)
        self.router.get("/api/v1/metrics", self._metrics_keys)
        self.router.get("/api/v1/metrics/{key}", self._metrics)
        self.router.get("/api/v1/workers", self._workers)

    # -- WSGI ----------------------------------------------------------- #

    def __call__(self, environ, start_response):
        try:
            status, document, extra_headers = self._handle(environ)
        except ApiError as error:
            status, document = error.status, error.document()
            extra_headers = []
            if isinstance(error, RateLimited):
                retry_after = error.details.get("retry_after", 1)
                extra_headers = [("Retry-After", f"{retry_after:.0f}")]
        except Exception:
            _LOG.exception(
                "unhandled error serving %s %s",
                environ.get("REQUEST_METHOD"), environ.get("PATH_INFO"),
            )
            status = 500
            document = {
                "error": {
                    "status": 500,
                    "code": "internal_error",
                    "message": "internal server error (see the service log)",
                }
            }
            extra_headers = []
        body = (json.dumps(document, indent=2, default=str) + "\n").encode(
            "utf-8"
        )
        reason = REASONS.get(status, "Unknown")
        start_response(
            f"{status} {reason}",
            [
                ("Content-Type", "application/json; charset=utf-8"),
                ("Content-Length", str(len(body))),
                *extra_headers,
            ],
        )
        return [body]

    def _handle(self, environ) -> tuple[int, dict, list]:
        method = environ.get("REQUEST_METHOD", "GET").upper()
        path = environ.get("PATH_INFO", "/")
        remote = environ.get("REMOTE_ADDR", "")
        if path != "/api/v1/health":
            allowed, retry_after = self.rate_limiter.acquire(remote or "?")
            if not allowed:
                raise RateLimited(
                    "rate limit exceeded; retry after "
                    f"{retry_after:.1f}s",
                    retry_after=max(1.0, retry_after),
                )
        body = None
        if method == "POST":
            body = parse_json_body(self._read_body(environ))
        request = Request(
            method=method,
            path=path,
            query=parse_query(environ.get("QUERY_STRING", "")),
            body=body,
            remote_addr=remote,
        )
        result = self.router.dispatch(request)
        if isinstance(result, tuple):
            status, document = result
        else:
            status, document = 200, result
        return status, document, []

    def _read_body(self, environ) -> bytes:
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            raise BadRequest("invalid Content-Length header") from None
        if length > self.max_body_bytes:
            raise PayloadTooLarge(
                f"request body of {length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit"
            )
        if length <= 0:
            return b""
        return environ["wsgi.input"].read(length)

    # -- handlers ------------------------------------------------------- #

    def _health(self, request: Request):
        return {"status": "ok"}

    def _submit(self, request: Request):
        if not isinstance(request.body, dict):
            raise BadRequest(
                "POST /api/v1/campaigns expects a JSON suite document "
                "(an object with a 'scenarios' list)"
            )
        name = request.query.get("name") or None
        submitted = self.repository.submit(request.body, name=name)
        queued = False
        if self.pool is not None and submitted.status["state"] != "complete":
            queued = self.pool.enqueue(submitted.name, submitted.specs)
        document = {
            "campaign": submitted.status,
            "created": submitted.created,
            "queued": queued,
            "drain": "in-process" if self.pool is not None else "external",
        }
        return (201 if submitted.created else 200), document

    def _campaigns(self, request: Request):
        names = self.repository.campaign_names()
        return {
            "campaigns": [self.repository.status(name) for name in names]
        }

    def _status(self, request: Request):
        return self.repository.status(request.params["name"])

    def _leases(self, request: Request):
        return self.repository.leases(request.params["name"])

    def _report(self, request: Request):
        return self.repository.report(
            request.params["name"],
            offset=request.query_int("offset", 0),
            limit=request.query_int("limit"),
        )

    def _results(self, request: Request):
        return self.repository.results(
            tracker=request.query.get("tracker") or None,
            workload=request.query.get("workload") or None,
            attack=request.query.get("attack") or None,
            nrh=request.query_int("nrh"),
            code_version=request.query.get("code_version") or None,
            limit=request.query_int("limit"),
            offset=request.query_int("offset", 0),
        )

    @staticmethod
    def _csv_query(request: Request, name: str) -> list[str]:
        raw = request.query.get(name) or request.query.get(
            name.replace("-", "_")
        ) or ""
        return [part.strip() for part in raw.split(",") if part.strip()]

    def _aggregate_report(self, request: Request):
        group_by = self._csv_query(request, "group-by")
        if not group_by:
            raise BadRequest(
                "the aggregate endpoint needs ?group-by=<column>[,<column>...]"
            )
        return self.repository.aggregate_report(
            request.params["name"],
            group_by=group_by,
            metrics=self._csv_query(request, "metrics") or None,
        )

    def _aggregate_results(self, request: Request):
        group_by = self._csv_query(request, "group-by")
        if not group_by:
            raise BadRequest(
                "the aggregate endpoint needs ?group-by=<column>[,<column>...]"
            )
        return self.repository.aggregate_results(
            group_by=group_by,
            metrics=self._csv_query(request, "metrics") or None,
            tracker=request.query.get("tracker") or None,
            workload=request.query.get("workload") or None,
            attack=request.query.get("attack") or None,
            nrh=request.query_int("nrh"),
            code_version=request.query.get("code_version") or None,
        )

    def _metrics_keys(self, request: Request):
        return {"keys": self.repository.metrics_keys()}

    def _metrics(self, request: Request):
        return self.repository.metrics(
            request.params["key"],
            metric=request.query.get("metric") or None,
        )

    def _workers(self, request: Request):
        if self.pool is None:
            return {
                "workers": [],
                "queued_campaigns": [],
                "queue_depth": 0,
                "drain": "external",
            }
        return {**self.pool.snapshot(), "drain": "in-process"}


# --------------------------------------------------------------------------- #
# Server plumbing
# --------------------------------------------------------------------------- #


class ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """One thread per request; daemonic so shutdown never hangs on a poll."""

    daemon_threads = True


class _QuietRequestHandler(WSGIRequestHandler):
    """Route per-request access lines through logging instead of stderr."""

    def log_message(self, format, *args):   # noqa: A002 - wsgiref signature
        _LOG.debug("%s %s", self.address_string(), format % args)


def make_service_server(app: ServiceApp, host: str, port: int):
    """A ready-to-``serve_forever`` threading WSGI server for the app."""
    return make_server(
        host,
        port,
        app,
        server_class=ThreadingWSGIServer,
        handler_class=_QuietRequestHandler,
    )
