"""Structured JSON errors for the sweep service.

Every failure a client can cause maps to one :class:`ApiError` subclass; the
WSGI app converts raised errors into a JSON body of the shape

.. code-block:: json

    {"error": {"status": 404, "code": "not_found", "message": "..."}}

so clients never have to parse prose out of an HTML error page.  Unexpected
server-side exceptions become a generic 500 with the details kept on the
server log, not the wire.
"""

from __future__ import annotations

#: HTTP status -> reason phrase for the statuses the service emits.
REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ApiError(Exception):
    """A client-visible failure with an HTTP status and a stable code."""

    status = 500
    code = "internal_error"

    def __init__(self, message: str, **details):
        super().__init__(message)
        self.message = message
        #: Extra JSON-serializable fields merged into the error document
        #: (e.g. ``retry_after`` on 429, ``campaign`` on 409).
        self.details = details

    def document(self) -> dict:
        error = {
            "status": self.status,
            "code": self.code,
            "message": self.message,
        }
        error.update(self.details)
        return {"error": error}


class BadRequest(ApiError):
    """Malformed request: bad JSON, unknown field, invalid suite."""

    status = 400
    code = "bad_request"


class NotFound(ApiError):
    """No such route, campaign, or stored run."""

    status = 404
    code = "not_found"


class MethodNotAllowed(ApiError):
    """The path exists but not under this HTTP method."""

    status = 405
    code = "method_not_allowed"


class Conflict(ApiError):
    """A named campaign already exists with a different scenario set."""

    status = 409
    code = "conflict"


class PayloadTooLarge(ApiError):
    """The request body exceeds the configured limit."""

    status = 413
    code = "payload_too_large"


class RateLimited(ApiError):
    """The client exhausted its token bucket; retry after a delay."""

    status = 429
    code = "rate_limited"
