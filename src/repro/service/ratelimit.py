"""Token-bucket rate limiting, one bucket per client address.

Each client gets a bucket of ``burst`` tokens refilled at ``rate`` tokens
per second; every request spends one token, and an empty bucket is a 429
with a ``Retry-After`` hint of how long until the next token lands.  The
clock is injectable so refill behaviour is unit-testable without sleeping,
mirroring the warehouse lease machinery.

A ``rate`` of zero (the ``serve --rate-limit 0`` default) disables limiting
entirely -- no buckets are kept, every request passes.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

#: Buckets idle this long are dropped (a fresh full bucket replaces them on
#: the next request), so a long-lived service scanning many one-shot clients
#: does not grow without bound.  Checked lazily on acquire; no background
#: thread.
_PRUNE_AFTER_SECONDS = 300.0


class RateLimiter:
    """Thread-safe per-key token buckets.

    ``acquire(key)`` returns ``(allowed, retry_after_seconds)``;
    ``retry_after_seconds`` is 0.0 whenever the request is allowed.
    """

    def __init__(
        self,
        rate: float,
        burst: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.rate = float(rate)
        self.burst = (
            max(1, int(burst if burst is not None else rate))
            if self.rate > 0
            else 0
        )
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, list[float]] = {}   # key -> [tokens, last]
        self._last_prune = 0.0

    @property
    def enabled(self) -> bool:
        return self.rate > 0

    def acquire(self, key: str) -> tuple[bool, float]:
        if not self.enabled:
            return True, 0.0
        now = self._clock()
        with self._lock:
            self._prune(now)
            bucket = self._buckets.setdefault(key, [float(self.burst), now])
            tokens, last = bucket
            tokens = min(float(self.burst), tokens + (now - last) * self.rate)
            if tokens >= 1.0:
                bucket[:] = [tokens - 1.0, now]
                return True, 0.0
            bucket[:] = [tokens, now]
            return False, (1.0 - tokens) / self.rate

    def _prune(self, now: float) -> None:
        if now - self._last_prune < _PRUNE_AFTER_SECONDS:
            return
        self._last_prune = now
        stale = [
            key
            for key, (_, last) in self._buckets.items()
            if now - last >= _PRUNE_AFTER_SECONDS
        ]
        for key in stale:
            del self._buckets[key]
