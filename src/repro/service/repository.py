"""Repository over the warehouse for the sweep service.

The service's request handlers never touch :class:`SqliteStore` directly;
this repository wraps the store/campaign/query/worker layers behind the
operations the endpoints need, and owns the connection discipline: every
operation opens a *fresh* store handle on the warehouse path and closes it
when done.  SQLite connections must not cross threads, and the threading
WSGI server handles each request wherever it pleases -- short-lived handles
sidestep the whole question (WAL mode plus the busy timeout make concurrent
open/read/write across handles safe, exactly as the multi-process workers
already rely on).

Submission is idempotent by construction: the suite compiles to a manifest
whose entries carry content-hash keys, and :meth:`submit` persists it with
the store's first-writer-wins ``create_campaign``.  A duplicate POST --
same name, same keys -- adopts the stored manifest; the same name over a
*different* scenario set is a 409, never a silent manifest replacement.
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager

from repro.scenarios import parse_suite
from repro.sim.sweep import ScenarioSpec
from repro.store import (
    aggregate_rows,
    build_manifest,
    campaign_report,
    campaign_status,
    lease_document,
    open_store,
    query_rows,
    report_document,
    status_document,
)
from repro.store.campaign import _manifest_keys, load_manifest
from repro.service.errors import BadRequest, Conflict, NotFound

_LOG = logging.getLogger("repro.service")


class SubmitResult:
    """What one suite submission did (consumed by the app and the pool)."""

    def __init__(
        self,
        name: str,
        specs: list[ScenarioSpec],
        created: bool,
        status: dict,
    ):
        self.name = name
        self.specs = specs
        self.created = created
        self.status = status


class CampaignRepository:
    """All warehouse operations the service exposes, by campaign name."""

    def __init__(self, target: str | os.PathLike):
        self.target = str(target)
        # Fail at construction, not first request: open once to validate the
        # path and run any pending schema migration.
        store = open_store(self.target)
        if store is None:
            raise ValueError("the service needs a store path, '' disables it")
        try:
            self.supports_leases = bool(
                getattr(store, "supports_leases", False)
            )
        finally:
            store.close()

    @contextmanager
    def _store(self):
        store = open_store(self.target)
        try:
            yield store
        finally:
            store.close()

    # -- submission ----------------------------------------------------- #

    def compile_suite(
        self, document: object, name: str | None = None
    ) -> tuple[str, list[ScenarioSpec], object]:
        """Validate a suite document against the scenario catalog.

        Returns ``(campaign_name, specs, suite)``; every validation failure
        -- wrong shape, unknown family, bad parameters -- surfaces as a 400
        carrying the catalog's own message.
        """
        try:
            suite = parse_suite(document, name=name or "suite")
            specs = suite.compile()
        except ValueError as error:
            raise BadRequest(str(error)) from None
        return (name or suite.name), specs, suite

    def submit(self, document: object, name: str | None = None) -> SubmitResult:
        """Create (or adopt) a campaign from a suite document.

        Concurrent submitters of the same suite all converge on one stored
        manifest -- ``create_campaign`` is atomic first-writer-wins -- and
        every response reports the same campaign.
        """
        campaign_name, specs, suite = self.compile_suite(document, name=name)
        try:
            manifest = build_manifest(
                campaign_name,
                specs,
                source="service",
                description=suite.description,
            )
        except ValueError as error:
            raise BadRequest(str(error)) from None
        with self._store() as store:
            stored, created = store.create_campaign(campaign_name, manifest)
            if not created and _manifest_keys(stored) != _manifest_keys(manifest):
                raise Conflict(
                    f"campaign {campaign_name!r} already exists with a "
                    "different scenario set (saved under code version "
                    f"{stored.get('code_version')!r}); submit under a new "
                    "name, or delete the old campaign first",
                    campaign=campaign_name,
                )
            status = status_document(campaign_status(store, campaign_name))
        _LOG.info(
            "submit campaign %r: %d scenario(s), %s",
            campaign_name, len(specs), "created" if created else "existing",
        )
        return SubmitResult(campaign_name, specs, created, status)

    # -- inspection ----------------------------------------------------- #

    def campaign_names(self) -> tuple[str, ...]:
        with self._store() as store:
            return store.campaign_names()

    def status(self, name: str) -> dict:
        with self._store() as store:
            try:
                return status_document(campaign_status(store, name))
            except ValueError as error:
                raise NotFound(str(error)) from None

    def leases(self, name: str) -> dict:
        with self._store() as store:
            try:
                load_manifest(store, name)
            except ValueError as error:
                raise NotFound(str(error)) from None
            if not self.supports_leases:
                return lease_document([], None)
            return lease_document(
                store.lease_rows(name), store.lease_summary(name)
            )

    def report(self, name: str, offset: int = 0, limit: int | None = None) -> dict:
        with self._store() as store:
            try:
                report = campaign_report(store, name)
            except ValueError as error:
                raise NotFound(str(error)) from None
        return report_document(report, offset=offset, limit=limit)

    # -- results and metrics -------------------------------------------- #

    def results(
        self,
        tracker: str | None = None,
        workload: str | None = None,
        attack: str | None = None,
        nrh: int | None = None,
        code_version: str | None = None,
        limit: int | None = None,
        offset: int = 0,
    ) -> dict:
        """One page of flattened result rows, plus the cursor to the next.

        The rows are exactly :func:`repro.store.query_rows` over the same
        warehouse -- stable key order, so ``offset`` pages never skip or
        repeat a row while the store only grows.
        """
        offset = max(0, int(offset))
        with self._store() as store:
            rows = query_rows(
                store,
                tracker=tracker,
                workload=workload,
                attack=attack,
                nrh=nrh,
                code_version=code_version,
                limit=limit,
                offset=offset,
            )
        next_offset = offset + len(rows)
        has_more = limit is not None and len(rows) == limit and limit > 0
        return {
            "rows": rows,
            "offset": offset,
            "limit": limit,
            "returned": len(rows),
            "next_offset": next_offset if has_more else None,
        }

    #: Default summary metrics for campaign-report aggregation (the report
    #: rows carry the paper's headline metrics, not the raw-run columns).
    REPORT_AGGREGATE_METRICS = (
        "normalized_performance",
        "slowdown_percent",
        "mitigations_issued",
        "dram_activations",
        "energy_overhead_percent",
        "elapsed_seconds",
    )

    def aggregate_report(
        self,
        name: str,
        group_by: list[str],
        metrics: list[str] | None = None,
    ) -> dict:
        """Server-side grouped summary of one campaign's report rows."""
        with self._store() as store:
            try:
                report = campaign_report(store, name)
            except ValueError as error:
                raise NotFound(str(error)) from None
        try:
            rows = aggregate_rows(
                report["rows"],
                group_by,
                metrics or self.REPORT_AGGREGATE_METRICS,
            )
        except ValueError as error:
            raise BadRequest(str(error)) from None
        return {
            "campaign": report["campaign"],
            "group_by": list(group_by),
            "rows": rows,
            "source_rows": len(report["rows"]),
            "incomplete_entries": report["incomplete_entries"],
        }

    def aggregate_results(
        self,
        group_by: list[str],
        metrics: list[str] | None = None,
        tracker: str | None = None,
        workload: str | None = None,
        attack: str | None = None,
        nrh: int | None = None,
        code_version: str | None = None,
    ) -> dict:
        """Grouped summary over every stored run matching the filters.

        This is the server-side counterpart of ``results --group-by``: the
        grouping runs next to the warehouse, so clients receive one summary
        row per group instead of paging every raw row over the wire.
        """
        with self._store() as store:
            rows = query_rows(
                store,
                tracker=tracker,
                workload=workload,
                attack=attack,
                nrh=nrh,
                code_version=code_version,
            )
        try:
            aggregated = (
                aggregate_rows(rows, group_by, metrics)
                if metrics
                else aggregate_rows(rows, group_by)
            )
        except ValueError as error:
            raise BadRequest(str(error)) from None
        return {
            "group_by": list(group_by),
            "rows": aggregated,
            "source_rows": len(rows),
        }

    def metrics_keys(self) -> list[str]:
        with self._store() as store:
            return sorted(store.metrics_keys())

    def metrics(self, key_prefix: str, metric: str | None = None) -> dict:
        """Metrics time-series of one run, addressed by unique key prefix."""
        with self._store() as store:
            keys = sorted(store.metrics_keys())
            matches = [key for key in keys if key.startswith(key_prefix)]
            if len(matches) != 1:
                problem = (
                    f"{len(matches)} stored runs match"
                    if matches
                    else "no stored metrics match"
                )
                raise NotFound(
                    f"{problem} key prefix {key_prefix!r}",
                    matches=matches[:10],
                )
            series = store.get_metrics(matches[0], metric=metric)
        return {
            "key": matches[0],
            "series": {
                name: [[t_ns, value] for t_ns, value in points]
                for name, points in sorted(series.items())
            },
        }
