"""Thin stdlib HTTP client for the sweep service.

Wraps :mod:`urllib.request` for the CLI's ``submit`` / ``status`` /
``results`` verbs and the tests; every method returns the decoded JSON
document, and non-2xx responses raise :class:`ServiceError` carrying the
service's structured error body.
"""

from __future__ import annotations

import json
import time
from urllib.error import HTTPError, URLError
from urllib.parse import urlencode
from urllib.request import Request as UrlRequest
from urllib.request import urlopen


class ServiceError(RuntimeError):
    """A non-2xx response; carries the parsed error document when present."""

    def __init__(self, status: int, document: dict | None, message: str):
        super().__init__(message)
        self.status = status
        self.document = document or {}

    @classmethod
    def from_http_error(cls, error: HTTPError) -> "ServiceError":
        document = None
        message = f"HTTP {error.code}"
        try:
            document = json.loads(error.read().decode("utf-8"))
            message = document["error"]["message"]
        except Exception:
            pass
        return cls(error.code, document, f"service error {error.code}: {message}")


class ServiceClient:
    """JSON requests against one service base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # -- plumbing ------------------------------------------------------- #

    def request(
        self,
        method: str,
        path: str,
        query: dict | None = None,
        body: object = None,
    ) -> dict:
        query = {
            key: value
            for key, value in (query or {}).items()
            if value is not None
        }
        url = self.base_url + path
        if query:
            url += "?" + urlencode(query)
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            with urlopen(
                UrlRequest(url, data=data, headers=headers, method=method),
                timeout=self.timeout,
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except HTTPError as error:
            raise ServiceError.from_http_error(error) from None
        except URLError as error:
            raise ServiceError(
                0, None, f"cannot reach the service at {self.base_url}: "
                f"{error.reason}"
            ) from None

    # -- endpoints ------------------------------------------------------ #

    def health(self) -> dict:
        return self.request("GET", "/api/v1/health")

    def submit(self, suite_document: dict, name: str | None = None) -> dict:
        return self.request(
            "POST", "/api/v1/campaigns", query={"name": name},
            body=suite_document,
        )

    def campaigns(self) -> dict:
        return self.request("GET", "/api/v1/campaigns")

    def status(self, name: str) -> dict:
        return self.request("GET", f"/api/v1/campaigns/{name}")

    def leases(self, name: str) -> dict:
        return self.request("GET", f"/api/v1/campaigns/{name}/leases")

    def report(
        self, name: str, offset: int = 0, limit: int | None = None
    ) -> dict:
        return self.request(
            "GET", f"/api/v1/campaigns/{name}/report",
            query={"offset": offset, "limit": limit},
        )

    def results(
        self,
        tracker: str | None = None,
        workload: str | None = None,
        attack: str | None = None,
        nrh: int | None = None,
        code_version: str | None = None,
        limit: int | None = None,
        offset: int = 0,
    ) -> dict:
        return self.request(
            "GET", "/api/v1/results",
            query={
                "tracker": tracker,
                "workload": workload,
                "attack": attack,
                "nrh": nrh,
                "code_version": code_version,
                "limit": limit,
                "offset": offset,
            },
        )

    def aggregate_report(
        self,
        name: str,
        group_by: list[str],
        metrics: list[str] | None = None,
    ) -> dict:
        return self.request(
            "GET", f"/api/v1/campaigns/{name}/aggregate",
            query={
                "group-by": ",".join(group_by),
                "metrics": ",".join(metrics) if metrics else None,
            },
        )

    def aggregate_results(
        self,
        group_by: list[str],
        metrics: list[str] | None = None,
        **filters,
    ) -> dict:
        """One summary row per group, aggregated inside the service."""
        return self.request(
            "GET", "/api/v1/results/aggregate",
            query={
                "group-by": ",".join(group_by),
                "metrics": ",".join(metrics) if metrics else None,
                **filters,
            },
        )

    def all_results(self, page_size: int = 500, **filters) -> list[dict]:
        """Every matching row, fetched page by page through the cursor."""
        rows: list[dict] = []
        offset = 0
        while True:
            page = self.results(limit=page_size, offset=offset, **filters)
            rows.extend(page["rows"])
            if page["next_offset"] is None:
                return rows
            offset = page["next_offset"]

    def workers(self) -> dict:
        return self.request("GET", "/api/v1/workers")

    def wait_complete(
        self,
        name: str,
        timeout: float = 600.0,
        interval: float = 1.0,
        progress=None,
    ) -> dict:
        """Poll status until the campaign completes; raises on timeout."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(name)
            if progress is not None:
                progress(status)
            if status["state"] == "complete":
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0, status,
                    f"campaign {name!r} did not complete within {timeout:.0f}s "
                    f"({status['percent']:.0f}% done)",
                )
            time.sleep(interval)
