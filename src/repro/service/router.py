"""Tiny method + path-pattern router for the WSGI app.

Routes are ``(method, pattern, handler)`` triples; patterns are plain paths
with ``{name}`` placeholders that match one path segment and land in
``Request.params``.  Matching is exact (no prefix routing): an unknown path
is a 404, a known path under the wrong method a 405 listing the allowed
methods -- the distinction keeps client mistakes diagnosable from the
structured error alone.
"""

from __future__ import annotations

import json
import re
from collections.abc import Callable
from dataclasses import dataclass, field
from urllib.parse import parse_qs

from repro.service.errors import BadRequest, MethodNotAllowed, NotFound

_PLACEHOLDER = re.compile(r"\{([a-z_]+)\}")


def compile_pattern(pattern: str) -> re.Pattern:
    """``/campaigns/{name}`` -> a regex with one named group per placeholder."""
    parts = []
    position = 0
    for match in _PLACEHOLDER.finditer(pattern):
        parts.append(re.escape(pattern[position:match.start()]))
        parts.append(f"(?P<{match.group(1)}>[^/]+)")
        position = match.end()
    parts.append(re.escape(pattern[position:]))
    return re.compile("^" + "".join(parts) + "$")


@dataclass(frozen=True)
class Request:
    """Everything a handler needs, parsed once by the app."""

    method: str
    path: str
    params: dict = field(default_factory=dict)   # path placeholders
    query: dict = field(default_factory=dict)    # first value per query key
    body: object = None                          # parsed JSON body, or None
    remote_addr: str = ""

    def query_int(self, name: str, default: int | None = None) -> int | None:
        """An integer query parameter, or a 400 naming the bad value."""
        raw = self.query.get(name)
        if raw is None or raw == "":
            return default
        try:
            return int(raw)
        except ValueError:
            raise BadRequest(
                f"query parameter {name!r} must be an integer, got {raw!r}"
            ) from None


def parse_query(query_string: str) -> dict:
    """First value per key; repeated keys keep the first occurrence."""
    parsed = parse_qs(query_string or "", keep_blank_values=True)
    return {key: values[0] for key, values in parsed.items()}


class Router:
    """Ordered route table; first match wins."""

    def __init__(self):
        self._routes: list[tuple[str, re.Pattern, Callable]] = []

    def add(self, method: str, pattern: str, handler: Callable) -> None:
        self._routes.append((method.upper(), compile_pattern(pattern), handler))

    def get(self, pattern: str, handler: Callable) -> None:
        self.add("GET", pattern, handler)

    def post(self, pattern: str, handler: Callable) -> None:
        self.add("POST", pattern, handler)

    def dispatch(self, request: Request):
        """The matching handler's result; raises 404/405 ApiErrors."""
        allowed: list[str] = []
        for method, pattern, handler in self._routes:
            match = pattern.match(request.path)
            if match is None:
                continue
            if method != request.method:
                allowed.append(method)
                continue
            bound = Request(
                method=request.method,
                path=request.path,
                params=match.groupdict(),
                query=request.query,
                body=request.body,
                remote_addr=request.remote_addr,
            )
            return handler(bound)
        if allowed:
            raise MethodNotAllowed(
                f"{request.method} not allowed on {request.path}; "
                f"allowed: {', '.join(sorted(set(allowed)))}",
                allowed=sorted(set(allowed)),
            )
        raise NotFound(f"no route for {request.path}")


def parse_json_body(raw: bytes) -> object:
    """Decode a request body as JSON; empty bodies are ``None``."""
    if not raw:
        return None
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise BadRequest(f"request body is not valid JSON: {error}") from None
