"""Sweep-as-a-service: a REST + job-queue front end over the warehouse.

This package turns the repo's campaign machinery into an operable service:
clients POST scenario suites to a JSON API, accepted suites become named
campaigns in the SQLite warehouse, and an in-process pool of
:class:`~repro.store.worker.CampaignWorker` threads (or any external
``campaign worker`` fleet pointed at the same store) drains them through
the PR 8 lease protocol.  Everything is stdlib -- ``wsgiref`` plus a
threading server -- so tier-1 stays dependency-free.

Layers, one module each:

* :mod:`repro.service.app` -- the WSGI app, endpoint handlers, server glue.
* :mod:`repro.service.router` -- method + path-pattern routing.
* :mod:`repro.service.repository` -- the store facade (validation,
  idempotent submission, status/leases/report/results/metrics reads).
* :mod:`repro.service.jobs` -- the in-process drain pool.
* :mod:`repro.service.ratelimit` -- per-client token buckets.
* :mod:`repro.service.errors` -- the structured JSON error hierarchy.
* :mod:`repro.service.client` -- the stdlib HTTP client the CLI verbs use.

See ``docs/service.md`` for the endpoint reference and deployment notes.
"""

from repro.service.app import (
    ServiceApp,
    ThreadingWSGIServer,
    make_service_server,
)
from repro.service.client import ServiceClient, ServiceError
from repro.service.errors import (
    ApiError,
    BadRequest,
    Conflict,
    MethodNotAllowed,
    NotFound,
    PayloadTooLarge,
    RateLimited,
)
from repro.service.jobs import WorkerPool
from repro.service.ratelimit import RateLimiter
from repro.service.repository import CampaignRepository, SubmitResult

__all__ = [
    "ServiceApp",
    "ThreadingWSGIServer",
    "make_service_server",
    "ServiceClient",
    "ServiceError",
    "ApiError",
    "BadRequest",
    "Conflict",
    "MethodNotAllowed",
    "NotFound",
    "PayloadTooLarge",
    "RateLimited",
    "WorkerPool",
    "RateLimiter",
    "CampaignRepository",
    "SubmitResult",
]
