"""System configuration for the DAPPER reproduction.

This module defines the configuration objects shared by every layer of the
simulator: DRAM organization and timing (Table I of the paper), the processor
and cache models, and the RowHammer mitigation parameters (threshold,
blast radius, mitigation command).

All times are expressed in nanoseconds unless the name says otherwise.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from enum import Enum


class MitigationCommand(str, Enum):
    """Mitigative-refresh command used by the memory controller.

    ``VRR``      Victim Row Refresh: refreshes the victim rows adjacent to one
                 aggressor row on a per-bank basis (default in the paper).
    ``DRFM_SB``  Same-Bank Directed Refresh Management: refreshes victims of a
                 captured aggressor but blocks the same bank across all bank
                 groups for 240 ns (JEDEC DDR5).
    ``RFM_SB``   Same-Bank Refresh Management: 190 ns blocking, used by the
                 PrIDE comparison.
    """

    VRR = "VRR"
    DRFM_SB = "DRFMsb"
    RFM_SB = "RFMsb"


@dataclass(frozen=True)
class DRAMTimings:
    """DDR5-6400 timing parameters (Table I).

    The request-level simulator only needs the coarse parameters that govern
    bandwidth and blocking: row-cycle time, activate-to-activate distances,
    column latency, the refresh cadence, and the durations of the mitigation
    commands.
    """

    tck_ns: float = 0.3125          # 3.2 GHz bus clock (6400 MT/s)
    trcd_ns: float = 16.0           # ACT -> column command
    trp_ns: float = 16.0            # PRE -> ACT
    tcl_ns: float = 16.0            # column command -> data
    trc_ns: float = 48.0            # ACT -> ACT, same bank
    trrd_s_ns: float = 2.5          # ACT -> ACT, different bank group
    trrd_l_ns: float = 5.0          # ACT -> ACT, same bank group
    twr_ns: float = 30.0            # write recovery
    tburst_ns: float = 1.25         # 64B burst on the data bus
    trfc_ns: float = 295.0          # all-bank auto refresh cycle
    trefi_ns: float = 3900.0        # auto refresh interval
    trefw_ns: float = 32_000_000.0  # refresh window (32 ms)

    # Mitigation command durations.
    vrr_per_victim_ns: float = 60.0      # per victim row refreshed by VRR
    drfm_sb_ns: float = 240.0            # Same-Bank DRFM (blast radius 2)
    rfm_sb_ns: float = 190.0             # Same-Bank RFM
    # Full-structure reset (CoMeT / ABACUS early reset) refreshes every row of
    # the rank or channel.  The paper reports ~2.4 ms of blocked DRAM per
    # reset; we charge a per-row cost chosen to land in that range for a
    # 64K-row bank.
    reset_refresh_per_row_ns: float = 37.0

    def scaled_refresh_window(self, scale: float) -> "DRAMTimings":
        """Return a copy with ``trefw_ns`` multiplied by ``scale``.

        Short simulation windows (benchmarks) use a scaled refresh window so
        that periodic structure resets and re-keying events still occur a
        meaningful number of times inside the simulated interval.
        """
        return dataclasses.replace(self, trefw_ns=self.trefw_ns * scale)


@dataclass(frozen=True)
class DRAMOrganization:
    """Physical organization of the DRAM system (Table I)."""

    channels: int = 2
    ranks_per_channel: int = 2
    bank_groups_per_rank: int = 8
    banks_per_group: int = 4
    rows_per_bank: int = 64 * 1024
    row_size_bytes: int = 8 * 1024
    line_size_bytes: int = 64

    @property
    def banks_per_rank(self) -> int:
        return self.bank_groups_per_rank * self.banks_per_group

    @property
    def banks_per_channel(self) -> int:
        return self.banks_per_rank * self.ranks_per_channel

    @property
    def total_banks(self) -> int:
        return self.banks_per_channel * self.channels

    @property
    def rows_per_rank(self) -> int:
        return self.banks_per_rank * self.rows_per_bank

    @property
    def rows_per_channel(self) -> int:
        return self.rows_per_rank * self.ranks_per_channel

    @property
    def total_rows(self) -> int:
        return self.rows_per_channel * self.channels

    @property
    def lines_per_row(self) -> int:
        return self.row_size_bytes // self.line_size_bytes

    @property
    def bytes_per_rank(self) -> int:
        return self.rows_per_rank * self.row_size_bytes

    @property
    def bytes_per_channel(self) -> int:
        return self.bytes_per_rank * self.ranks_per_channel

    @property
    def total_bytes(self) -> int:
        return self.bytes_per_channel * self.channels

    @property
    def row_bits(self) -> int:
        return (self.rows_per_bank - 1).bit_length()

    @property
    def rank_row_bits(self) -> int:
        """Bits needed to index a row inside one rank (the DAPPER hash width)."""
        return (self.rows_per_rank - 1).bit_length()


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core abstraction (Table I)."""

    num_cores: int = 4
    freq_ghz: float = 4.0
    issue_width: int = 4
    rob_entries: int = 128
    max_outstanding_misses: int = 8

    @property
    def peak_instructions_per_ns(self) -> float:
        return self.freq_ghz * self.issue_width


@dataclass(frozen=True)
class CacheConfig:
    """Shared last-level cache (Table I)."""

    size_bytes: int = 8 * 1024 * 1024
    ways: int = 16
    line_size_bytes: int = 64
    hit_latency_ns: float = 12.0

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_size_bytes)


@dataclass(frozen=True)
class RowHammerConfig:
    """RowHammer threat and mitigation parameters."""

    nrh: int = 500
    blast_radius: int = 1
    mitigation_command: MitigationCommand = MitigationCommand.VRR

    @property
    def mitigation_threshold(self) -> int:
        """The tracker mitigation threshold (half of the RowHammer threshold)."""
        return max(1, self.nrh // 2)


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration bundling every subsystem."""

    dram: DRAMOrganization = field(default_factory=DRAMOrganization)
    timings: DRAMTimings = field(default_factory=DRAMTimings)
    cores: CoreConfig = field(default_factory=CoreConfig)
    llc: CacheConfig = field(default_factory=CacheConfig)
    rowhammer: RowHammerConfig = field(default_factory=RowHammerConfig)
    seed: int = 0xDA99E2

    def with_nrh(self, nrh: int) -> "SystemConfig":
        """Return a copy of the configuration with a different RowHammer threshold."""
        return dataclasses.replace(
            self, rowhammer=dataclasses.replace(self.rowhammer, nrh=nrh)
        )

    def with_mitigation(
        self,
        command: MitigationCommand,
        blast_radius: int | None = None,
    ) -> "SystemConfig":
        """Return a copy using a different mitigation command / blast radius."""
        rh = dataclasses.replace(
            self.rowhammer,
            mitigation_command=command,
            blast_radius=self.rowhammer.blast_radius
            if blast_radius is None
            else blast_radius,
        )
        return dataclasses.replace(self, rowhammer=rh)

    def with_refresh_window_scale(self, scale: float) -> "SystemConfig":
        """Return a copy with a scaled refresh window (see ``DRAMTimings``)."""
        return dataclasses.replace(
            self, timings=self.timings.scaled_refresh_window(scale)
        )

    def with_llc_size(self, size_bytes: int) -> "SystemConfig":
        """Return a copy with a different shared LLC capacity."""
        return dataclasses.replace(
            self, llc=dataclasses.replace(self.llc, size_bytes=size_bytes)
        )

    def with_seed(self, seed: int) -> "SystemConfig":
        return dataclasses.replace(self, seed=seed)


def baseline_config(nrh: int = 500, seed: int = 0xDA99E2) -> SystemConfig:
    """The paper's baseline system (Table I).

    Four out-of-order cores, an 8MB 16-way shared LLC, two DDR5-6400 channels
    each with a 32GB dual-rank DIMM, and a default RowHammer threshold of 500.
    """
    return SystemConfig(
        rowhammer=RowHammerConfig(nrh=nrh),
        seed=seed,
    )


def reduced_row_config(
    nrh: int = 500,
    rows_per_bank: int = 4096,
    seed: int = 0xDA99E2,
) -> SystemConfig:
    """A baseline system with fewer rows per bank.

    Attacks that must walk every row of a rank (the mapping-agnostic streaming
    attack of Section V-E) have a cycle proportional to the number of rows;
    this preset shrinks the row space so those experiments complete within a
    tractable simulation window while keeping every other parameter at its
    Table I value.  See EXPERIMENTS.md for where it is used.
    """
    return SystemConfig(
        dram=DRAMOrganization(rows_per_bank=rows_per_bank),
        rowhammer=RowHammerConfig(nrh=nrh),
        seed=seed,
    )


def large_system_config(
    per_core_llc_mb: int = 2,
    nrh: int = 500,
    seed: int = 0xDA99E2,
) -> SystemConfig:
    """The scaled-up system used by Figure 5.

    Eight memory channels with 64GB per channel (512GB total) and a per-core
    LLC size swept from 2MB to 5MB on the four-core processor.
    """
    dram = DRAMOrganization(channels=8, ranks_per_channel=4)
    cores = CoreConfig()
    llc = CacheConfig(size_bytes=per_core_llc_mb * 1024 * 1024 * cores.num_cores)
    return SystemConfig(
        dram=dram,
        cores=cores,
        llc=llc,
        rowhammer=RowHammerConfig(nrh=nrh),
        seed=seed,
    )
