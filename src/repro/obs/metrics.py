"""Metrics time-series sampling in the simulated-time (cycle) domain.

:class:`MetricsSampler` is an :class:`~repro.obs.probe.EventSink` that
samples a fixed registry of gauges every ``interval_ns`` of *simulated*
time and accumulates ``(t_ns, value)`` series.  The gauges are captured at
:meth:`bind` time as bound callables over the live stats objects, so each
sample is a handful of attribute reads -- no dict lookups on the hot path.

Recorded gauges:

``llc.hit_rate`` / ``llc.occupancy``
    Shared-LLC hit rate and fraction of data ways holding a line.
``mc.requests`` / ``mc.throttled_requests`` / ``mc.throttle_time_ns`` /
``mc.mitigation_refreshes``
    Memory-controller counters (cumulative).
``dram.activations``
    Row activations issued so far.
``tracker.activations_observed`` / ``tracker.mitigations_issued``
    Tracker counters (cumulative).
``tracker.table_occupancy``
    Fill fraction of the tracker's summary table, for trackers that
    report one (see ``RowHammerTracker.table_occupancy``).

The series persist to the warehouse ``metrics`` table (schema v3) via
``ResultStore.put_metrics`` and come back out through ``store metrics`` /
``get_metrics``.
"""

from __future__ import annotations

from repro.obs.probe import EventSink


class MetricsSampler(EventSink):
    """Sample simulator gauges on a fixed simulated-time grid."""

    def __init__(self, interval_ns: float = 100_000.0):
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self.interval_ns = float(interval_ns)
        self.series: dict[str, list[tuple[float, float]]] = {}
        self._gauges: tuple = ()
        self._next_ns = self.interval_ns
        self._last_ns = 0.0

    def bind(self, simulator) -> None:
        llc = simulator.llc
        llc_stats = llc.stats
        cstats = simulator.controller.stats
        dram_stats = simulator.dram.stats
        tracker = simulator.tracker
        tstats = tracker.stats
        gauges = [
            ("llc.hit_rate", lambda: llc_stats.hit_rate),
            ("llc.occupancy", llc.occupancy),
            ("mc.requests", lambda: float(cstats.requests)),
            ("mc.throttled_requests", lambda: float(cstats.throttled_requests)),
            ("mc.throttle_time_ns", lambda: cstats.throttle_time_ns),
            ("mc.mitigation_refreshes", lambda: float(cstats.mitigation_refreshes)),
            ("dram.activations", lambda: float(dram_stats.activations)),
            ("tracker.activations_observed", lambda: float(tstats.activations_observed)),
            ("tracker.mitigations_issued", lambda: float(tstats.mitigations_issued)),
        ]
        if tracker.table_occupancy() is not None:
            gauges.append(
                ("tracker.table_occupancy", lambda: float(tracker.table_occupancy()))
            )
        self._gauges = tuple(gauges)
        self.series = {name: [] for name, _ in self._gauges}

    def on_request(self, core_id, issue_ns, completion_ns, is_write, llc_hit, bypassed):
        self._last_ns = completion_ns
        if completion_ns >= self._next_ns:
            self._sample(completion_ns)

    def _sample(self, now_ns: float) -> None:
        series = self.series
        for name, gauge in self._gauges:
            series[name].append((now_ns, float(gauge())))
        interval = self.interval_ns
        # Align the next sample to the grid so a long idle gap yields one
        # sample, not a burst of catch-up samples.
        self._next_ns = (now_ns // interval + 1.0) * interval

    def finish(self) -> None:
        # Close every series with a final sample at the simulation horizon so
        # short runs (< one interval) still produce data.  Skipped when the
        # horizon equals the last grid sample: t_ns is a primary-key column
        # in the warehouse metrics table, so timestamps must not repeat.
        if not self._gauges:
            return
        last_recorded = max(
            (points[-1][0] for points in self.series.values() if points),
            default=-1.0,
        )
        if self._last_ns > last_recorded:
            self._sample(self._last_ns)

    @property
    def samples(self) -> int:
        return sum(len(points) for points in self.series.values())

    def to_rows(self) -> list[tuple[str, float, float]]:
        """Flatten the series to ``(metric, t_ns, value)`` rows."""
        rows: list[tuple[str, float, float]] = []
        for name in sorted(self.series):
            for t_ns, value in self.series[name]:
                rows.append((name, t_ns, value))
        return rows
