"""Instrumentation probe: the event vocabulary and the fan-out hub.

The simulator, memory controller, shared LLC and trackers each carry a
``probe`` attribute that defaults to ``None``.  Every hook site in the hot
path is guarded by ``if self.probe is not None:`` so the disabled case costs
one attribute load and a pointer comparison -- nothing is allocated and no
function is called.  When a :class:`Probe` is attached, events fan out to
the sinks it was built with (a :class:`~repro.obs.trace.TraceRecorder`, a
:class:`~repro.obs.metrics.MetricsSampler`, or any other
:class:`EventSink`).

Instrumented runs stay bit-identical to uninstrumented runs: every sink
method is read-only with respect to simulation state, and the probe is
attached only after LLC warm-up so the warm-state memo is unperturbed.
The batched engine routes serviced requests through the scalar
``_service_addr`` path while a probe is attached; that path is
arithmetic-identical to the inlined fast paths (pinned by the engine
parity tests), so only wall-clock changes, never results.
"""

from __future__ import annotations


class EventSink:
    """Base class for probe sinks.  Every hook is a documented no-op.

    Subclasses override the events they care about.  All ``on_*`` methods
    must treat their arguments as read-only: mutating simulation state from
    a sink would break the bit-identity guarantee.
    """

    def bind(self, simulator) -> None:
        """Called once, after warm-up, before the drain loop starts."""

    def on_request(
        self,
        core_id: int,
        issue_ns: float,
        completion_ns: float,
        is_write: bool,
        llc_hit: bool,
        bypassed: bool,
    ) -> None:
        """A request was fully serviced (LLC and/or DRAM)."""

    def on_llc_access(self, core_id: int, hit: bool, is_write: bool) -> None:
        """The shared LLC looked up one line."""

    def on_dram_access(
        self,
        bank_index: int,
        row: int,
        is_write: bool,
        completion_ns: float,
        activated: bool,
        row_hit: bool,
    ) -> None:
        """The DRAM system serviced one command."""

    def on_throttle(self, core_id: int, delay_ns: float, now_ns: float) -> None:
        """The tracker imposed a throttle delay on a request."""

    def on_mitigation(self, row_addr, now_ns: float) -> None:
        """The controller issued a victim-refresh mitigation."""

    def on_group_mitigation(self, group, now_ns: float) -> None:
        """The controller applied a row-group mitigation."""

    def on_blackout(self, blackout, now_ns: float) -> None:
        """The controller applied a structure-reset blackout."""

    def on_counter_traffic(self, reads: int, writes: int, now_ns: float) -> None:
        """A tracker response carried counter read/write DRAM traffic."""

    def on_refresh_window(self, window: int, now_ns: float) -> None:
        """A tREFW refresh-window boundary was crossed."""

    def on_tracker_insert(self, row: int, count: int, now_ns: float) -> None:
        """The tracker inserted a new row into its summary table."""

    def on_tracker_evict(self, row: int, now_ns: float) -> None:
        """The tracker evicted a row from its summary table."""

    def finish(self) -> None:
        """Called once when the simulation ends."""


class Probe(EventSink):
    """Fan-out hub attached to the simulator and its components.

    Built from up to three planes: a trace sink, a metrics sink, and a
    pipeline profiler.  The profiler is *not* an event sink -- it measures
    host wall-time around pipeline stages and is consulted directly by the
    engines and ``run_workload``.
    """

    __slots__ = ("trace", "metrics", "profiler", "_sinks")

    def __init__(self, trace=None, metrics=None, profiler=None, extra_sinks=()):
        self.trace = trace
        self.metrics = metrics
        self.profiler = profiler
        self._sinks = tuple(
            sink for sink in (trace, metrics, *extra_sinks) if sink is not None
        )

    def bind(self, simulator) -> None:
        for sink in self._sinks:
            sink.bind(simulator)

    def on_request(self, core_id, issue_ns, completion_ns, is_write, llc_hit, bypassed):
        for sink in self._sinks:
            sink.on_request(
                core_id, issue_ns, completion_ns, is_write, llc_hit, bypassed
            )

    def on_llc_access(self, core_id, hit, is_write):
        for sink in self._sinks:
            sink.on_llc_access(core_id, hit, is_write)

    def on_dram_access(self, bank_index, row, is_write, completion_ns, activated, row_hit):
        for sink in self._sinks:
            sink.on_dram_access(
                bank_index, row, is_write, completion_ns, activated, row_hit
            )

    def on_throttle(self, core_id, delay_ns, now_ns):
        for sink in self._sinks:
            sink.on_throttle(core_id, delay_ns, now_ns)

    def on_mitigation(self, row_addr, now_ns):
        for sink in self._sinks:
            sink.on_mitigation(row_addr, now_ns)

    def on_group_mitigation(self, group, now_ns):
        for sink in self._sinks:
            sink.on_group_mitigation(group, now_ns)

    def on_blackout(self, blackout, now_ns):
        for sink in self._sinks:
            sink.on_blackout(blackout, now_ns)

    def on_counter_traffic(self, reads, writes, now_ns):
        for sink in self._sinks:
            sink.on_counter_traffic(reads, writes, now_ns)

    def on_refresh_window(self, window, now_ns):
        for sink in self._sinks:
            sink.on_refresh_window(window, now_ns)

    def on_tracker_insert(self, row, count, now_ns):
        for sink in self._sinks:
            sink.on_tracker_insert(row, count, now_ns)

    def on_tracker_evict(self, row, now_ns):
        for sink in self._sinks:
            sink.on_tracker_evict(row, now_ns)

    def finish(self) -> None:
        for sink in self._sinks:
            sink.finish()
