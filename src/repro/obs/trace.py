"""Cycle-domain event tracing in the Chrome trace (Perfetto) JSON format.

:class:`TraceRecorder` is an :class:`~repro.obs.probe.EventSink` that turns
probe events into ``traceEvents`` records viewable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* each core gets its own track of ``X`` (complete) events, one per serviced
  request, spanning issue to completion and annotated with the LLC outcome;
* the memory controller track carries ``i`` (instant) events for DRAM row
  activations, throttle decisions, counter traffic and tREFW window
  crossings, plus ``X`` events spanning structure-reset blackouts;
* the tracker track carries instants for mitigations, group mitigations and
  summary-table inserts/evicts;
* ``C`` (counter) events sample the LLC hit/miss totals every
  ``counter_stride`` requests, giving Perfetto a plottable hit-rate series.

Timestamps: the simulator's cycle-domain clock is nanoseconds; Chrome trace
``ts``/``dur`` are microseconds, so everything is divided by 1000.0 (the
format accepts fractional microseconds).

The recorder caps itself at ``max_events`` records and counts the overflow
in :attr:`dropped` -- long simulations degrade gracefully instead of eating
the host's memory.
"""

from __future__ import annotations

import json

from repro.obs.probe import EventSink

#: Synthetic process id for the whole simulated machine.
PID = 1
#: Thread-track ids: controller, tracker, then one per core at 100 + core_id.
TID_CONTROLLER = 1
TID_TRACKER = 2
TID_CORE_BASE = 100


class TraceRecorder(EventSink):
    """Record probe events as Chrome-trace JSON."""

    def __init__(self, max_events: int = 1_000_000, counter_stride: int = 64):
        self.max_events = int(max_events)
        self.counter_stride = int(counter_stride)
        self.events: list[dict] = []
        self.dropped = 0
        self._cores_seen: set[int] = set()
        self._last_ns = 0.0
        self._requests = 0

    # -- helpers --------------------------------------------------------

    def _emit(self, event: dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def _instant(self, tid: int, name: str, now_ns: float, args: dict | None = None) -> None:
        event = {
            "ph": "i",
            "pid": PID,
            "tid": tid,
            "ts": now_ns / 1000.0,
            "name": name,
            "s": "t",
        }
        if args:
            event["args"] = args
        self._emit(event)

    # -- EventSink ------------------------------------------------------

    def bind(self, simulator) -> None:
        self._llc_stats = getattr(simulator.llc, "stats", None)

    def on_request(self, core_id, issue_ns, completion_ns, is_write, llc_hit, bypassed):
        self._cores_seen.add(core_id)
        self._last_ns = completion_ns
        outcome = "bypass" if bypassed else ("hit" if llc_hit else "miss")
        self._emit(
            {
                "ph": "X",
                "pid": PID,
                "tid": TID_CORE_BASE + core_id,
                "ts": issue_ns / 1000.0,
                "dur": (completion_ns - issue_ns) / 1000.0,
                "name": "write" if is_write else "read",
                "args": {"llc": outcome},
            }
        )
        self._requests += 1
        if self._requests % self.counter_stride == 0:
            stats = getattr(self, "_llc_stats", None)
            if stats is not None:
                self._emit(
                    {
                        "ph": "C",
                        "pid": PID,
                        "tid": 0,
                        "ts": completion_ns / 1000.0,
                        "name": "llc",
                        "args": {"hits": stats.hits, "misses": stats.misses},
                    }
                )

    def on_dram_access(self, bank_index, row, is_write, completion_ns, activated, row_hit):
        self._last_ns = completion_ns
        if activated:
            self._instant(
                TID_CONTROLLER,
                "ACT",
                completion_ns,
                {"bank": bank_index, "row": row},
            )

    def on_throttle(self, core_id, delay_ns, now_ns):
        self._instant(
            TID_CONTROLLER,
            "throttle",
            now_ns,
            {"core": core_id, "delay_ns": delay_ns},
        )

    def on_mitigation(self, row_addr, now_ns):
        self._instant(TID_TRACKER, "mitigation", now_ns, {"row": str(row_addr)})

    def on_group_mitigation(self, group, now_ns):
        self._instant(TID_TRACKER, "group-mitigation", now_ns)

    def on_blackout(self, blackout, now_ns):
        duration_ns = float(getattr(blackout, "duration_ns", 0.0))
        self._emit(
            {
                "ph": "X",
                "pid": PID,
                "tid": TID_CONTROLLER,
                "ts": now_ns / 1000.0,
                "dur": duration_ns / 1000.0,
                "name": "blackout",
                "args": {},
            }
        )

    def on_counter_traffic(self, reads, writes, now_ns):
        self._instant(
            TID_CONTROLLER,
            "counter-traffic",
            now_ns,
            {"reads": reads, "writes": writes},
        )

    def on_refresh_window(self, window, now_ns):
        self._instant(TID_CONTROLLER, "tREFW", now_ns, {"window": window})

    def on_tracker_insert(self, row, count, now_ns):
        self._instant(TID_TRACKER, "insert", now_ns, {"row": row, "count": count})

    def on_tracker_evict(self, row, now_ns):
        self._instant(TID_TRACKER, "evict", now_ns, {"row": row})

    # -- output ---------------------------------------------------------

    def chrome_trace(self) -> dict:
        """The full Chrome-trace JSON document."""
        metadata = [
            _thread_name(TID_CONTROLLER, "memory controller"),
            _thread_name(TID_TRACKER, "rowhammer tracker"),
        ]
        for core_id in sorted(self._cores_seen):
            metadata.append(_thread_name(TID_CORE_BASE + core_id, f"core {core_id}"))
        metadata.append(
            {
                "ph": "M",
                "pid": PID,
                "tid": 0,
                "name": "process_name",
                "args": {"name": "repro simulator"},
            }
        )
        return {
            "traceEvents": metadata + self.events,
            "displayTimeUnit": "ns",
            "otherData": {
                "dropped_events": self.dropped,
                "recorded_events": len(self.events),
            },
        }

    def write(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")


def _thread_name(tid: int, name: str) -> dict:
    return {
        "ph": "M",
        "pid": PID,
        "tid": tid,
        "name": "thread_name",
        "args": {"name": name},
    }


def validate_chrome_trace(data, schema) -> list[str]:
    """Validate ``data`` against a minimal JSON-Schema subset.

    Supports the keywords used by ``tools/trace_schema.json``: ``type``
    (object / array / string / number / integer / boolean), ``properties``,
    ``required``, ``items`` and ``enum``.  Returns a list of error strings;
    an empty list means the document conforms.  Hand-rolled so CI needs no
    third-party jsonschema dependency.
    """
    errors: list[str] = []
    _validate(data, schema, "$", errors)
    return errors


_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
}


def _validate(data, schema, path: str, errors: list[str], max_errors: int = 20) -> None:
    if len(errors) >= max_errors:
        return
    expected = schema.get("type")
    if expected is not None:
        if expected == "number":
            ok = isinstance(data, (int, float)) and not isinstance(data, bool)
        elif expected == "integer":
            ok = isinstance(data, int) and not isinstance(data, bool)
        else:
            ok = isinstance(data, _TYPES.get(expected, object))
        if not ok:
            errors.append(f"{path}: expected {expected}, got {type(data).__name__}")
            return
    if "enum" in schema and data not in schema["enum"]:
        errors.append(f"{path}: {data!r} not in {schema['enum']}")
        return
    if isinstance(data, dict):
        for name in schema.get("required", ()):
            if name not in data:
                errors.append(f"{path}: missing required property {name!r}")
        for name, subschema in schema.get("properties", {}).items():
            if name in data:
                _validate(data[name], subschema, f"{path}.{name}", errors, max_errors)
    if isinstance(data, list) and "items" in schema:
        for index, item in enumerate(data):
            if len(errors) >= max_errors:
                return
            _validate(item, schema["items"], f"{path}[{index}]", errors, max_errors)
