"""Zero-overhead instrumentation: tracing, metrics and pipeline profiling.

Three planes over one probe (see docs/observability.md):

* :class:`TraceRecorder` -- cycle-domain event tracing to Chrome-trace /
  Perfetto JSON, one track per component.
* :class:`MetricsSampler` -- counter/gauge time-series on a fixed
  simulated-time grid, persisted to the warehouse ``metrics`` table.
* :class:`PipelineProfiler` -- host wall-time per pipeline stage
  (generation / warm-up / drain / mitigation scan / collect).

Attach any combination through a :class:`Probe`::

    from repro.obs import MetricsSampler, PipelineProfiler, Probe, TraceRecorder
    from repro.sim.experiment import run_workload

    probe = Probe(trace=TraceRecorder(), metrics=MetricsSampler(),
                  profiler=PipelineProfiler())
    result = run_workload(tracker="dapper-h", attack="refresh", probe=probe)
    probe.trace.write("trace.json")

With no probe attached every hook site is a single ``is not None`` check;
with a probe attached the ``SimulationResult`` stays bit-identical (pinned
by ``tests/test_obs.py``).
"""

from repro.obs.metrics import MetricsSampler
from repro.obs.probe import EventSink, Probe
from repro.obs.profiler import PipelineProfiler
from repro.obs.trace import TraceRecorder, validate_chrome_trace

__all__ = [
    "EventSink",
    "MetricsSampler",
    "PipelineProfiler",
    "Probe",
    "TraceRecorder",
    "validate_chrome_trace",
]
