"""Pipeline profiling: host wall-time per simulation stage.

:class:`PipelineProfiler` accumulates ``perf_counter`` wall-time under
named stages -- ``llc-warmup``, ``tracker-warmup``, ``generation``,
``drain``, ``mitigation-scan``, ``collect`` -- either through the
:meth:`stage` context manager or via explicit :meth:`add` calls from hot
loops that cannot afford a ``with`` block per iteration.

Unlike the trace/metrics planes this measures *host* time, not simulated
time, so it is the tool for answering "where does a sweep's wall-clock
go".  It is carried on the probe as a plain attribute (not an event sink)
and consulted directly by the engines, ``run_workload`` and
``tools/bench_sweep.py``.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter


class PipelineProfiler:
    """Accumulate wall-time per named pipeline stage."""

    def __init__(self):
        self.stage_seconds: dict[str, float] = {}
        self.stage_counts: dict[str, int] = {}

    @contextmanager
    def stage(self, name: str):
        started = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - started)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + seconds
        self.stage_counts[name] = self.stage_counts.get(name, 0) + count

    def report(self) -> dict:
        """Stage breakdown with per-stage fraction of the profiled total."""
        total = sum(self.stage_seconds.values())
        stages = {
            name: {
                "seconds": seconds,
                "count": self.stage_counts.get(name, 0),
                "fraction": (seconds / total) if total > 0 else 0.0,
            }
            for name, seconds in sorted(
                self.stage_seconds.items(), key=lambda item: -item[1]
            )
        }
        return {"stages": stages, "total_seconds": total}
