"""MLP-limited core timing model.

Each core turns a stream of LLC-level accesses into issue times and, from the
completion times the memory hierarchy reports back, into an IPC figure.  The
model is the standard fast-simulation abstraction of an out-of-order core:

* the core executes instructions at its peak rate between memory accesses;
* it can overlap up to ``effective_mlp`` outstanding read misses, where the
  effective memory-level parallelism is limited both by the miss rate (how
  many misses fit in a 128-entry ROB) and by a hard cap;
* when all MLP slots are full the core stalls until the oldest miss returns;
* writes are posted and never block the core.

This captures what the paper's results rely on: a core whose requests are
delayed -- by counter traffic stealing bandwidth, by mitigative refreshes, or
by multi-millisecond structure resets -- retires instructions more slowly in
direct proportion to those delays.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.config import CoreConfig
from repro.cpu.trace import RequestGenerator, TraceEntry


@dataclass(frozen=True)
class CoreResult:
    """Final per-core statistics of one simulation."""

    core_id: int
    instructions: int
    requests: int
    finish_time_ns: float
    ipc: float
    is_attacker: bool


class CoreModel:
    """Timing state of one core during a simulation."""

    def __init__(
        self,
        core_id: int,
        config: CoreConfig,
        generator: RequestGenerator,
        request_budget: int | None,
        mean_gap_instructions: float = 50.0,
        is_attacker: bool = False,
        max_outstanding_override: int | None = None,
    ):
        self.core_id = core_id
        self.config = config
        self.generator = generator
        self.request_budget = request_budget
        self.is_attacker = is_attacker

        gap = max(1.0, mean_gap_instructions)
        rob_limited = max(1, int(config.rob_entries // gap))
        max_outstanding = (
            config.max_outstanding_misses
            if max_outstanding_override is None
            else max_outstanding_override
        )
        self.effective_mlp = max(1, min(max_outstanding, rob_limited))

        self.cpu_time_ns = 0.0
        self.instructions_retired = 0
        self.requests_issued = 0
        self._outstanding: list[float] = []
        self._budget_instructions: int | None = None
        self._budget_finish_ns: float | None = None

    # ------------------------------------------------------------------ #
    # Scheduling interface used by the simulator
    # ------------------------------------------------------------------ #

    @property
    def budget_reached(self) -> bool:
        """Whether this core has issued its full request budget."""
        return (
            self.request_budget is not None
            and self.requests_issued >= self.request_budget
        )

    def next_event_time(self) -> float:
        """Earliest time at which the core could issue its next access."""
        if self._outstanding and len(self._outstanding) >= self.effective_mlp:
            return max(self.cpu_time_ns, self._outstanding[0])
        return self.cpu_time_ns

    def issue_event(self):
        """This core's next scheduling event for the discrete-event engine.

        Event-source adapter: wraps :meth:`next_event_time` as a
        :class:`~repro.sim.events.events.CoreIssue` so the engine can seed
        its event queue without reaching into core internals.
        """
        from repro.sim.events.events import CoreIssue

        return CoreIssue(self.next_event_time(), self.core_id)

    def begin_request(self, entry: TraceEntry) -> float:
        """Account for the compute gap before ``entry`` and return its issue time."""
        return self.begin_request_values(entry.gap_instructions)

    def begin_request_values(self, gap_instructions: int) -> float:
        """:meth:`begin_request` on a raw instruction gap.

        The batched engine keeps trace entries as parallel arrays; this
        entry point avoids materialising a :class:`TraceEntry` per request.
        """
        peak = self.config.peak_instructions_per_ns
        gap_ns = gap_instructions / peak
        issue = self.cpu_time_ns + gap_ns
        if len(self._outstanding) >= self.effective_mlp:
            release = heapq.heappop(self._outstanding)
            issue = max(issue, release)
        self.cpu_time_ns = issue
        self.instructions_retired += gap_instructions
        self.requests_issued += 1
        return issue

    def complete_read(self, completion_ns: float) -> None:
        """Register the completion time of an in-flight read."""
        heapq.heappush(self._outstanding, completion_ns)

    def note_progress(self) -> None:
        """Freeze the budget statistics the first time the budget is reached."""
        if self.budget_reached and self._budget_instructions is None:
            self._budget_instructions = self.instructions_retired
            drain = max(self._outstanding) if self._outstanding else self.cpu_time_ns
            self._budget_finish_ns = max(self.cpu_time_ns, drain)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #

    def finish_time_ns(self) -> float:
        if self._budget_finish_ns is not None:
            return self._budget_finish_ns
        drain = max(self._outstanding) if self._outstanding else self.cpu_time_ns
        return max(self.cpu_time_ns, drain)

    def result(self) -> CoreResult:
        instructions = (
            self._budget_instructions
            if self._budget_instructions is not None
            else self.instructions_retired
        )
        finish = self.finish_time_ns()
        cycles = finish * self.config.freq_ghz
        ipc = instructions / cycles if cycles > 0 else 0.0
        return CoreResult(
            core_id=self.core_id,
            instructions=instructions,
            requests=self.requests_issued,
            finish_time_ns=finish,
            ipc=ipc,
            is_attacker=self.is_attacker,
        )
