"""Reading, writing and replaying memory-access trace files.

The paper's evaluation is trace-driven: instruction traces of the 57
benchmark applications are replayed through the simulator.  The synthetic
:class:`~repro.cpu.trace.WorkloadTraceGenerator` stands in for those traces,
but downstream users may have real traces of their own (or want to freeze a
synthetic stream for exact reproducibility across runs and machines).  This
module provides the file format and the replay generator for that:

* :func:`write_trace` / :func:`read_trace` -- a simple line-oriented text
  format, one access per line::

      # comment lines and blank lines are ignored
      <gap_instructions> <physical_address_hex> <R|W>

  ``gap_instructions`` is the number of instructions executed since the
  previous LLC-level access, exactly as carried by
  :class:`~repro.cpu.trace.TraceEntry` (and in the spirit of the Ramulator
  CPU-trace format the paper's artifact uses).
* :class:`FileTraceGenerator` -- replays a recorded trace through the
  simulator; it implements the same :class:`~repro.cpu.trace.RequestGenerator`
  protocol as the synthetic workloads and the attack kernels.
* :func:`record_trace` / :func:`record_workload_trace` -- capture the next
  ``n`` entries of any generator (or of a named workload profile) so they can
  be written out and replayed later.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.config import SystemConfig, baseline_config
from repro.cpu.trace import RequestGenerator, TraceEntry, WorkloadTraceGenerator
from repro.cpu.workloads import WorkloadProfile, get_workload
from repro.dram.address import AddressMapper


class TraceFormatError(ValueError):
    """Raised when a trace file line cannot be parsed."""


def write_trace(path: str | Path, entries: Iterable[TraceEntry], header: str = "") -> int:
    """Write ``entries`` to ``path`` and return the number of lines written."""
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        for entry in entries:
            kind = "W" if entry.is_write else "R"
            handle.write(f"{entry.gap_instructions} 0x{entry.address:x} {kind}\n")
            count += 1
    return count


def _parse_line(line: str, line_number: int) -> TraceEntry | None:
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    fields = stripped.split()
    if len(fields) != 3:
        raise TraceFormatError(
            f"line {line_number}: expected '<gap> <address> <R|W>', got {stripped!r}"
        )
    gap_text, address_text, kind = fields
    try:
        gap = int(gap_text)
        address = int(address_text, 0)
    except ValueError as exc:
        raise TraceFormatError(f"line {line_number}: {exc}") from None
    if gap < 0 or address < 0:
        raise TraceFormatError(
            f"line {line_number}: gap and address must be non-negative"
        )
    kind = kind.upper()
    if kind not in ("R", "W"):
        raise TraceFormatError(
            f"line {line_number}: access kind must be 'R' or 'W', got {kind!r}"
        )
    return TraceEntry(gap_instructions=gap, address=address, is_write=kind == "W")


def read_trace(path: str | Path) -> list[TraceEntry]:
    """Parse a trace file written by :func:`write_trace` (or by hand)."""
    path = Path(path)
    entries: list[TraceEntry] = []
    with path.open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            entry = _parse_line(line, line_number)
            if entry is not None:
                entries.append(entry)
    return entries


class FileTraceGenerator:
    """Replays a fixed list of trace entries as a request stream.

    The simulator treats request generators as infinite streams, so by default
    the trace wraps around when it is exhausted (``loop=True``).  With
    ``loop=False`` the generator raises :class:`StopIteration` instead, which
    is convenient for strict replay in unit tests.
    """

    bypasses_llc = False

    def __init__(
        self,
        entries: Sequence[TraceEntry] | str | Path,
        loop: bool = True,
        bypasses_llc: bool = False,
    ):
        if isinstance(entries, (str, Path)):
            entries = read_trace(entries)
        if not entries:
            raise ValueError("a trace must contain at least one entry")
        self._entries = list(entries)
        # Parallel arrays mirror the entry list so ``next_batch`` can slice
        # instead of unpacking TraceEntry objects per access.
        self._gaps = [entry.gap_instructions for entry in self._entries]
        self._addresses = [entry.address for entry in self._entries]
        self._writes = [entry.is_write for entry in self._entries]
        self.loop = loop
        self.bypasses_llc = bypasses_llc
        self._cursor = 0
        self.replays = 0
        self._digest = None

    def __len__(self) -> int:
        return len(self._entries)

    def next_entry(self) -> TraceEntry:
        if self._cursor >= len(self._entries):
            if not self.loop:
                raise StopIteration("trace exhausted")
            self._cursor = 0
            self.replays += 1
        entry = self._entries[self._cursor]
        self._cursor += 1
        return entry

    def next_batch(self, count: int):
        """Next ``count`` entries as parallel ``(gaps, addresses, writes)``.

        Bit-identical to ``count`` calls of :meth:`next_entry` (same lazy
        wrap-around, same ``replays`` accounting, same :class:`StopIteration`
        point for non-looping traces), but built from slices of the
        pre-split parallel arrays.
        """
        gaps: list[int] = []
        addresses: list[int] = []
        writes: list[bool] = []
        total = len(self._entries)
        remaining = count
        while remaining > 0:
            if self._cursor >= total:
                if not self.loop:
                    if remaining == count:
                        raise StopIteration("trace exhausted")
                    raise StopIteration(
                        f"trace exhausted {remaining} entries short of a "
                        f"{count}-entry batch"
                    )
                self._cursor = 0
                self.replays += 1
            take = min(remaining, total - self._cursor)
            stop = self._cursor + take
            gaps.extend(self._gaps[self._cursor:stop])
            addresses.extend(self._addresses[self._cursor:stop])
            writes.extend(self._writes[self._cursor:stop])
            self._cursor = stop
            remaining -= take
        return gaps, addresses, writes

    def content_digest(self) -> str:
        """SHA-256 over the canonical text form of the entries.

        Identifies the trace *content* independent of file path, mtime or
        formatting, so scenario cache keys survive renames and re-writes.
        """
        if self._digest is None:
            hasher = hashlib.sha256()
            for gap, address, write in zip(
                self._gaps, self._addresses, self._writes
            ):
                hasher.update(
                    f"{gap} {address:x} {'W' if write else 'R'}\n".encode()
                )
            self._digest = hasher.hexdigest()
        return self._digest

    def state_fingerprint(self):
        """Compact state fingerprint for the warm-up memo (see
        :func:`repro.sim.batch._state_fingerprint`); replaces attribute
        recursion, which would otherwise repr every entry."""
        return (
            "file-trace",
            self.content_digest(),
            self._cursor,
            self.replays,
            self.loop,
            self.bypasses_llc,
        )

    def state_snapshot(self) -> tuple:
        """Mutable state only (see :func:`repro.sim.batch._generator_snapshot`):
        the entry arrays are immutable, so the warm-up memo need not copy
        them."""
        return (self._cursor, self.replays)

    def state_restore(self, state: tuple) -> None:
        self._cursor, self.replays = state

    def mean_gap_instructions(self) -> float:
        """Average instruction gap of one full pass over the trace."""
        return sum(self._gaps) / len(self._gaps)


def record_trace(generator: RequestGenerator, num_entries: int) -> list[TraceEntry]:
    """Capture the next ``num_entries`` accesses produced by ``generator``."""
    if num_entries < 1:
        raise ValueError("num_entries must be positive")
    return [generator.next_entry() for _ in range(num_entries)]


def record_workload_trace(
    workload: str | WorkloadProfile,
    num_entries: int,
    config: SystemConfig | None = None,
    core_id: int = 0,
    seed: int | None = None,
) -> list[TraceEntry]:
    """Record a synthetic trace for one of the 57 named workload profiles.

    This is the bridge between the synthetic workload model and the trace file
    format: the recorded entries can be written with :func:`write_trace`,
    shared, edited, and replayed bit-exactly with :class:`FileTraceGenerator`.
    """
    config = config or baseline_config()
    profile = get_workload(workload) if isinstance(workload, str) else workload
    generator = WorkloadTraceGenerator(
        profile,
        config.dram,
        AddressMapper(config.dram),
        core_id=core_id,
        seed=config.seed if seed is None else seed,
    )
    return record_trace(generator, num_entries)


@dataclass(frozen=True)
class TraceInfo:
    """A parsed trace file plus the identity facts scenario plans need."""

    path: str
    entries: tuple[TraceEntry, ...]
    digest: str
    mean_gap: float


#: ``(abspath, mtime_ns, size)`` -> :class:`TraceInfo` memo: scenario
#: expansion and cache-key computation re-read the same trace file many
#: times per sweep.
_TRACE_INFO_CACHE: dict = {}
_TRACE_INFO_CACHE_MAX = 32


def load_trace_info(path: str | Path) -> TraceInfo:
    """Parse (memoized) a trace file into a :class:`TraceInfo`.

    The memo key includes the file's mtime and size, so an edited trace is
    re-read while repeated scenario expansion over an unchanged file is
    serviced from memory.
    """
    resolved = Path(path).resolve()
    stat = resolved.stat()
    key = (str(resolved), stat.st_mtime_ns, stat.st_size)
    info = _TRACE_INFO_CACHE.get(key)
    if info is None:
        entries = read_trace(resolved)
        generator = FileTraceGenerator(entries)
        info = TraceInfo(
            path=str(resolved),
            entries=tuple(entries),
            digest=generator.content_digest(),
            mean_gap=generator.mean_gap_instructions(),
        )
        if len(_TRACE_INFO_CACHE) >= _TRACE_INFO_CACHE_MAX:
            _TRACE_INFO_CACHE.pop(next(iter(_TRACE_INFO_CACHE)))
        _TRACE_INFO_CACHE[key] = info
    return info
