"""The 57 evaluated workloads and their synthetic memory profiles.

The paper evaluates 57 applications drawn from SPEC2006 (23), SPEC2017 (18),
TPC (4), Hadoop (3), MediaBench (3) and YCSB (6).  Because the original
instruction traces are not redistributable, each workload is represented here
by a :class:`WorkloadProfile` describing the characteristics that drive the
memory system:

``apki``            LLC accesses per kilo-instruction (post-L2 traffic),
``row_locality``    probability that the next access continues sequentially
                    within the current DRAM row,
``footprint_bytes`` size of the working set walked by the core,
``write_fraction``  fraction of accesses that are writes.

The values are chosen so the relative memory intensity across workloads and
suites is faithful to the well-known behaviour of these applications (e.g.
429.mcf, 433.milc, 470.lbm, 510.parest and the TPC/Hadoop workloads are
memory-intensive; povray, gamess, leela are compute-bound), which is what the
paper's "shape" results depend on.  See DESIGN.md §2 for the substitution
rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

_MB = 1024 * 1024


@dataclass(frozen=True)
class WorkloadProfile:
    """Synthetic memory profile for one workload.

    ``reuse_fraction`` and ``hot_bytes`` model temporal locality: that share
    of non-sequential accesses targets a small hot region, which is what gives
    applications an LLC hit rate (and therefore what cache-thrashing attacks
    and START's LLC reservation take away).
    """

    name: str
    suite: str
    apki: float
    row_locality: float
    footprint_bytes: int
    write_fraction: float = 0.25
    reuse_fraction: float = 0.5
    hot_bytes: int = _MB // 2

    @property
    def memory_intensive(self) -> bool:
        """Roughly the paper's ">= 2 row-buffer misses per kilo instruction" filter."""
        return self.apki * (1.0 - 0.6 * self.row_locality) >= 2.0


def _w(
    name: str,
    suite: str,
    apki: float,
    locality: float,
    footprint_mb: float,
    writes: float = 0.25,
) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        suite=suite,
        apki=apki,
        row_locality=locality,
        footprint_bytes=int(footprint_mb * _MB),
        write_fraction=writes,
    )


SPEC2006 = "SPEC2K6"
SPEC2017 = "SPEC2K17"
TPC = "TPC"
HADOOP = "Hadoop"
MEDIABENCH = "MediaBench"
YCSB = "YCSB"

#: Ordered list of suite names as the paper reports them.
SUITES: tuple[str, ...] = (SPEC2006, SPEC2017, TPC, HADOOP, MEDIABENCH, YCSB)


ALL_WORKLOADS: tuple[WorkloadProfile, ...] = (
    # ------------------------------------------------------------------ #
    # SPEC CPU2006 (23)
    # ------------------------------------------------------------------ #
    _w("400.perlbench", SPEC2006, 1.2, 0.70, 24),
    _w("401.bzip2", SPEC2006, 3.5, 0.55, 48),
    _w("403.gcc", SPEC2006, 4.0, 0.50, 64),
    _w("429.mcf", SPEC2006, 68.0, 0.15, 1536, 0.20),
    _w("445.gobmk", SPEC2006, 1.0, 0.60, 24),
    _w("456.hmmer", SPEC2006, 2.2, 0.75, 32),
    _w("458.sjeng", SPEC2006, 0.8, 0.55, 16),
    _w("462.libquantum", SPEC2006, 26.0, 0.92, 64, 0.30),
    _w("464.h264ref", SPEC2006, 2.0, 0.80, 40),
    _w("471.omnetpp", SPEC2006, 21.0, 0.25, 192),
    _w("473.astar", SPEC2006, 10.0, 0.35, 128),
    _w("483.xalancbmk", SPEC2006, 12.0, 0.35, 128),
    _w("410.bwaves", SPEC2006, 19.0, 0.85, 512, 0.30),
    _w("416.gamess", SPEC2006, 0.4, 0.80, 8),
    _w("433.milc", SPEC2006, 30.0, 0.55, 512, 0.35),
    _w("434.zeusmp", SPEC2006, 6.0, 0.70, 256),
    _w("435.gromacs", SPEC2006, 1.1, 0.70, 16),
    _w("436.cactusADM", SPEC2006, 8.0, 0.65, 384, 0.35),
    _w("437.leslie3d", SPEC2006, 14.0, 0.75, 384, 0.30),
    _w("444.namd", SPEC2006, 1.0, 0.75, 32),
    _w("450.soplex", SPEC2006, 27.0, 0.45, 384, 0.20),
    _w("453.povray", SPEC2006, 0.2, 0.80, 4),
    _w("470.lbm", SPEC2006, 33.0, 0.88, 512, 0.45),
    # ------------------------------------------------------------------ #
    # SPEC CPU2017 (18)
    # ------------------------------------------------------------------ #
    _w("500.perlbench", SPEC2017, 1.0, 0.70, 24),
    _w("502.gcc", SPEC2017, 5.5, 0.50, 96),
    _w("503.bwaves", SPEC2017, 16.0, 0.85, 768, 0.30),
    _w("505.mcf", SPEC2017, 42.0, 0.20, 1024, 0.20),
    _w("507.cactuBSSN", SPEC2017, 9.0, 0.65, 512, 0.35),
    _w("508.namd", SPEC2017, 1.2, 0.75, 48),
    _w("510.parest", SPEC2017, 36.0, 0.30, 768, 0.20),
    _w("511.povray", SPEC2017, 0.2, 0.80, 4),
    _w("519.lbm", SPEC2017, 31.0, 0.88, 768, 0.45),
    _w("520.omnetpp", SPEC2017, 19.0, 0.25, 256),
    _w("521.wrf", SPEC2017, 7.0, 0.70, 384, 0.30),
    _w("523.xalancbmk", SPEC2017, 11.0, 0.35, 192),
    _w("525.x264", SPEC2017, 1.8, 0.80, 64),
    _w("526.blender", SPEC2017, 1.5, 0.70, 96),
    _w("527.cam4", SPEC2017, 6.5, 0.65, 384, 0.30),
    _w("531.deepsjeng", SPEC2017, 1.0, 0.55, 48),
    _w("538.imagick", SPEC2017, 0.8, 0.85, 64),
    _w("549.fotonik3d", SPEC2017, 24.0, 0.80, 768, 0.30),
    # ------------------------------------------------------------------ #
    # TPC (4)
    # ------------------------------------------------------------------ #
    _w("tpcc64", TPC, 14.0, 0.30, 512, 0.35),
    _w("tpch2", TPC, 17.0, 0.55, 768, 0.15),
    _w("tpch6", TPC, 20.0, 0.65, 768, 0.15),
    _w("tpch17", TPC, 15.0, 0.50, 768, 0.15),
    # ------------------------------------------------------------------ #
    # Hadoop (3)
    # ------------------------------------------------------------------ #
    _w("hadoop-grep", HADOOP, 12.0, 0.55, 512, 0.25),
    _w("hadoop-sort", HADOOP, 18.0, 0.45, 768, 0.40),
    _w("hadoop-wordcount", HADOOP, 10.0, 0.50, 512, 0.30),
    # ------------------------------------------------------------------ #
    # MediaBench (3)
    # ------------------------------------------------------------------ #
    _w("mediabench-h263enc", MEDIABENCH, 3.0, 0.80, 64, 0.30),
    _w("mediabench-jpegdec", MEDIABENCH, 4.5, 0.85, 96, 0.35),
    _w("mediabench-mpeg2enc", MEDIABENCH, 5.0, 0.80, 128, 0.35),
    # ------------------------------------------------------------------ #
    # YCSB (6)
    # ------------------------------------------------------------------ #
    _w("ycsb-a", YCSB, 9.0, 0.25, 768, 0.45),
    _w("ycsb-b", YCSB, 8.0, 0.25, 768, 0.15),
    _w("ycsb-c", YCSB, 7.5, 0.25, 768, 0.05),
    _w("ycsb-d", YCSB, 8.5, 0.30, 640, 0.15),
    _w("ycsb-e", YCSB, 11.0, 0.40, 768, 0.10),
    _w("ycsb-f", YCSB, 9.5, 0.25, 768, 0.45),
)

_BY_NAME = {profile.name: profile for profile in ALL_WORKLOADS}


def get_workload(name: str) -> WorkloadProfile:
    """Look a workload up by name (raises ``KeyError`` for unknown names)."""
    return _BY_NAME[name]


def scale_profile(profile: WorkloadProfile, intensity: float) -> WorkloadProfile:
    """A copy of ``profile`` with its memory intensity scaled.

    ``intensity`` multiplies the APKI (0.5 = half as many LLC accesses per
    kilo-instruction, 2.0 = twice as many); locality, footprint and the
    read/write mix are unchanged.  Scenario core plans use this to run the
    same application at different per-core pressures in one blend.  The
    scaled profile is renamed (``name#x<intensity>``) so results and cache
    keys cannot be confused with the original.
    """
    if not intensity > 0:
        raise ValueError(f"intensity must be positive, got {intensity}")
    if intensity == 1.0:
        return profile
    from dataclasses import replace

    return replace(
        profile,
        name=f"{profile.name}#x{intensity:g}",
        apki=profile.apki * intensity,
    )


def workloads_in_suite(suite: str) -> tuple[WorkloadProfile, ...]:
    """All workloads belonging to the given suite, in definition order."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; expected one of {SUITES}")
    return tuple(profile for profile in ALL_WORKLOADS if profile.suite == suite)


def memory_intensive_workloads() -> tuple[WorkloadProfile, ...]:
    """Workloads matching the paper's >= 2 row-buffer-misses-PKI filter."""
    return tuple(profile for profile in ALL_WORKLOADS if profile.memory_intensive)


def suite_counts() -> dict[str, int]:
    """Number of workloads per suite (matches the counts in the paper's plots)."""
    counts: dict[str, int] = {}
    for profile in ALL_WORKLOADS:
        counts[profile.suite] = counts.get(profile.suite, 0) + 1
    return counts
