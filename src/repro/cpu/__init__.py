"""CPU substrate: synthetic workload traces, request generators, and the
MLP-limited core timing model that converts memory latencies into IPC.
"""

from repro.cpu.core import CoreModel, CoreResult
from repro.cpu.trace import IdleGenerator, RequestGenerator, TraceEntry, WorkloadTraceGenerator
from repro.cpu.tracefile import (
    FileTraceGenerator,
    TraceFormatError,
    read_trace,
    record_trace,
    record_workload_trace,
    write_trace,
)
from repro.cpu.workloads import (
    ALL_WORKLOADS,
    SUITES,
    WorkloadProfile,
    get_workload,
    workloads_in_suite,
)

__all__ = [
    "CoreModel",
    "CoreResult",
    "TraceEntry",
    "RequestGenerator",
    "WorkloadTraceGenerator",
    "IdleGenerator",
    "FileTraceGenerator",
    "TraceFormatError",
    "read_trace",
    "write_trace",
    "record_trace",
    "record_workload_trace",
    "WorkloadProfile",
    "ALL_WORKLOADS",
    "SUITES",
    "get_workload",
    "workloads_in_suite",
]
