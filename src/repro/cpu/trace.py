"""Synthetic memory-access traces.

The original evaluation replays instruction traces of 57 SPEC2006 / SPEC2017 /
TPC / Hadoop / MediaBench / YCSB applications through Ramulator's core model.
Those traces are not available here, so each workload is replaced by a
deterministic synthetic generator (:class:`WorkloadTraceGenerator`) that
produces LLC-level accesses with the workload's memory intensity, row-buffer
locality, working-set footprint and read/write mix (see
``repro/cpu/workloads.py`` and DESIGN.md for the substitution rationale).

A trace entry carries the number of instructions executed since the previous
LLC access (``gap_instructions``), the physical address, and whether it is a
write.  Attack generators in :mod:`repro.attacks` implement the same
:class:`RequestGenerator` protocol so the simulator treats benign cores and
attacker cores uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.config import DRAMOrganization
from repro.crypto.prng import XorShift64
from repro.dram.address import AddressMapper


@dataclass(frozen=True)
class TraceEntry:
    """One LLC-level memory access."""

    gap_instructions: int
    address: int
    is_write: bool


class RequestGenerator(Protocol):
    """Protocol implemented by workload traces and attack generators."""

    #: Whether requests from this generator bypass the shared LLC.  Attack
    #: kernels that must reach DRAM on every access (streaming over huge
    #: footprints, or explicit cache-line flushes) set this to ``True``.
    bypasses_llc: bool

    def next_entry(self) -> TraceEntry:
        """Produce the next access of the (conceptually infinite) stream."""
        ...


def generator_batch(generator, count: int):
    """Next ``count`` entries of any generator as parallel lists.

    Returns ``(gaps, addresses, writes)``.  Generators that implement a
    ``next_batch`` fast path (workload traces, sequence-cycling attacks) are
    used directly; anything else falls back to per-entry calls, so the result
    is always exactly what ``count`` calls of ``next_entry`` would produce.
    """
    batch = getattr(generator, "next_batch", None)
    if batch is not None:
        return batch(count)
    gaps = [0] * count
    addresses = [0] * count
    writes = [False] * count
    next_entry = generator.next_entry
    for i in range(count):
        entry = next_entry()
        gaps[i] = entry.gap_instructions
        addresses[i] = entry.address
        writes[i] = entry.is_write
    return gaps, addresses, writes


class IdleGenerator:
    """A core that never issues memory traffic.

    Used for the no-attack baseline configurations, where the attacker core of
    an attack configuration is replaced by an idle core so that normalized
    performance isolates the effect of the attack plus the mitigation.
    """

    bypasses_llc = False

    def next_entry(self) -> TraceEntry:  # pragma: no cover - never called
        raise RuntimeError("IdleGenerator does not produce requests")


class WorkloadTraceGenerator:
    """Synthetic LLC-access stream for one workload running on one core.

    The address stream walks a per-core private footprint.  With probability
    ``row_locality`` the next access is the next cache line within the current
    DRAM row (so high-locality workloads enjoy row-buffer hits and LLC hits);
    otherwise it jumps to a random line of the footprint.  Instruction gaps
    are drawn around ``1000 / apki`` with a small deterministic jitter.
    """

    bypasses_llc = False

    def __init__(
        self,
        profile: "WorkloadProfileLike",
        org: DRAMOrganization,
        mapper: AddressMapper,
        core_id: int,
        seed: int,
    ):
        if profile.apki <= 0:
            raise ValueError("workload must have a positive access rate")
        self.profile = profile
        self.org = org
        self.mapper = mapper
        self.core_id = core_id
        self._rng = XorShift64(seed ^ (0x5151 + core_id * 0x9E37))
        line = org.line_size_bytes

        # Each core owns a private, contiguous slice of physical memory so
        # homogeneous copies do not share data.  The slice starts at a
        # per-core offset and spans the workload footprint.
        total_lines = org.total_bytes // line
        self._footprint_lines = max(
            1, min(int(profile.footprint_bytes) // line, total_lines // 8)
        )
        region_stride = total_lines // 8
        self._base_line = (core_id % 8) * region_stride
        self._lines_per_row = org.lines_per_row

        self._mean_gap = max(1, int(round(1000.0 / profile.apki)))
        self._current_line = self._base_line
        self._run_remaining = 0
        self._reuse_fraction = getattr(profile, "reuse_fraction", 0.0)
        hot_bytes = getattr(profile, "hot_bytes", 0)
        self._hot_lines = max(1, min(self._footprint_lines, hot_bytes // line))

    def _random_jump(self) -> None:
        if self._reuse_fraction and self._rng.next_float() < self._reuse_fraction:
            # Temporal locality: revisit the workload's small hot region.
            offset = self._rng.next_below(self._hot_lines)
        else:
            offset = self._rng.next_below(self._footprint_lines)
        self._current_line = self._base_line + offset
        # A fresh jump starts a sequential run whose expected length reflects
        # the workload's row-buffer locality.
        locality = self.profile.row_locality
        if locality >= 1.0:
            self._run_remaining = self._lines_per_row
        elif locality <= 0.0:
            self._run_remaining = 0
        else:
            mean_run = locality / (1.0 - locality)
            self._run_remaining = min(
                self._lines_per_row,
                1 + int(self._rng.next_float() * 2 * mean_run),
            )

    def next_entry(self) -> TraceEntry:
        if self._run_remaining > 0:
            self._run_remaining -= 1
            self._current_line += 1
            if (
                self._current_line
                >= self._base_line + self._footprint_lines
            ):
                self._current_line = self._base_line
        else:
            self._random_jump()

        address = self._current_line * self.org.line_size_bytes
        is_write = self._rng.next_float() < self.profile.write_fraction
        jitter = self._rng.next_below(max(1, self._mean_gap // 2) * 2 + 1)
        gap = max(1, self._mean_gap - self._mean_gap // 2 + jitter)
        return TraceEntry(gap_instructions=gap, address=address, is_write=is_write)

    def next_batch(self, count: int):
        """Next ``count`` entries as parallel ``(gaps, addresses, writes)``.

        Bit-identical to ``count`` calls of :meth:`next_entry` (same RNG
        consumption order, same addresses/gaps/write flags, same generator
        state afterwards), but runs as one tight loop over a pregenerated RNG
        block instead of per-entry method calls and object construction.
        """
        # Worst case per entry: reuse float + jump draw + run-length float +
        # write float + jitter draw.  Over-reserving is free: unconsumed
        # outputs stay buffered in the RNG for later calls.
        reuse = self._reuse_fraction
        locality = self.profile.row_locality
        worst = 3 + (1 if reuse else 0) + (1 if 0.0 < locality < 1.0 else 0)
        block, start = self._rng.reserve(count * worst)
        segment = block[start:start + count * worst]
        pos = 0

        line_size = self.org.line_size_bytes
        base = self._base_line
        footprint = self._footprint_lines
        limit = base + footprint
        lines_per_row = self._lines_per_row
        mean_gap = self._mean_gap
        jitter_mod = max(1, mean_gap // 2) * 2 + 1
        gap_base = mean_gap - mean_gap // 2
        hot = self._hot_lines
        write_fraction = self.profile.write_fraction
        mean_run = locality / (1.0 - locality) if 0.0 < locality < 1.0 else 0.0
        two53 = float(1 << 53)

        # Each draw position is read either as a float or as a modulus, so
        # the float view of the whole segment can be precomputed vectorized;
        # it matches next_float bit-for-bit ((u >> 11) / 2**53 in both paths).
        # Moduli stay scalar: their values are branch-dependent and cheap.
        if isinstance(segment, list):
            buf = segment
            floats = [(value >> 11) / two53 for value in segment]
        else:
            buf = segment.tolist()
            floats = ((segment >> 11) / two53).tolist()

        cur = self._current_line
        run = self._run_remaining
        gaps = [0] * count
        addresses = [0] * count
        writes = [False] * count
        for i in range(count):
            if run > 0:
                run -= 1
                cur += 1
                if cur >= limit:
                    cur = base
            else:
                if reuse:
                    if floats[pos] < reuse:
                        pos += 1
                        cur = base + buf[pos] % hot
                    else:
                        pos += 1
                        cur = base + buf[pos] % footprint
                    pos += 1
                else:
                    cur = base + buf[pos] % footprint
                    pos += 1
                if locality >= 1.0:
                    run = lines_per_row
                elif locality <= 0.0:
                    run = 0
                else:
                    length = 1 + int(floats[pos] * 2 * mean_run)
                    pos += 1
                    run = length if length < lines_per_row else lines_per_row
            addresses[i] = cur * line_size
            writes[i] = floats[pos] < write_fraction
            pos += 1
            gap = gap_base + buf[pos] % jitter_mod
            pos += 1
            gaps[i] = gap if gap > 1 else 1

        self._current_line = cur
        self._run_remaining = run
        self._rng.consume(pos)
        return gaps, addresses, writes


class WorkloadProfileLike(Protocol):
    """Structural type for workload profiles (avoids an import cycle)."""

    apki: float
    row_locality: float
    footprint_bytes: int
    write_fraction: float
    reuse_fraction: float
    hot_bytes: int
