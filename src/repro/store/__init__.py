"""The experiment warehouse: persistent, queryable storage of simulation runs.

``repro.store`` turns the sweep engine's per-run memoization into a real
subsystem with three layers:

* :mod:`repro.store.backend` -- pluggable persistence behind one
  :class:`ResultStore` interface: the legacy one-JSON-file-per-key cache
  directory (:class:`JsonDirStore`) and the SQLite *warehouse*
  (:class:`SqliteStore`: WAL mode, schema-versioned with migrations, indexed
  scenario columns, per-run timing).
* :mod:`repro.store.campaign` -- resumable campaign orchestration: shard a
  huge scenario batch, checkpoint every completed run, resume with zero
  re-execution, report and diff finished campaigns.
* :mod:`repro.store.worker` -- distributed campaign drains: N worker
  processes (one or many hosts) lease shards of the same campaign from the
  warehouse's ``leases`` table with heartbeats, crash reclaim, bounded
  attempts and poison-shard quarantine.
* :mod:`repro.store.query` -- the read side: filter/aggregate stored runs,
  export CSV/JSON, import legacy cache directories, garbage-collect stale
  code versions.

Every existing entry point (``SweepRunner``, figures, tables, suites, the
CLI) reaches the warehouse through the unchanged ``cache_dir`` contract: a
directory path keeps the JSON layout, a ``.sqlite`` / ``.db`` path opens the
warehouse.
"""

from repro.store.backend import (
    SCHEMA_VERSION,
    JsonDirStore,
    LeaseRow,
    ResultStore,
    RunRecord,
    SqliteStore,
    open_store,
)
from repro.store.campaign import (
    Campaign,
    CampaignProgress,
    CampaignRunSummary,
    CampaignStatus,
    build_manifest,
    campaign_report,
    campaign_status,
    diff_campaigns,
)
from repro.store.query import (
    aggregate_rows,
    export_rows,
    flatten_record,
    gc_store,
    import_store,
    query_rows,
)
from repro.store.serialize import (
    lease_document,
    report_document,
    status_document,
)
from repro.store.worker import (
    CampaignWorker,
    LeaseLost,
    WorkerSummary,
    default_worker_id,
    manifest_shard_plan,
)

__all__ = [
    "SCHEMA_VERSION",
    "JsonDirStore",
    "LeaseRow",
    "ResultStore",
    "RunRecord",
    "SqliteStore",
    "open_store",
    "Campaign",
    "CampaignProgress",
    "CampaignRunSummary",
    "CampaignStatus",
    "build_manifest",
    "campaign_report",
    "campaign_status",
    "diff_campaigns",
    "aggregate_rows",
    "export_rows",
    "flatten_record",
    "gc_store",
    "import_store",
    "query_rows",
    "lease_document",
    "report_document",
    "status_document",
    "CampaignWorker",
    "LeaseLost",
    "WorkerSummary",
    "default_worker_id",
    "manifest_shard_plan",
]
