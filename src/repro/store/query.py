"""Query, aggregate, export and maintain the experiment warehouse.

These are the read-side tools over :mod:`repro.store.backend` stores: flatten
stored runs into report rows (:func:`flatten_record`, :func:`query_rows`),
aggregate them (:func:`aggregate_rows`), write CSV/JSON exports
(:func:`export_rows`), import a legacy JSON cache directory into the
warehouse (:func:`import_store`), and garbage-collect records left behind by
older simulator code versions (:func:`gc_store`).  The ``repro.cli store``
verbs are thin wrappers around this module.
"""

from __future__ import annotations

import csv
import io
import json
import os
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.sim.sweep import CODE_VERSION
from repro.store.backend import JsonDirStore, ResultStore, RunRecord

#: Scenario identity columns every flattened row starts with.
IDENTITY_COLUMNS = ("tracker", "workload", "attack", "seed", "nrh")


def flatten_record(record: RunRecord) -> dict:
    """One flat report row for a stored run.

    Identity fields come from the stored scenario description; metrics are
    extracted from the serialized result without rebuilding simulator
    objects, so flattening thousands of records stays cheap.
    """
    result = record.result if isinstance(record.result, dict) else {}
    core_results = result.get("core_results") or []
    benign_ipcs = [
        core.get("ipc")
        for core in core_results
        if isinstance(core, dict)
        and not core.get("is_attacker")
        and isinstance(core.get("ipc"), (int, float))
    ]
    dram = result.get("dram_stats") or {}
    tracker_stats = result.get("tracker_stats") or {}
    row = {column: record.scenario.get(column) for column in IDENTITY_COLUMNS}
    cores = record.scenario.get("cores")
    if isinstance(cores, list):
        row["cores"] = "+".join(str(core) for core in cores)
    row.update(
        mean_benign_ipc=(
            sum(benign_ipcs) / len(benign_ipcs) if benign_ipcs else None
        ),
        dram_activations=dram.get("activations"),
        mitigations_issued=tracker_stats.get("mitigations_issued"),
        structure_resets=tracker_stats.get("structure_resets"),
        blackout_time_ns=dram.get("blackout_time_ns"),
        elapsed_seconds=record.elapsed_seconds,
        peak_memory_bytes=record.peak_memory_bytes,
        code_version=record.code_version,
        created_at=record.created_at,
        key=record.key,
    )
    return row


def query_rows(
    store: ResultStore,
    tracker: str | None = None,
    workload: str | None = None,
    attack: str | None = None,
    nrh: int | None = None,
    code_version: str | None = None,
    limit: int | None = None,
    offset: int = 0,
) -> list[dict]:
    """Flattened rows of every stored run matching the given filters.

    Rows come back ordered by key, so ``limit`` + ``offset`` page through a
    large result set deterministically (the service's results endpoint and
    ``store query --offset`` both paginate through here).
    """
    records = store.query(
        tracker=tracker,
        workload=workload,
        attack=attack,
        nrh=nrh,
        code_version=code_version,
        limit=limit,
        offset=offset,
    )
    return [flatten_record(record) for record in records]


def aggregate_rows(
    rows: Sequence[dict],
    group_by: Sequence[str],
    metrics: Sequence[str] = ("mean_benign_ipc", "elapsed_seconds"),
) -> list[dict]:
    """Group rows by the given columns and summarise each numeric metric.

    Every output row carries the group's key columns, its size (``runs``),
    and ``<metric>_mean`` / ``<metric>_min`` / ``<metric>_max`` for each
    requested metric (rows whose metric is missing are skipped per-metric).
    """
    if not group_by:
        raise ValueError("aggregate_rows needs at least one group_by column")
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        group = tuple(row.get(column) for column in group_by)
        groups.setdefault(group, []).append(row)
    aggregated = []
    for group, members in sorted(
        groups.items(), key=lambda item: tuple(str(value) for value in item[0])
    ):
        summary = dict(zip(group_by, group))
        summary["runs"] = len(members)
        for metric in metrics:
            values = [
                row[metric]
                for row in members
                if isinstance(row.get(metric), (int, float))
            ]
            if not values:
                continue
            summary[f"{metric}_mean"] = sum(values) / len(values)
            summary[f"{metric}_min"] = min(values)
            summary[f"{metric}_max"] = max(values)
        aggregated.append(summary)
    return aggregated


# --------------------------------------------------------------------------- #
# Export
# --------------------------------------------------------------------------- #


def _columns_of(rows: Sequence[dict]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def rows_to_csv(rows: Sequence[dict]) -> str:
    """Serialize rows as CSV text (union of columns, in first-seen order)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(
        buffer, fieldnames=_columns_of(rows) or ["empty"], lineterminator="\n"
    )
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def export_rows(
    rows: Sequence[dict],
    output: str | os.PathLike,
    format: str | None = None,
) -> str:
    """Write rows to ``output`` as CSV or JSON; returns the format used.

    ``format=None`` infers from the file suffix (``.csv`` = CSV, anything
    else JSON); ``output="-"`` writes to stdout.
    """
    if format is None:
        suffix = Path(str(output)).suffix.lower()
        format = "csv" if suffix == ".csv" else "json"
    if format not in ("csv", "json"):
        raise ValueError(f"unknown export format {format!r}; use 'csv' or 'json'")
    if format == "csv":
        text = rows_to_csv(rows)
    else:
        text = json.dumps(list(rows), indent=2) + "\n"
    if str(output) == "-":
        print(text, end="")
    else:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text)
    return format


# --------------------------------------------------------------------------- #
# Import / maintenance
# --------------------------------------------------------------------------- #


def import_store(
    destination: ResultStore,
    source: "ResultStore | str | os.PathLike",
    overwrite: bool = False,
) -> tuple[int, int]:
    """Copy every readable record from ``source`` into ``destination``.

    This is the ``json -> sqlite`` upgrade path: point it at a legacy cache
    directory and the warehouse absorbs its entries (unreadable or corrupted
    files are skipped, exactly as the cache would have treated them).
    Returns ``(imported, skipped)``; existing keys are skipped unless
    ``overwrite``.
    """
    if not isinstance(source, ResultStore):
        source = JsonDirStore(source)
    existing = destination.keys()
    imported = skipped = 0
    for record in source.records():
        if not overwrite and record.key in existing:
            skipped += 1
            continue
        destination.put(record)
        imported += 1
    return imported, skipped


def gc_store(
    store: ResultStore,
    keep_code_version: str = CODE_VERSION,
    dry_run: bool = False,
) -> int:
    """Delete (or count, with ``dry_run``) records from other code versions.

    Cache keys embed the code version, so stale records are unreachable by
    lookups -- they only waste space.  Returns how many records were (or
    would be) removed.
    """
    if dry_run:
        return store.count_other_code_versions(keep_code_version)
    return store.purge_other_code_versions(keep_code_version)
