"""Distributed campaign workers: lease-based, crash-safe multi-host drains.

:class:`~repro.store.campaign.Campaign` executes a suite inside one process
(fanning simulations out over a local pool).  This module removes that
single-process bound: N independent **workers** -- separate processes on one
host, or separate hosts sharing a warehouse file -- drain the *same* campaign
concurrently by leasing shards from the warehouse's ``leases`` table
(:class:`~repro.store.backend.SqliteStore`, schema v4).

The protocol, designed so that a worker may die at *any* instruction without
losing or duplicating results:

1. **Join.**  A worker compiles the suite, verifies it matches the saved
   manifest key-for-key (mixing scenario sets across workers is refused),
   and idempotently initialises the shard plan: the campaign's unique
   simulation keys, in manifest order, chunked into shards and persisted as
   lease rows.  The first worker to join writes the plan; everyone else
   adopts it, so the plan never depends on per-worker flags.
2. **Claim.**  Workers atomically claim a ``pending`` shard -- or reclaim
   one whose lease expired because its holder died -- under a
   ``BEGIN IMMEDIATE`` transaction (exactly one winner per shard, enforced
   by the database write lock).
3. **Drain + heartbeat.**  A claimed shard executes through the ordinary
   :meth:`~repro.sim.sweep.SweepRunner.ensure` path, committing every
   completed simulation to the store the moment it finishes.  Between
   sub-batches the worker renews its lease on a clock interval; a failed
   renewal means the lease expired and another worker took the shard over,
   so this worker abandons it (the results it already committed stay valid
   -- they are keyed by scenario hash, and re-executing a stored key is a
   cheap membership check).
4. **Complete / fail.**  A drained shard is marked ``done`` idempotently.
   A shard that *raises* goes back to the pool with its attempt count
   intact; after ``max_attempts`` failed attempts it is quarantined
   (poison-shard exit) so one crashing scenario cannot wedge the campaign.
5. **Linger.**  A worker with nothing claimable but non-terminal shards
   outstanding polls until every shard is ``done`` or ``quarantined`` --
   that is what guarantees a campaign finishes even when the worker holding
   the last shard is SIGKILLed: a survivor waits out the lease and reclaims.

Results are exactly the records a serial :class:`Campaign` run would have
stored (same keys, same bytes); leases only coordinate *who* computes what.
The wall clock is injectable (``clock``/``sleep``) so every lease transition
is testable under a simulated clock; the fault-injection and property suites
in ``tests/test_distributed_campaign.py`` exercise the real-SIGKILL and
random-interleaving cases.
"""

from __future__ import annotations

import logging
import os
import socket
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.sim.sweep import ScenarioSpec, SweepRunner
from repro.store.backend import LeaseRow, ResultStore
from repro.store.campaign import (
    _manifest_keys,
    build_manifest,
    validate_campaign_name,
)

_LOG = logging.getLogger("repro.worker")

#: Default seconds a claimed lease stays valid without a heartbeat.  Must
#: comfortably exceed the slowest sub-batch between heartbeats; expiry is
#: how dead workers are detected, so shorter means faster reclaim but more
#: heartbeat traffic.
DEFAULT_LEASE_DURATION = 60.0

#: Default attempt budget per shard before quarantine.
DEFAULT_MAX_ATTEMPTS = 3


def default_worker_id() -> str:
    """Host-qualified default worker identity (``<hostname>-<pid>``)."""
    return f"{socket.gethostname()}-{os.getpid()}"


def manifest_shard_plan(manifest: dict, shard_size: int) -> list[list[str]]:
    """The deterministic shard plan of a manifest.

    Unique simulation keys (measured runs and their baselines, first-seen
    order over the manifest entries) chunked into ``shard_size`` slices.
    Derived purely from the persisted manifest so every worker computes the
    identical plan, whatever order its suite compiled in.
    """
    seen: set[str] = set()
    ordered: list[str] = []
    for entry in manifest.get("entries", ()):
        for key in (entry["key"], entry["baseline_key"]):
            if key not in seen:
                seen.add(key)
                ordered.append(key)
    size = max(1, int(shard_size))
    return [ordered[offset:offset + size] for offset in range(0, len(ordered), size)]


class LeaseLost(RuntimeError):
    """A heartbeat failed: the shard's lease expired and was reclaimed."""


@dataclass(frozen=True)
class WorkerSummary:
    """What one :meth:`CampaignWorker.run` invocation did."""

    campaign: str
    worker_id: str
    shards: int                # shard rows the campaign has
    completed: int             # shards this worker drained to done
    reclaimed: int             # claims that took over an expired lease
    lost: int                  # shards abandoned after losing the lease
    failed: int                # shard attempts that raised
    executed: int              # simulations this worker actually ran
    elapsed_seconds: float


class CampaignWorker:
    """One lease-driven drain participant of a named campaign.

    ``specs`` is the compiled suite (the same sequence ``Campaign`` takes);
    the worker refuses to run if its keys differ from the saved manifest's.
    ``init=True`` lets the first worker create the manifest when the
    campaign does not exist yet; without it, joining an unknown campaign is
    an error, so a typo'd name cannot silently start an empty campaign.
    """

    def __init__(
        self,
        name: str,
        specs: Sequence[ScenarioSpec],
        store: ResultStore,
        worker_id: str | None = None,
        jobs: int = 1,
        shard_size: int = 4,
        lease_duration: float = DEFAULT_LEASE_DURATION,
        heartbeat_interval: float | None = None,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        poll_interval: float | None = None,
        init: bool = False,
        source: str = "",
        description: str = "",
        track_memory: bool = False,
        clock: Callable[[], float] = time.time,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if not getattr(store, "supports_leases", False):
            raise ValueError(
                "distributed campaign workers need the SQLite warehouse "
                "(a --store path ending in .sqlite/.db); the JSON cache "
                "directory has no lease table"
            )
        if not float(lease_duration) > 0:
            raise ValueError(f"lease_duration must be positive, got {lease_duration}")
        self.name = validate_campaign_name(name)
        self.specs = list(specs)
        self.store = store
        self.worker_id = worker_id or default_worker_id()
        self.jobs = max(1, int(jobs))
        self.shard_size = max(1, int(shard_size))
        self.lease_duration = float(lease_duration)
        self.heartbeat_interval = (
            float(heartbeat_interval)
            if heartbeat_interval is not None
            else self.lease_duration / 3.0
        )
        self.max_attempts = max(1, int(max_attempts))
        self.poll_interval = (
            float(poll_interval)
            if poll_interval is not None
            else min(1.0, self.lease_duration / 4.0)
        )
        self.init = bool(init)
        self.source = source
        self.description = description
        self.track_memory = bool(track_memory)
        self._clock = clock
        self._sleep = sleep
        self._plan: dict[str, ScenarioSpec] = {}
        self.manifest: dict | None = None
        self.shard_count = 0

    # ------------------------------------------------------------------ #

    def join(self) -> int:
        """Adopt (or with ``init``, create) the manifest and lease rows.

        Returns the campaign's shard count.  Safe to call from any number
        of workers concurrently: the manifest comparison is read-only and
        lease initialisation is first-writer-wins.
        """
        plan: dict[str, ScenarioSpec] = {}
        for spec in self.specs:
            plan.setdefault(spec.cache_key(), spec)
            baseline = spec.baseline_spec()
            plan.setdefault(baseline.cache_key(), baseline)
        manifest = self.store.load_campaign(self.name)
        if manifest is None:
            if not self.init:
                known = ", ".join(self.store.campaign_names()) or "(none)"
                raise ValueError(
                    f"unknown campaign {self.name!r} -- create it first with "
                    "'campaign run', or pass --init / init=True to let this "
                    f"worker save the manifest; saved campaigns: {known}"
                )
            manifest = build_manifest(
                self.name,
                self.specs,
                source=self.source,
                description=self.description,
            )
            self.store.save_campaign(self.name, manifest)
        if _manifest_keys(manifest) != set(plan):
            raise ValueError(
                f"campaign {self.name!r}: the compiled suite does not match "
                "the saved manifest (the suite file or the simulator code "
                "version changed); workers never replace a manifest -- "
                "re-create the campaign under a new name, or with "
                "'campaign run --force'"
            )
        self.manifest = manifest
        self._plan = plan
        self.shard_count = self.store.init_leases(
            self.name, manifest_shard_plan(manifest, self.shard_size)
        )
        return self.shard_count

    # ------------------------------------------------------------------ #

    def run(self, max_shards: int | None = None) -> WorkerSummary:
        """Claim and drain shards until the campaign is fully terminal.

        Returns once every shard is ``done`` or ``quarantined`` (or after
        ``max_shards`` shard attempts, for bounded participation).  While
        other workers still hold live leases the worker lingers, polling:
        if one of them dies, its lease expires and this worker reclaims the
        shard -- that linger is what makes an N-worker drain survive the
        SIGKILL of any worker.
        """
        started = time.perf_counter()
        if self.manifest is None:
            self.join()
        completed = reclaimed = lost = failed = executed = 0
        while max_shards is None or (completed + lost + failed) < max_shards:
            lease = self.store.claim_lease(
                self.name,
                self.worker_id,
                now=self._clock(),
                duration=self.lease_duration,
                max_attempts=self.max_attempts,
            )
            if lease is None:
                summary = self.store.lease_summary(self.name)
                if summary is None or not (
                    summary["pending"] or summary["leased"]
                ):
                    break   # every shard is done or quarantined
                _LOG.debug(
                    "worker %s: nothing claimable (%d shard(s) leased "
                    "elsewhere); polling",
                    self.worker_id, summary["leased"],
                )
                self._sleep(self.poll_interval)
                continue
            if lease.reclaimed:
                reclaimed += 1
                _LOG.info(
                    "worker %s reclaimed shard %d (attempt %d) from a dead "
                    "or stalled worker",
                    self.worker_id, lease.shard, lease.attempts,
                )
            try:
                ran = self._drain(lease)
                executed += ran
            except LeaseLost:
                lost += 1
                _LOG.warning(
                    "worker %s lost the lease on shard %d mid-drain; "
                    "abandoning it to its new holder",
                    self.worker_id, lease.shard,
                )
                continue
            except KeyboardInterrupt:
                # Give the shard back immediately so other workers need not
                # wait out the lease; completed simulations stay committed.
                self.store.release_lease(self.name, lease.shard, self.worker_id)
                raise
            except Exception as error:
                failed += 1
                state = self.store.release_lease(
                    self.name,
                    lease.shard,
                    self.worker_id,
                    error=f"{type(error).__name__}: {error}",
                    quarantine_after=self.max_attempts,
                )
                _LOG.error(
                    "worker %s: shard %d attempt %d raised (%s); shard -> %s",
                    self.worker_id, lease.shard, lease.attempts, error,
                    state or "reclaimed elsewhere",
                )
                continue
            self.store.complete_lease(self.name, lease.shard, self.worker_id)
            completed += 1
            _LOG.info(
                "worker %s completed shard %d (%d/%d key(s) executed here)",
                self.worker_id, lease.shard, ran, len(lease.keys),
            )
        return WorkerSummary(
            campaign=self.name,
            worker_id=self.worker_id,
            shards=self.shard_count,
            completed=completed,
            reclaimed=reclaimed,
            lost=lost,
            failed=failed,
            executed=executed,
            elapsed_seconds=time.perf_counter() - started,
        )

    def _drain(self, lease: LeaseRow) -> int:
        """Execute one shard's missing simulations, heartbeating between
        sub-batches; raises :class:`LeaseLost` if a renewal fails."""
        specs = [self._plan[key] for key in lease.keys if key in self._plan]
        runner = SweepRunner(
            store=self.store, jobs=self.jobs, track_memory=self.track_memory
        )
        executed = 0
        last_beat = self._clock()
        step = max(1, self.jobs)
        for offset in range(0, len(specs), step):
            executed += runner.ensure(specs[offset:offset + step])
            now = self._clock()
            if now - last_beat >= self.heartbeat_interval:
                if not self.store.renew_lease(
                    self.name,
                    lease.shard,
                    self.worker_id,
                    now=now,
                    duration=self.lease_duration,
                ):
                    raise LeaseLost(
                        f"shard {lease.shard} of campaign {self.name!r}"
                    )
                last_beat = now
        return executed
