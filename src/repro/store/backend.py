"""Experiment warehouse backends: where completed simulation runs live.

The sweep engine (:mod:`repro.sim.sweep`) memoizes every completed
:class:`~repro.sim.simulator.SimulationResult` under a stable content hash of
the scenario.  This module owns the *persistence* of those records behind one
small interface, :class:`ResultStore`, with two interchangeable backends:

:class:`JsonDirStore`
    The original zero-dependency layout: one ``<key>.json`` file per run in a
    flat directory.  Files are written atomically (temp file + ``os.replace``)
    so a killed worker can never leave a truncated entry under the final name,
    and any unreadable file is treated as a miss, never an error.

:class:`SqliteStore`
    The *experiment warehouse*: a single SQLite database (stdlib ``sqlite3``,
    WAL journal, busy-timeout retries) holding one row per run with the
    scenario's identifying fields (tracker / workload / attack / NRH / seed)
    broken out into indexed columns, plus the code version, per-run wall-clock
    timing, and a campaign-manifest table.  This is what makes thousands of
    runs queryable, aggregatable, diffable and resumable
    (:mod:`repro.store.campaign`, :mod:`repro.store.query`).

The schema is versioned (``PRAGMA user_version``) and migrated in place;
opening a database written by a newer schema than this code understands is an
error rather than silent corruption.  :func:`open_store` picks the backend
from the target's form: a ``.sqlite`` / ``.sqlite3`` / ``.db`` path opens the
warehouse, anything else a JSON directory -- which is how the existing
``--cache-dir`` flags gained warehouse support without changing any caller.

Both backends share one durability contract: :meth:`ResultStore.put` degrades
to a no-op on storage failure (full disk, locked database) instead of
raising, because losing a cache write must never lose the in-memory
simulation result it mirrors.  Campaign-manifest writes, by contrast, *do*
raise: a campaign that cannot checkpoint is not resumable and must say so.
The same is true of the warehouse's campaign-*lease* operations (schema v4,
used by :mod:`repro.store.worker` to let many processes or hosts drain one
campaign): a claim or heartbeat that failed silently would let two workers
believe they own the same shard.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import os
import sqlite3
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

#: Current on-disk schema of :class:`SqliteStore` (``PRAGMA user_version``).
SCHEMA_VERSION = 4

#: Path suffixes that select the SQLite warehouse backend in :func:`open_store`.
SQLITE_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: Scenario-description keys broken out into indexed warehouse columns.
SCENARIO_COLUMNS = ("tracker", "workload", "attack", "nrh", "seed")


def utc_now() -> str:
    """Current UTC time in ISO-8601 form (the warehouse timestamp format)."""
    return datetime.datetime.now(datetime.timezone.utc).isoformat(
        timespec="seconds"
    )


@dataclass(frozen=True)
class RunRecord:
    """One completed simulation run, as the warehouse stores it.

    ``scenario`` is the spec's :meth:`~repro.sim.sweep.ScenarioSpec.describe`
    dictionary and ``result`` the serialized
    :class:`~repro.sim.simulator.SimulationResult`; both are plain
    JSON-compatible values.  ``elapsed_seconds`` is the wall-clock cost of the
    simulation that produced the result (``None`` for records imported from
    caches that predate timing capture); ``peak_memory_bytes`` the worker's
    ``tracemalloc`` peak, captured only when memory tracking was requested
    (it roughly halves simulation speed).
    """

    key: str
    code_version: str
    scenario: dict
    result: dict
    elapsed_seconds: float | None = None
    peak_memory_bytes: int | None = None
    created_at: str | None = None

    def scenario_field(self, name: str):
        """One identifying scenario field (``None`` when absent)."""
        value = self.scenario.get(name)
        # Core-plan scenarios have no single attack; classic benign runs
        # store an explicit null.  Both surface as None.
        return value


@dataclass(frozen=True)
class LeaseRow:
    """One shard's lease state inside a distributed campaign drain.

    A *shard* is a fixed slice of a campaign's unique simulation keys; the
    lease row is the single source of truth about who is draining it.  A
    shard is ``pending`` until a worker claims it, ``leased`` while a worker
    holds it (the lease expires at ``deadline``, expressed on the claiming
    worker's clock), ``done`` once its results are committed, and
    ``quarantined`` when it has burned through its attempt budget -- the
    poison-shard exit that keeps one crashing scenario from wedging the
    whole campaign.  ``reclaimed`` is per-claim bookkeeping (this claim took
    over an expired lease from a dead worker), not a stored column.
    """

    campaign: str
    shard: int
    keys: tuple[str, ...]
    state: str
    worker: str | None
    deadline: float | None
    heartbeats: int
    attempts: int
    reclaims: int
    last_error: str | None
    acquired_at: str | None
    completed_at: str | None
    reclaimed: bool = False


#: Lease states a shard moves through (see :class:`LeaseRow`).
LEASE_STATES = ("pending", "leased", "done", "quarantined")

#: Lease states in which no further work will happen on a shard.
TERMINAL_LEASE_STATES = ("done", "quarantined")


class ResultStore(ABC):
    """Persistence interface for completed runs and campaign manifests.

    Implementations must be safe against concurrent writers in *separate*
    processes each holding their own store instance (the process-pool and
    multi-invocation reality); a single instance is not required to be
    thread-safe.
    """

    #: Whether the backend can coordinate distributed campaign workers.
    #: Only the SQLite warehouse has the lease table (and the transactional
    #: claim path leases need); the JSON directory layout cannot provide an
    #: atomic claim, so ``repro.store.worker`` refuses it up front.
    supports_leases = False

    # -- run records ---------------------------------------------------- #

    @abstractmethod
    def get(self, key: str) -> RunRecord | None:
        """The record stored under ``key``, or ``None`` (missing/unreadable)."""

    @abstractmethod
    def put(self, record: RunRecord) -> None:
        """Store (or replace) one record.  Must not raise on storage failure."""

    @abstractmethod
    def keys(self) -> set[str]:
        """Keys of every stored record."""

    @abstractmethod
    def records(self) -> Iterator[RunRecord]:
        """Iterate over every readable stored record."""

    @abstractmethod
    def delete(self, keys: Iterable[str]) -> int:
        """Delete the given keys; returns how many existed."""

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return len(self.keys())

    def query(
        self,
        tracker: str | None = None,
        workload: str | None = None,
        attack: str | None = None,
        nrh: int | None = None,
        code_version: str | None = None,
        limit: int | None = None,
        offset: int = 0,
    ) -> list[RunRecord]:
        """Records matching every given scenario filter (``None`` = any).

        Results are ordered by key, so ``limit``/``offset`` paginate a large
        result set deterministically: page N+1 starts exactly where page N
        stopped, whatever process asks.  The generic implementation scans
        :meth:`records`; the SQLite backend overrides it with an indexed
        ``WHERE`` clause plus ``LIMIT``/``OFFSET``.
        """
        filters = {
            "tracker": tracker,
            "workload": workload,
            "attack": attack,
            "nrh": nrh,
        }
        offset = max(0, int(offset))
        matched: list[RunRecord] = []
        skipped = 0
        for record in self.records():
            if code_version is not None and record.code_version != code_version:
                continue
            if any(
                wanted is not None and record.scenario_field(name) != wanted
                for name, wanted in filters.items()
            ):
                continue
            if skipped < offset:
                skipped += 1
                continue
            matched.append(record)
            if limit is not None and len(matched) >= limit:
                break
        return matched

    def purge_other_code_versions(self, keep: str) -> int:
        """Delete every record whose code version is not ``keep``."""
        stale = [
            record.key for record in self.records()
            if record.code_version != keep
        ]
        return self.delete(stale)

    def count_other_code_versions(self, keep: str) -> int:
        """How many records :meth:`purge_other_code_versions` would delete.

        The generic implementation scans; the SQLite backend answers from
        the ``code_version`` index.
        """
        return sum(
            1 for record in self.records() if record.code_version != keep
        )

    # -- metrics time-series -------------------------------------------- #

    def put_metrics(
        self, key: str, series: Iterable[tuple[str, float, float]]
    ) -> None:
        """Store ``(metric, t_ns, value)`` samples for a run (replace mode).

        The generic implementation is a no-op so backends without a metrics
        plane keep satisfying the interface; like :meth:`put`, metric writes
        must never raise on storage failure.
        """

    def get_metrics(
        self, key: str, metric: str | None = None
    ) -> dict[str, list[tuple[float, float]]]:
        """Stored time-series for a run: ``{metric: [(t_ns, value), ...]}``."""
        return {}

    def metrics_keys(self) -> set[str]:
        """Run keys that have metrics stored."""
        return set()

    # -- campaign manifests --------------------------------------------- #

    @abstractmethod
    def save_campaign(self, name: str, manifest: dict) -> None:
        """Persist a campaign manifest (raises on storage failure)."""

    @abstractmethod
    def load_campaign(self, name: str) -> dict | None:
        """The manifest saved under ``name``, or ``None``."""

    @abstractmethod
    def campaign_names(self) -> tuple[str, ...]:
        """Names of every saved campaign, sorted."""

    def create_campaign(self, name: str, manifest: dict) -> tuple[dict, bool]:
        """Save ``manifest`` unless a campaign ``name`` already exists.

        Returns ``(manifest, created)``: the stored manifest (the existing
        one if the name was taken) and whether this call created it.  The
        generic load-then-save implementation is best-effort; the SQLite
        backend overrides it with an atomic first-writer-wins transaction so
        concurrent submitters of the same suite converge on one manifest.
        """
        existing = self.load_campaign(name)
        if existing is not None:
            return existing, False
        self.save_campaign(name, manifest)
        return manifest, True

    @abstractmethod
    def delete_campaign(self, name: str) -> bool:
        """Delete one campaign manifest; returns whether it existed."""

    # -- lifecycle ------------------------------------------------------ #

    def close(self) -> None:
        """Release any underlying resources (idempotent)."""

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# JSON-directory backend (the legacy cache layout)
# --------------------------------------------------------------------------- #


class JsonDirStore(ResultStore):
    """One ``<key>.json`` file per run; campaigns under ``campaigns/``.

    This is byte-compatible with the cache directories written before the
    warehouse existed: the payload keys ``code_version`` / ``scenario`` /
    ``result`` are unchanged, records written by older code simply have no
    ``elapsed_seconds`` / ``created_at``.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    # -- run records ---------------------------------------------------- #

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> RunRecord | None:
        return self._read(self._path(key), key)

    def _read(self, path: Path, key: str) -> RunRecord | None:
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
            return RunRecord(
                key=key,
                code_version=payload["code_version"],
                scenario=dict(payload.get("scenario") or {}),
                result=payload["result"],
                elapsed_seconds=payload.get("elapsed_seconds"),
                peak_memory_bytes=payload.get("peak_memory_bytes"),
                created_at=payload.get("created_at"),
            )
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(self, record: RunRecord) -> None:
        payload = {
            "code_version": record.code_version,
            "scenario": record.scenario,
            "result": record.result,
        }
        if record.elapsed_seconds is not None:
            payload["elapsed_seconds"] = record.elapsed_seconds
        if record.peak_memory_bytes is not None:
            payload["peak_memory_bytes"] = record.peak_memory_bytes
        payload["created_at"] = record.created_at or utc_now()
        # Write-then-rename so a crashed or concurrent writer can never leave
        # a half-written file behind under the final name.
        tmp_path = self._path(record.key).with_suffix(f".tmp.{os.getpid()}")
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self._path(record.key))
        except (OSError, TypeError, ValueError):
            # An unwritable or full store degrades to a cache-less sweep;
            # simulation results already in memory are never lost.
            try:
                tmp_path.unlink(missing_ok=True)
            except OSError:
                pass

    def keys(self) -> set[str]:
        try:
            return {path.stem for path in self.root.glob("*.json")}
        except OSError:
            return set()

    def records(self) -> Iterator[RunRecord]:
        for key in sorted(self.keys()):
            record = self.get(key)
            if record is not None:
                yield record

    def delete(self, keys: Iterable[str]) -> int:
        deleted = 0
        for key in keys:
            try:
                self._path(key).unlink()
                deleted += 1
            except OSError:
                pass
            try:
                self._metrics_path(key).unlink()
            except OSError:
                pass
        return deleted

    # -- metrics time-series -------------------------------------------- #

    # Metrics live in their own subdirectory: keys() globs ``*.json`` at the
    # root, so a sidecar next to the run file would surface as a bogus key.
    @property
    def _metrics_dir(self) -> Path:
        return self.root / "metrics"

    def _metrics_path(self, key: str) -> Path:
        return self._metrics_dir / f"{key}.json"

    def put_metrics(
        self, key: str, series: Iterable[tuple[str, float, float]]
    ) -> None:
        tmp_path = self._metrics_path(key).with_suffix(f".tmp.{os.getpid()}")
        try:
            rows = [
                [str(metric), float(t_ns), float(value)]
                for metric, t_ns, value in series
            ]
            self._metrics_dir.mkdir(parents=True, exist_ok=True)
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(rows, handle)
            os.replace(tmp_path, self._metrics_path(key))
        except (OSError, TypeError, ValueError):
            try:
                tmp_path.unlink(missing_ok=True)
            except OSError:
                pass

    def get_metrics(
        self, key: str, metric: str | None = None
    ) -> dict[str, list[tuple[float, float]]]:
        try:
            with open(self._metrics_path(key), encoding="utf-8") as handle:
                rows = json.load(handle)
        except (OSError, ValueError):
            return {}
        series: dict[str, list[tuple[float, float]]] = {}
        try:
            for name, t_ns, value in rows:
                if metric is not None and name != metric:
                    continue
                series.setdefault(name, []).append((float(t_ns), float(value)))
        except (TypeError, ValueError):
            return {}
        return series

    def metrics_keys(self) -> set[str]:
        try:
            return {path.stem for path in self._metrics_dir.glob("*.json")}
        except OSError:
            return set()

    # -- campaign manifests --------------------------------------------- #

    @property
    def _campaign_dir(self) -> Path:
        return self.root / "campaigns"

    def _campaign_path(self, name: str) -> Path:
        return self._campaign_dir / f"{name}.json"

    def save_campaign(self, name: str, manifest: dict) -> None:
        self._campaign_dir.mkdir(parents=True, exist_ok=True)
        tmp_path = self._campaign_path(name).with_suffix(f".tmp.{os.getpid()}")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        os.replace(tmp_path, self._campaign_path(name))

    def load_campaign(self, name: str) -> dict | None:
        try:
            with open(self._campaign_path(name), encoding="utf-8") as handle:
                manifest = json.load(handle)
            return manifest if isinstance(manifest, dict) else None
        except (OSError, ValueError):
            return None

    def campaign_names(self) -> tuple[str, ...]:
        try:
            return tuple(
                sorted(path.stem for path in self._campaign_dir.glob("*.json"))
            )
        except OSError:
            return ()

    def delete_campaign(self, name: str) -> bool:
        try:
            self._campaign_path(name).unlink()
            return True
        except OSError:
            return False


# --------------------------------------------------------------------------- #
# SQLite warehouse backend
# --------------------------------------------------------------------------- #

#: The original (v1) warehouse schema, kept so migration from databases
#: written by it stays covered by tests.  v1 stored only the opaque payload;
#: v2 broke the identifying scenario fields out into indexed columns, added
#: per-run timing, and introduced the campaign-manifest table.
V1_SCHEMA = """
CREATE TABLE runs (
    key TEXT PRIMARY KEY,
    code_version TEXT NOT NULL,
    scenario TEXT NOT NULL,
    result TEXT NOT NULL,
    created_at TEXT NOT NULL
);
"""

#: v2 DDL as individual statements: they must run through ``execute`` (never
#: ``executescript``, whose implicit COMMIT would break the single-transaction
#: schema setup in :meth:`SqliteStore._ensure_schema`).
_V2_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS runs (
        key TEXT PRIMARY KEY,
        code_version TEXT NOT NULL,
        scenario TEXT NOT NULL,
        result TEXT NOT NULL,
        tracker TEXT,
        workload TEXT,
        attack TEXT,
        nrh INTEGER,
        seed INTEGER,
        elapsed_seconds REAL,
        created_at TEXT NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS runs_by_code_version ON runs (code_version)",
    "CREATE INDEX IF NOT EXISTS runs_by_scenario ON runs "
    "(tracker, workload, attack)",
    """
    CREATE TABLE IF NOT EXISTS campaigns (
        name TEXT PRIMARY KEY,
        created_at TEXT NOT NULL,
        manifest TEXT NOT NULL
    )
    """,
)


#: Metrics time-series DDL (new in v3).  The composite primary key also
#: serves as the per-run lookup index, so no extra index is needed.
_METRICS_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS metrics (
        key TEXT NOT NULL,
        metric TEXT NOT NULL,
        t_ns REAL NOT NULL,
        value REAL NOT NULL,
        PRIMARY KEY (key, metric, t_ns)
    )
    """,
)

#: Campaign-lease DDL (new in v4).  One row per campaign shard; ``keys`` is
#: the JSON list of simulation keys the shard covers, persisted so every
#: worker -- whatever sharding flags it was launched with -- drains the
#: exact plan the first worker wrote.
_LEASES_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS leases (
        campaign TEXT NOT NULL,
        shard INTEGER NOT NULL,
        keys TEXT NOT NULL,
        state TEXT NOT NULL DEFAULT 'pending',
        worker TEXT,
        deadline REAL,
        heartbeats INTEGER NOT NULL DEFAULT 0,
        attempts INTEGER NOT NULL DEFAULT 0,
        reclaims INTEGER NOT NULL DEFAULT 0,
        last_error TEXT,
        acquired_at TEXT,
        completed_at TEXT,
        PRIMARY KEY (campaign, shard)
    )
    """,
    "CREATE INDEX IF NOT EXISTS leases_by_state ON leases (campaign, state)",
)

#: v3 DDL: v2 plus per-run peak memory and the metrics time-series table.
_V3_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS runs (
        key TEXT PRIMARY KEY,
        code_version TEXT NOT NULL,
        scenario TEXT NOT NULL,
        result TEXT NOT NULL,
        tracker TEXT,
        workload TEXT,
        attack TEXT,
        nrh INTEGER,
        seed INTEGER,
        elapsed_seconds REAL,
        peak_memory_bytes INTEGER,
        created_at TEXT NOT NULL
    )
    """,
    "CREATE INDEX IF NOT EXISTS runs_by_code_version ON runs (code_version)",
    "CREATE INDEX IF NOT EXISTS runs_by_scenario ON runs "
    "(tracker, workload, attack)",
    """
    CREATE TABLE IF NOT EXISTS campaigns (
        name TEXT PRIMARY KEY,
        created_at TEXT NOT NULL,
        manifest TEXT NOT NULL
    )
    """,
) + _METRICS_STATEMENTS

#: v4 DDL: v3 plus the campaign-lease table for distributed workers.
_V4_STATEMENTS = _V3_STATEMENTS + _LEASES_STATEMENTS


def create_schema_v1(connection: sqlite3.Connection) -> None:
    """Create the historical v1 schema (used by the migration tests)."""
    connection.executescript(V1_SCHEMA)
    connection.execute("PRAGMA user_version = 1")
    connection.commit()


def create_schema_v2(connection: sqlite3.Connection) -> None:
    """Create the historical v2 schema (used by the migration tests)."""
    for statement in _V2_STATEMENTS:
        connection.execute(statement)
    connection.execute("PRAGMA user_version = 2")
    connection.commit()


def create_schema_v3(connection: sqlite3.Connection) -> None:
    """Create the historical v3 schema (used by the migration tests)."""
    for statement in _V3_STATEMENTS:
        connection.execute(statement)
    connection.execute("PRAGMA user_version = 3")
    connection.commit()


def _migrate_v1_to_v2(connection: sqlite3.Connection) -> None:
    """v1 -> v2: scenario columns, per-run timing, campaign manifests."""
    for column, kind in (
        ("tracker", "TEXT"),
        ("workload", "TEXT"),
        ("attack", "TEXT"),
        ("nrh", "INTEGER"),
        ("seed", "INTEGER"),
        ("elapsed_seconds", "REAL"),
    ):
        connection.execute(f"ALTER TABLE runs ADD COLUMN {column} {kind}")
    # Backfill the new columns from the scenario payload of existing rows.
    rows = connection.execute("SELECT key, scenario FROM runs").fetchall()
    for key, scenario_json in rows:
        try:
            scenario = json.loads(scenario_json)
        except ValueError:
            continue
        if not isinstance(scenario, dict):
            continue
        connection.execute(
            "UPDATE runs SET tracker = ?, workload = ?, attack = ?, "
            "nrh = ?, seed = ? WHERE key = ?",
            tuple(scenario.get(column) for column in SCENARIO_COLUMNS) + (key,),
        )
    for statement in _V2_STATEMENTS:
        connection.execute(statement)


def _migrate_v2_to_v3(connection: sqlite3.Connection) -> None:
    """v2 -> v3: per-run peak memory and the metrics time-series table."""
    connection.execute(
        "ALTER TABLE runs ADD COLUMN peak_memory_bytes INTEGER"
    )
    for statement in _METRICS_STATEMENTS:
        connection.execute(statement)


def _migrate_v3_to_v4(connection: sqlite3.Connection) -> None:
    """v3 -> v4: the campaign-lease table for distributed workers."""
    for statement in _LEASES_STATEMENTS:
        connection.execute(statement)


#: Migration steps, keyed by the schema version they upgrade *from*.
MIGRATIONS = {1: _migrate_v1_to_v2, 2: _migrate_v2_to_v3, 3: _migrate_v3_to_v4}


class SqliteStore(ResultStore):
    """The experiment warehouse: one SQLite database of completed runs.

    The database is opened in WAL mode with a generous busy timeout so that
    several pool-feeding processes can append concurrently; every ``put`` is
    one ``INSERT OR REPLACE`` transaction.  The schema version lives in
    ``PRAGMA user_version`` and is migrated forward on open.
    """

    supports_leases = True

    def __init__(self, path: str | os.PathLike, timeout: float = 30.0):
        self.path = Path(path)
        if self.path.parent and not self.path.parent.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
        # A store instance is not thread-safe (see the class contract), but
        # it may legitimately be created on one thread and used on another
        # (worker pools); disable sqlite3's same-thread assertion.
        self._connection = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False
        )
        self._connection.execute("PRAGMA busy_timeout = %d" % int(timeout * 1000))
        try:
            self._connection.execute("PRAGMA journal_mode = WAL")
            self._connection.execute("PRAGMA synchronous = NORMAL")
        except sqlite3.Error:  # pragma: no cover - filesystem-dependent
            pass  # e.g. WAL unavailable on network filesystems; stay journaled
        self._ensure_schema()

    # -- schema --------------------------------------------------------- #

    def _schema_version(self) -> int:
        return self._connection.execute("PRAGMA user_version").fetchone()[0]

    def _ensure_schema(self) -> None:
        # BEGIN IMMEDIATE serialises concurrent creators: only one process
        # runs the DDL; the others wait on the write lock and then see the
        # finished schema.  Everything through the user_version bump happens
        # in this one transaction (plain execute only -- executescript would
        # COMMIT implicitly), so a crash mid-migration rolls back cleanly and
        # the next open retries from the original version.
        self._connection.execute("BEGIN IMMEDIATE")
        try:
            version = self._schema_version()
            if version > SCHEMA_VERSION:
                raise ValueError(
                    f"warehouse {self.path} has schema version {version}, "
                    f"newer than this code understands ({SCHEMA_VERSION}); "
                    "refusing to touch it"
                )
            if version == 0:
                for statement in _V4_STATEMENTS:
                    self._connection.execute(statement)
            else:
                while version < SCHEMA_VERSION:
                    MIGRATIONS[version](self._connection)
                    version += 1
            self._connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
            self._connection.commit()
        except BaseException:
            self._connection.rollback()
            raise

    # -- run records ---------------------------------------------------- #

    def _record_from_row(self, row) -> RunRecord | None:
        key, code_version, scenario_json, result_json, elapsed, peak, created = row
        try:
            scenario = json.loads(scenario_json)
            result = json.loads(result_json)
        except ValueError:
            return None
        return RunRecord(
            key=key,
            code_version=code_version,
            scenario=scenario if isinstance(scenario, dict) else {},
            result=result,
            elapsed_seconds=elapsed,
            peak_memory_bytes=peak,
            created_at=created,
        )

    _SELECT = (
        "SELECT key, code_version, scenario, result, elapsed_seconds, "
        "peak_memory_bytes, created_at FROM runs"
    )

    def get(self, key: str) -> RunRecord | None:
        try:
            row = self._connection.execute(
                f"{self._SELECT} WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error:
            return None
        return self._record_from_row(row) if row is not None else None

    def put(self, record: RunRecord) -> None:
        try:
            self._connection.execute(
                "INSERT OR REPLACE INTO runs (key, code_version, scenario, "
                "result, tracker, workload, attack, nrh, seed, "
                "elapsed_seconds, peak_memory_bytes, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.key,
                    record.code_version,
                    json.dumps(record.scenario, default=str),
                    json.dumps(record.result),
                    record.scenario_field("tracker"),
                    record.scenario_field("workload"),
                    record.scenario_field("attack"),
                    record.scenario_field("nrh"),
                    record.scenario_field("seed"),
                    record.elapsed_seconds,
                    record.peak_memory_bytes,
                    record.created_at or utc_now(),
                ),
            )
            self._connection.commit()
        except (sqlite3.Error, TypeError, ValueError):
            # Same contract as the JSON backend: a failed store write
            # degrades to a miss, it never loses the in-memory result.
            try:
                self._connection.rollback()
            except sqlite3.Error:  # pragma: no cover - double failure
                pass

    def keys(self) -> set[str]:
        try:
            rows = self._connection.execute("SELECT key FROM runs").fetchall()
        except sqlite3.Error:
            return set()
        return {row[0] for row in rows}

    def records(self) -> Iterator[RunRecord]:
        rows = self._connection.execute(f"{self._SELECT} ORDER BY key").fetchall()
        for row in rows:
            record = self._record_from_row(row)
            if record is not None:
                yield record

    def delete(self, keys: Iterable[str]) -> int:
        keys = list(keys)
        if not keys:
            return 0
        deleted = 0
        for key in keys:
            cursor = self._connection.execute(
                "DELETE FROM runs WHERE key = ?", (key,)
            )
            deleted += cursor.rowcount
            self._connection.execute(
                "DELETE FROM metrics WHERE key = ?", (key,)
            )
        self._connection.commit()
        return deleted

    # -- metrics time-series -------------------------------------------- #

    def put_metrics(
        self, key: str, series: Iterable[tuple[str, float, float]]
    ) -> None:
        try:
            self._connection.execute(
                "DELETE FROM metrics WHERE key = ?", (key,)
            )
            self._connection.executemany(
                "INSERT INTO metrics (key, metric, t_ns, value) "
                "VALUES (?, ?, ?, ?)",
                [
                    (key, str(metric), float(t_ns), float(value))
                    for metric, t_ns, value in series
                ],
            )
            self._connection.commit()
        except (sqlite3.Error, TypeError, ValueError):
            # Same degrade-to-miss contract as put().
            try:
                self._connection.rollback()
            except sqlite3.Error:  # pragma: no cover - double failure
                pass

    def get_metrics(
        self, key: str, metric: str | None = None
    ) -> dict[str, list[tuple[float, float]]]:
        sql = "SELECT metric, t_ns, value FROM metrics WHERE key = ?"
        values: list = [key]
        if metric is not None:
            sql += " AND metric = ?"
            values.append(metric)
        sql += " ORDER BY metric, t_ns"
        try:
            rows = self._connection.execute(sql, values).fetchall()
        except sqlite3.Error:
            return {}
        series: dict[str, list[tuple[float, float]]] = {}
        for name, t_ns, value in rows:
            series.setdefault(name, []).append((t_ns, value))
        return series

    def metrics_keys(self) -> set[str]:
        try:
            rows = self._connection.execute(
                "SELECT DISTINCT key FROM metrics"
            ).fetchall()
        except sqlite3.Error:
            return set()
        return {row[0] for row in rows}

    def query(
        self,
        tracker: str | None = None,
        workload: str | None = None,
        attack: str | None = None,
        nrh: int | None = None,
        code_version: str | None = None,
        limit: int | None = None,
        offset: int = 0,
    ) -> list[RunRecord]:
        clauses, values = [], []
        for column, wanted in (
            ("tracker", tracker),
            ("workload", workload),
            ("attack", attack),
            ("nrh", nrh),
            ("code_version", code_version),
        ):
            if wanted is not None:
                clauses.append(f"{column} = ?")
                values.append(wanted)
        sql = self._SELECT
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY key"
        offset = max(0, int(offset))
        if limit is not None:
            sql += " LIMIT ? OFFSET ?"
            values.extend((int(limit), offset))
        elif offset:
            # sqlite requires a LIMIT clause before OFFSET; -1 means "all".
            sql += " LIMIT -1 OFFSET ?"
            values.append(offset)
        rows = self._connection.execute(sql, values).fetchall()
        records = (self._record_from_row(row) for row in rows)
        return [record for record in records if record is not None]

    def purge_other_code_versions(self, keep: str) -> int:
        cursor = self._connection.execute(
            "DELETE FROM runs WHERE code_version != ?", (keep,)
        )
        self._connection.commit()
        return cursor.rowcount

    def count_other_code_versions(self, keep: str) -> int:
        row = self._connection.execute(
            "SELECT COUNT(*) FROM runs WHERE code_version != ?", (keep,)
        ).fetchone()
        return row[0]

    # -- campaign manifests --------------------------------------------- #

    def save_campaign(self, name: str, manifest: dict) -> None:
        self._connection.execute(
            "INSERT OR REPLACE INTO campaigns (name, created_at, manifest) "
            "VALUES (?, ?, ?)",
            (
                name,
                manifest.get("created_at") or utc_now(),
                json.dumps(manifest, default=str),
            ),
        )
        self._connection.commit()

    def create_campaign(self, name: str, manifest: dict) -> tuple[dict, bool]:
        # Coordination write like the lease operations below: the write lock
        # serialises racing submitters so exactly one manifest is created and
        # every later caller is handed the stored one.
        self._begin_immediate()
        try:
            row = self._connection.execute(
                "SELECT manifest FROM campaigns WHERE name = ?", (name,)
            ).fetchone()
            if row is not None:
                self._connection.commit()
                try:
                    existing = json.loads(row[0])
                except ValueError:
                    existing = None
                if isinstance(existing, dict):
                    return existing, False
                # Unreadable stored manifest: fall through and replace it.
                self._begin_immediate()
            self._connection.execute(
                "INSERT OR REPLACE INTO campaigns (name, created_at, manifest) "
                "VALUES (?, ?, ?)",
                (
                    name,
                    manifest.get("created_at") or utc_now(),
                    json.dumps(manifest, default=str),
                ),
            )
            self._connection.commit()
        except Exception:
            self._connection.rollback()
            raise
        return manifest, True

    def load_campaign(self, name: str) -> dict | None:
        row = self._connection.execute(
            "SELECT manifest FROM campaigns WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            return None
        try:
            manifest = json.loads(row[0])
        except ValueError:
            return None
        return manifest if isinstance(manifest, dict) else None

    def campaign_names(self) -> tuple[str, ...]:
        rows = self._connection.execute(
            "SELECT name FROM campaigns ORDER BY name"
        ).fetchall()
        return tuple(row[0] for row in rows)

    def delete_campaign(self, name: str) -> bool:
        cursor = self._connection.execute(
            "DELETE FROM campaigns WHERE name = ?", (name,)
        )
        # Lease rows describe work for the deleted manifest; orphaning them
        # would make a later same-named campaign drain the wrong shard plan.
        self._connection.execute(
            "DELETE FROM leases WHERE campaign = ?", (name,)
        )
        self._connection.commit()
        return cursor.rowcount > 0

    # -- campaign leases ------------------------------------------------ #
    #
    # Unlike run-record writes, lease operations are *coordination*: a claim
    # or heartbeat that silently fails would let two workers drain the same
    # shard believing they own it, so these methods raise on storage failure
    # instead of degrading.  Wall-clock values (``now``/``deadline``) are
    # supplied by the caller, never read here, which keeps every transition
    # testable under a simulated clock.

    _LEASE_SELECT = (
        "SELECT campaign, shard, keys, state, worker, deadline, heartbeats, "
        "attempts, reclaims, last_error, acquired_at, completed_at FROM leases"
    )

    def _lease_from_row(self, row, reclaimed: bool = False) -> LeaseRow:
        (campaign, shard, keys_json, state, worker, deadline, heartbeats,
         attempts, reclaims, last_error, acquired_at, completed_at) = row
        try:
            keys = tuple(str(key) for key in json.loads(keys_json))
        except (ValueError, TypeError):
            keys = ()
        return LeaseRow(
            campaign=campaign,
            shard=shard,
            keys=keys,
            state=state,
            worker=worker,
            deadline=deadline,
            heartbeats=heartbeats,
            attempts=attempts,
            reclaims=reclaims,
            last_error=last_error,
            acquired_at=acquired_at,
            completed_at=completed_at,
            reclaimed=reclaimed,
        )

    def _begin_immediate(self) -> None:
        # Take the write lock up front so read-check-update sequences are
        # serialised across worker processes.  Any implicit transaction a
        # previous statement left open must be closed first -- sqlite3
        # refuses nested BEGINs.
        if self._connection.in_transaction:  # pragma: no cover - defensive
            self._connection.commit()
        self._connection.execute("BEGIN IMMEDIATE")

    def init_leases(self, campaign: str, shards: "Sequence[Sequence[str]]") -> int:
        """Create one pending lease row per shard; first caller wins.

        Idempotent under racing workers: whoever gets the write lock first
        persists the shard plan, everyone else adopts the existing rows (the
        stored ``keys`` are authoritative, not the caller's plan).  Returns
        the number of shard rows the campaign has after the call.
        """
        self._begin_immediate()
        try:
            existing = self._connection.execute(
                "SELECT COUNT(*) FROM leases WHERE campaign = ?", (campaign,)
            ).fetchone()[0]
            if existing:
                self._connection.commit()
                return existing
            self._connection.executemany(
                "INSERT INTO leases (campaign, shard, keys) VALUES (?, ?, ?)",
                [
                    (campaign, index, json.dumps(list(keys)))
                    for index, keys in enumerate(shards)
                ],
            )
            self._connection.commit()
            return len(list(shards))
        except BaseException:
            self._connection.rollback()
            raise

    def claim_lease(
        self,
        campaign: str,
        worker: str,
        now: float,
        duration: float,
        max_attempts: int = 3,
    ) -> LeaseRow | None:
        """Atomically claim the next drainable shard, or ``None``.

        A shard is drainable when it is ``pending`` or its lease expired
        (``deadline < now`` -- the holder died or stalled).  The claim,
        executed under ``BEGIN IMMEDIATE`` so racing workers serialise on
        the write lock, bumps the attempt counter and resets the heartbeat
        count; taking over an expired lease additionally bumps ``reclaims``
        and marks the returned row ``reclaimed``.  Before picking a shard,
        expired leases that already burned ``max_attempts`` attempts are
        quarantined so a poison shard cannot be claimed forever.
        """
        self._begin_immediate()
        try:
            self._connection.execute(
                "UPDATE leases SET state = 'quarantined', worker = NULL, "
                "deadline = NULL WHERE campaign = ? AND state = 'leased' "
                "AND deadline < ? AND attempts >= ?",
                (campaign, now, int(max_attempts)),
            )
            row = self._connection.execute(
                f"{self._LEASE_SELECT} WHERE campaign = ? AND "
                "(state = 'pending' OR (state = 'leased' AND deadline < ?)) "
                "ORDER BY shard LIMIT 1",
                (campaign, now),
            ).fetchone()
            if row is None:
                self._connection.commit()
                return None
            previous = self._lease_from_row(row)
            reclaimed = previous.state == "leased"
            deadline = now + float(duration)
            acquired_at = utc_now()
            self._connection.execute(
                "UPDATE leases SET state = 'leased', worker = ?, "
                "deadline = ?, heartbeats = 0, attempts = attempts + 1, "
                "reclaims = reclaims + ?, acquired_at = ? "
                "WHERE campaign = ? AND shard = ?",
                (worker, deadline, 1 if reclaimed else 0, acquired_at,
                 campaign, previous.shard),
            )
            self._connection.commit()
        except BaseException:
            self._connection.rollback()
            raise
        return dataclasses.replace(
            previous,
            state="leased",
            worker=worker,
            deadline=deadline,
            heartbeats=0,
            attempts=previous.attempts + 1,
            reclaims=previous.reclaims + (1 if reclaimed else 0),
            acquired_at=acquired_at,
            reclaimed=reclaimed,
        )

    def renew_lease(
        self, campaign: str, shard: int, worker: str, now: float, duration: float
    ) -> bool:
        """Heartbeat: extend a held lease; ``False`` means the lease is gone.

        Renewal only succeeds while the row still names ``worker`` as the
        leased holder -- after a reclaim the previous owner's heartbeat
        fails, which is how a worker that lost its lease mid-drain finds
        out it must abandon the shard.
        """
        cursor = self._connection.execute(
            "UPDATE leases SET deadline = ?, heartbeats = heartbeats + 1 "
            "WHERE campaign = ? AND shard = ? AND worker = ? "
            "AND state = 'leased'",
            (now + float(duration), campaign, shard, worker),
        )
        self._connection.commit()
        return cursor.rowcount > 0

    def complete_lease(self, campaign: str, shard: int, worker: str) -> bool:
        """Mark a shard done; idempotent (re-completing is a no-op).

        Completion is deliberately *not* conditioned on still holding the
        lease: by the time a worker completes a shard every result is
        already committed under its scenario hash, so the work is done even
        if the lease expired and was reclaimed mid-drain.  Returns whether
        this call performed the transition.
        """
        cursor = self._connection.execute(
            "UPDATE leases SET state = 'done', worker = ?, deadline = NULL, "
            "last_error = NULL, completed_at = ? "
            "WHERE campaign = ? AND shard = ? AND state != 'done'",
            (worker, utc_now(), campaign, shard),
        )
        self._connection.commit()
        return cursor.rowcount > 0

    def release_lease(
        self,
        campaign: str,
        shard: int,
        worker: str,
        error: str | None = None,
        quarantine_after: int | None = None,
    ) -> str | None:
        """Give a held shard back: to the pool, or to quarantine.

        The graceful-failure path (shard raised, worker interrupted): the
        shard returns to ``pending`` for another attempt, or -- when it has
        already burned ``quarantine_after`` attempts -- is quarantined with
        ``error`` recorded.  Returns the resulting state, or ``None`` when
        ``worker`` no longer held the lease (it expired and was reclaimed,
        so the shard is not this worker's to release).
        """
        self._begin_immediate()
        try:
            row = self._connection.execute(
                "SELECT attempts FROM leases WHERE campaign = ? AND shard = ? "
                "AND worker = ? AND state = 'leased'",
                (campaign, shard, worker),
            ).fetchone()
            if row is None:
                self._connection.commit()
                return None
            poisoned = (
                quarantine_after is not None and row[0] >= int(quarantine_after)
            )
            state = "quarantined" if poisoned else "pending"
            self._connection.execute(
                "UPDATE leases SET state = ?, worker = NULL, deadline = NULL, "
                "last_error = ? WHERE campaign = ? AND shard = ?",
                (state, error, campaign, shard),
            )
            self._connection.commit()
            return state
        except BaseException:
            self._connection.rollback()
            raise

    def lease_rows(self, campaign: str) -> list[LeaseRow]:
        """Every lease row of a campaign, in shard order."""
        rows = self._connection.execute(
            f"{self._LEASE_SELECT} WHERE campaign = ? ORDER BY shard",
            (campaign,),
        ).fetchall()
        return [self._lease_from_row(row) for row in rows]

    def lease_summary(self, campaign: str) -> dict | None:
        """Aggregate lease accounting, or ``None`` before any worker joined.

        Returns shard counts by state, total attempts/reclaims, and the
        per-worker progress map ``{worker: {"completed": n, "active": m}}``
        (``completed`` counts shards whose *final* completion the worker
        performed; ``active`` its currently leased shards).
        """
        rows = self.lease_rows(campaign)
        if not rows:
            return None
        by_state = {state: 0 for state in LEASE_STATES}
        workers: dict[str, dict[str, int]] = {}
        for row in rows:
            by_state[row.state] = by_state.get(row.state, 0) + 1
            if row.worker is None:
                continue
            progress = workers.setdefault(
                row.worker, {"completed": 0, "active": 0}
            )
            if row.state == "done":
                progress["completed"] += 1
            elif row.state == "leased":
                progress["active"] += 1
        return {
            "shards": len(rows),
            "done": by_state["done"],
            "leased": by_state["leased"],
            "pending": by_state["pending"],
            "quarantined": by_state["quarantined"],
            "attempts": sum(row.attempts for row in rows),
            "reclaims": sum(row.reclaims for row in rows),
            "workers": {name: workers[name] for name in sorted(workers)},
        }

    # -- lifecycle ------------------------------------------------------ #

    def close(self) -> None:
        try:
            self._connection.close()
        except sqlite3.Error:  # pragma: no cover - already closed
            pass


# --------------------------------------------------------------------------- #
# Backend resolution
# --------------------------------------------------------------------------- #


def open_store(
    target: "str | os.PathLike | ResultStore | None",
) -> ResultStore | None:
    """Resolve a store target to a backend instance.

    ``None`` and ``""`` disable storage; an existing :class:`ResultStore` is
    passed through; a path ending in ``.sqlite`` / ``.sqlite3`` / ``.db``
    opens the SQLite warehouse; any other path is a JSON cache directory.
    """
    if target is None or target == "":
        return None
    if isinstance(target, ResultStore):
        return target
    path = Path(target)
    if path.suffix.lower() in SQLITE_SUFFIXES:
        return SqliteStore(path)
    return JsonDirStore(path)
