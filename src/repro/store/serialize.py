"""Machine-readable documents for campaign state.

One serializer per inspection surface -- status, leases, report -- shared by
the CLI's ``--json`` flags and the REST service (:mod:`repro.service`), so a
script scraping ``campaign status --json`` and a client of
``GET /api/v1/campaigns/<name>`` parse the *same* document.  The human table
output of those CLI verbs is rendered separately and is not affected.

Every document is plain JSON-serializable data (dicts, lists, scalars); no
dataclasses or store handles leak out.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.store.backend import LeaseRow
from repro.store.campaign import CampaignStatus


def status_document(status: CampaignStatus) -> dict:
    """The JSON shape of one campaign's completion accounting."""
    return {
        "name": status.name,
        "created_at": status.created_at,
        "code_version": status.code_version,
        "current_code_version": status.current_code_version,
        "source": status.source,
        "entries": status.entries,
        "entries_complete": status.entries_complete,
        "simulations_total": status.simulations_total,
        "simulations_stored": status.simulations_stored,
        "percent": status.percent,
        "state": "complete" if status.complete else "resumable",
        "leases": status.leases,
        "last_run_profile": status.last_run_profile,
    }


def lease_document(rows: Sequence[LeaseRow], summary: dict | None) -> dict:
    """The JSON shape of a campaign's per-shard lease table."""
    return {
        "shards": [
            {
                "shard": row.shard,
                "keys": len(row.keys),
                "state": row.state,
                "worker": row.worker,
                "deadline": row.deadline,
                "heartbeats": row.heartbeats,
                "attempts": row.attempts,
                "reclaims": row.reclaims,
                "last_error": row.last_error,
                "acquired_at": row.acquired_at,
                "completed_at": row.completed_at,
            }
            for row in rows
        ],
        "summary": summary,
    }


def report_document(
    report: dict, offset: int = 0, limit: int | None = None
) -> dict:
    """The JSON shape of a campaign report, with optional row pagination.

    ``report`` is the :func:`repro.store.campaign.campaign_report` dict; rows
    keep their manifest order, so ``offset``/``limit`` slices page through
    them deterministically.  ``next_offset`` is ``None`` on the last page.
    """
    rows = report.get("rows", [])
    total = len(rows)
    offset = max(0, int(offset))
    if limit is not None:
        limit = max(0, int(limit))
        page = rows[offset:offset + limit]
    else:
        page = rows[offset:]
    next_offset = offset + len(page)
    return {
        "campaign": report.get("campaign"),
        "rows": list(page),
        "incomplete_entries": report.get("incomplete_entries", 0),
        "leases": report.get("leases"),
        "total_rows": total,
        "offset": offset,
        "limit": limit,
        "returned": len(page),
        "next_offset": next_offset if next_offset < total else None,
    }
