"""Resumable experiment campaigns over the warehouse.

A *campaign* is a named, persisted execution of a large scenario batch --
typically a suite file or a family cross-product expanding to hundreds or
thousands of :class:`~repro.sim.sweep.ScenarioSpec` objects.  The paper's
evaluation matrix (trackers x attacks x workloads x NRH sweeps) is exactly
this shape, and at that volume three things matter that a one-shot sweep does
not give you:

* **Checkpointing.**  Every completed simulation is committed to the store
  the moment it finishes, so killing the process (Ctrl-C, OOM, preemption)
  loses at most the simulations currently in flight.
* **Resumption.**  Re-running the same campaign recomputes the work plan
  against the store and executes *only* the missing scenario keys; specs
  whose results are already stored are never re-simulated.
* **Accounting.**  The campaign's manifest -- the full list of scenario
  descriptions and their content-hash keys -- is persisted next to the
  results, so progress (:func:`campaign_status`), result tables
  (:func:`campaign_report`) and cross-campaign comparisons
  (:func:`diff_campaigns`) work in any later process, including ones that
  never saw the suite file.

Execution is sharded into batches of ``batch_size`` scenarios; each batch
runs through the ordinary :class:`~repro.sim.sweep.SweepRunner` (insecure
baselines deduplicated within the batch, fan-out over ``jobs`` worker
processes), and a progress callback receives completed/total counts with an
ETA extrapolated from the measured simulation rate.

Campaign identity is content-based: the manifest records each scenario's
cache key, which covers the full system configuration and the simulator code
version.  Re-running a campaign whose suite (or the simulator itself)
changed is therefore refused unless ``force=True`` replaces the manifest --
results from both versions stay in the store, which is what makes
:func:`diff_campaigns` across code versions possible.
"""

from __future__ import annotations

import json
import logging
import re
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.sim.metrics import slowdown_percent
from repro.sim.simulator import SimulationResult
from repro.sim.sweep import CODE_VERSION, ScenarioSpec, SweepRunner
from repro.store.backend import ResultStore, RunRecord, utc_now

_LOG = logging.getLogger("repro.campaign")

#: Manifest format version (bumped on incompatible manifest changes).
MANIFEST_VERSION = 1

#: Campaign names must be safe as file names (JSON-dir backend) and readable
#: in reports.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,99}$")


def validate_campaign_name(name: str) -> str:
    if not _NAME_PATTERN.match(name or ""):
        raise ValueError(
            f"invalid campaign name {name!r}: use letters, digits, '.', '_' "
            "or '-' (max 100 characters, starting with a letter or digit)"
        )
    return name


def scenario_identity(scenario: dict) -> str:
    """Stable cross-version identity of a scenario description.

    Cache keys change whenever the simulator's code version (or any
    configuration default) changes; the *identity* -- the canonicalised
    ``describe()`` dictionary -- is what lets :func:`diff_campaigns` line up
    the same logical scenario across two campaigns or code versions.
    """
    return json.dumps(scenario, sort_keys=True, default=str)


def build_manifest(
    name: str,
    specs: Sequence[ScenarioSpec],
    source: str = "",
    description: str = "",
) -> dict:
    """The persisted description of a campaign: entries plus bookkeeping."""
    validate_campaign_name(name)
    specs = list(specs)
    if not specs:
        raise ValueError(f"campaign {name!r}: no scenarios to run")
    entries = []
    for index, spec in enumerate(specs):
        baseline = spec.baseline_spec()
        entries.append(
            {
                "index": index,
                "key": spec.cache_key(),
                "baseline_key": baseline.cache_key(),
                "scenario": spec.describe(),
                # Core-plan scenarios are normalised by matched benign core
                # ids; classic specs by the fixed attacker-slot rule.
                "matched_metric": spec.core_plan is not None,
            }
        )
    return {
        "manifest_version": MANIFEST_VERSION,
        "name": name,
        "code_version": CODE_VERSION,
        "created_at": utc_now(),
        "source": source,
        "description": description,
        "entries": entries,
    }


def _manifest_keys(manifest: dict) -> set[str]:
    keys: set[str] = set()
    for entry in manifest.get("entries", ()):
        keys.add(entry["key"])
        keys.add(entry["baseline_key"])
    return keys


def load_manifest(store: ResultStore, name: str) -> dict:
    """A saved manifest, or ``ValueError`` naming the campaigns that exist."""
    manifest = store.load_campaign(name)
    if manifest is None:
        known = ", ".join(store.campaign_names()) or "(none)"
        raise ValueError(f"unknown campaign {name!r}; saved campaigns: {known}")
    return manifest


# --------------------------------------------------------------------------- #
# Running
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CampaignProgress:
    """One progress tick, delivered after every completed batch."""

    name: str
    batch: int
    batches: int
    simulations_done: int      # unique simulations present in the store
    simulations_total: int     # unique simulations the campaign needs
    executed: int              # simulations actually run by this invocation
    elapsed_seconds: float
    eta_seconds: float | None  # None until at least one batch completes

    @property
    def percent(self) -> float:
        if not self.simulations_total:
            return 100.0
        return 100.0 * self.simulations_done / self.simulations_total


@dataclass(frozen=True)
class CampaignRunSummary:
    """What one ``campaign run`` invocation did."""

    name: str
    entries: int               # scenarios in the manifest
    simulations_total: int     # unique simulations (measured + baselines)
    already_stored: int        # unique simulations found in the store
    executed: int              # simulations this invocation ran
    batches: int
    elapsed_seconds: float
    resumed: bool              # True when a manifest already existed


class Campaign:
    """Plans and executes one named campaign against a result store."""

    def __init__(
        self,
        name: str,
        specs: Sequence[ScenarioSpec],
        store: ResultStore,
        jobs: int = 1,
        batch_size: int = 32,
        source: str = "",
        description: str = "",
        track_memory: bool = False,
    ):
        self.name = validate_campaign_name(name)
        self.specs = list(specs)
        self.store = store
        self.jobs = max(1, int(jobs))
        self.batch_size = max(1, int(batch_size))
        self.track_memory = bool(track_memory)
        self.manifest = build_manifest(
            name, self.specs, source=source, description=description
        )

    # ------------------------------------------------------------------ #

    def _reconcile_manifest(self, force: bool) -> bool:
        """Persist the manifest; returns whether this resumes a previous run."""
        existing = self.store.load_campaign(self.name)
        if existing is None:
            self.store.save_campaign(self.name, self.manifest)
            return False
        if _manifest_keys(existing) == _manifest_keys(self.manifest):
            # Same scenario set: keep the original manifest (and its
            # created_at) so status/report history stays coherent.
            self.manifest = existing
            return True
        if not force:
            raise ValueError(
                f"campaign {self.name!r} already exists with a different "
                f"scenario set (saved under code version "
                f"{existing.get('code_version')!r}, current {CODE_VERSION!r}); "
                "rerun with force=True / --force to replace its manifest, or "
                "pick a new name to keep both for diffing"
            )
        self.store.save_campaign(self.name, self.manifest)
        return False

    def _unique_specs(self) -> dict[str, ScenarioSpec]:
        """Every distinct simulation the campaign needs, keyed by hash."""
        plan: dict[str, ScenarioSpec] = {}
        for spec in self.specs:
            plan.setdefault(spec.cache_key(), spec)
            baseline = spec.baseline_spec()
            plan.setdefault(baseline.cache_key(), baseline)
        return plan

    def run(
        self,
        progress: Callable[[CampaignProgress], None] | None = None,
        force: bool = False,
    ) -> CampaignRunSummary:
        """Execute every missing simulation, checkpointing as results land.

        Scenarios whose keys are already in the store are *not* re-executed
        -- not even loaded -- which is what makes interrupt/resume cycles
        cheap.  ``KeyboardInterrupt`` propagates to the caller: by the time
        it fires, every completed simulation is already committed, so simply
        invoking :meth:`run` again resumes from the checkpoint.
        """
        started = time.perf_counter()
        resumed = self._reconcile_manifest(force)
        plan = self._unique_specs()
        stored = self.store.keys() & set(plan)
        pending = {key: spec for key, spec in plan.items() if key not in stored}

        # Shard by unique simulation so batches stay evenly sized no matter
        # how many entries share baselines.
        pending_specs = list(pending.values())
        batches = [
            pending_specs[offset:offset + self.batch_size]
            for offset in range(0, len(pending_specs), self.batch_size)
        ]
        runner = SweepRunner(
            store=self.store, jobs=self.jobs, track_memory=self.track_memory
        )
        executed = 0
        for number, batch in enumerate(batches, start=1):
            executed += runner.ensure(batch)
            elapsed = time.perf_counter() - started
            done = len(stored) + executed
            rate = executed / elapsed if elapsed > 0 else 0.0
            remaining = len(plan) - done
            tick = CampaignProgress(
                name=self.name,
                batch=number,
                batches=len(batches),
                simulations_done=done,
                simulations_total=len(plan),
                executed=executed,
                elapsed_seconds=elapsed,
                eta_seconds=remaining / rate if rate > 0 else None,
            )
            eta = (
                f"{tick.eta_seconds:.0f}s"
                if tick.eta_seconds is not None
                else "unknown"
            )
            _LOG.info(
                "campaign %r: batch %d/%d, %d/%d simulations (%.1f%%), eta %s",
                tick.name, tick.batch, tick.batches, tick.simulations_done,
                tick.simulations_total, tick.percent, eta,
            )
            if progress is not None:
                progress(tick)
        if executed:
            self._save_run_profile(runner, executed)
        return CampaignRunSummary(
            name=self.name,
            entries=len(self.manifest["entries"]),
            simulations_total=len(plan),
            already_stored=len(stored),
            executed=executed,
            batches=len(batches),
            elapsed_seconds=time.perf_counter() - started,
            resumed=resumed,
        )

    def _save_run_profile(self, runner: SweepRunner, executed: int) -> None:
        """Persist this invocation's worker-pool profile into the manifest.

        Only pooled runs carry a worker report; serial invocations leave the
        manifest untouched.  The profile is pure bookkeeping -- every result
        is already committed by the time it is written -- so a campaign's
        identity (its entry keys) is unaffected.
        """
        profile = runner.worker_report()
        if profile is None:
            return
        self.manifest["last_run_profile"] = {
            "finished_at": utc_now(),
            "executed": executed,
            "jobs": self.jobs,
            **profile,
        }
        self.store.save_campaign(self.name, self.manifest)


# --------------------------------------------------------------------------- #
# Status
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CampaignStatus:
    """Completion accounting of a saved campaign."""

    name: str
    created_at: str | None
    code_version: str | None
    current_code_version: str
    entries: int               # scenarios in the manifest
    entries_complete: int      # scenarios with measured + baseline stored
    simulations_total: int     # unique simulation keys
    simulations_stored: int
    source: str
    #: Worker-pool profile of the most recent pooled ``campaign run``
    #: invocation (``None`` for campaigns only ever run serially).
    last_run_profile: dict | None = None
    #: Distributed-drain lease accounting from the warehouse's ``leases``
    #: table (``None`` when no worker ever joined, or the backend has no
    #: lease support): shard/done/leased/pending/quarantined counts, total
    #: attempts and reclaims, and a per-worker ``{completed, active}`` map.
    leases: dict | None = None

    @property
    def complete(self) -> bool:
        return self.simulations_stored >= self.simulations_total

    @property
    def percent(self) -> float:
        if not self.simulations_total:
            return 100.0
        return 100.0 * self.simulations_stored / self.simulations_total


def campaign_status(store: ResultStore, name: str) -> CampaignStatus:
    """Progress of a saved campaign, computed purely from the store."""
    manifest = load_manifest(store, name)
    keys = _manifest_keys(manifest)
    stored = store.keys() & keys
    entries = manifest.get("entries", [])
    complete = sum(
        1
        for entry in entries
        if entry["key"] in stored and entry["baseline_key"] in stored
    )
    return CampaignStatus(
        name=name,
        created_at=manifest.get("created_at"),
        code_version=manifest.get("code_version"),
        current_code_version=CODE_VERSION,
        entries=len(entries),
        entries_complete=complete,
        simulations_total=len(keys),
        simulations_stored=len(stored),
        source=str(manifest.get("source") or ""),
        last_run_profile=manifest.get("last_run_profile"),
        leases=(
            store.lease_summary(name)
            if getattr(store, "supports_leases", False)
            else None
        ),
    )


# --------------------------------------------------------------------------- #
# Reporting
# --------------------------------------------------------------------------- #

#: Metric keys a report row carries (shared with ``diff_campaigns``).
REPORT_METRICS = (
    "normalized_performance",
    "slowdown_percent",
    "mitigations_issued",
    "dram_activations",
    "energy_overhead_percent",
)


def _entry_row(entry: dict, record: RunRecord, baseline: RunRecord) -> dict:
    """One report row: scenario identity plus the paper's headline metrics."""
    result = SimulationResult.from_dict(record.result)
    base = SimulationResult.from_dict(baseline.result)
    if entry.get("matched_metric"):
        from repro.sim.metrics import matched_benign_normalized_performance

        normalized = matched_benign_normalized_performance(result, base)
    else:
        from repro.sim.metrics import benign_normalized_performance

        normalized = benign_normalized_performance(result, base)
    row = dict(entry["scenario"])
    if isinstance(row.get("cores"), list):
        row["cores"] = "+".join(str(core) for core in row["cores"])
    row.update(
        normalized_performance=normalized,
        slowdown_percent=slowdown_percent(normalized),
        mitigations_issued=result.tracker_stats.mitigations_issued,
        dram_activations=result.dram_stats.activations,
        energy_overhead_percent=result.energy.overhead_vs(base.energy) * 100.0,
        elapsed_seconds=record.elapsed_seconds,
        peak_memory_bytes=record.peak_memory_bytes,
        code_version=record.code_version,
    )
    return row


def campaign_report(store: ResultStore, name: str) -> dict:
    """Result table of a campaign: one row per *complete* scenario.

    Rows carry the scenario's identity fields plus normalized performance,
    slowdown, mitigation/activation counts, energy overhead versus the
    scenario's own baseline, and the measured simulation cost.  Scenarios
    whose measured run or baseline is not stored yet are only counted.
    """
    manifest = load_manifest(store, name)
    rows, incomplete = [], 0
    for entry in manifest.get("entries", []):
        record = store.get(entry["key"])
        baseline = store.get(entry["baseline_key"])
        if record is None or baseline is None:
            incomplete += 1
            continue
        rows.append(_entry_row(entry, record, baseline))
    return {
        "campaign": {
            "name": name,
            "created_at": manifest.get("created_at"),
            "code_version": manifest.get("code_version"),
            "source": manifest.get("source") or "",
        },
        "rows": rows,
        "incomplete_entries": incomplete,
        "leases": (
            store.lease_summary(name)
            if getattr(store, "supports_leases", False)
            else None
        ),
    }


# --------------------------------------------------------------------------- #
# Diffing
# --------------------------------------------------------------------------- #


def diff_campaigns(
    store_a: ResultStore,
    name_a: str,
    store_b: ResultStore | None = None,
    name_b: str | None = None,
) -> dict:
    """Per-metric deltas between two campaigns (or code versions).

    Scenarios are matched by their *identity* -- the canonical scenario
    description -- so two campaigns that ran the same logical matrix under
    different simulator versions (different cache keys) still line up.
    Returns matched rows with ``a`` / ``b`` / ``delta`` metric maps, plus the
    scenarios only one campaign has, and the scenarios either campaign has
    not finished computing.
    """
    store_b = store_b if store_b is not None else store_a
    name_b = name_b if name_b is not None else name_a
    report_a = campaign_report(store_a, name_a)
    report_b = campaign_report(store_b, name_b)

    def _by_identity(report: dict) -> dict[str, dict]:
        indexed = {}
        for row in report["rows"]:
            identity = {
                key: value
                for key, value in row.items()
                if key not in REPORT_METRICS
                and key not in (
                    "elapsed_seconds", "peak_memory_bytes", "code_version"
                )
            }
            indexed[scenario_identity(identity)] = row
        return indexed

    rows_a, rows_b = _by_identity(report_a), _by_identity(report_b)
    shared = sorted(set(rows_a) & set(rows_b))
    diffs = []
    for identity in shared:
        row_a, row_b = rows_a[identity], rows_b[identity]
        metrics_a = {metric: row_a.get(metric) for metric in REPORT_METRICS}
        metrics_b = {metric: row_b.get(metric) for metric in REPORT_METRICS}
        delta = {
            metric: (
                metrics_b[metric] - metrics_a[metric]
                if isinstance(metrics_a.get(metric), (int, float))
                and isinstance(metrics_b.get(metric), (int, float))
                else None
            )
            for metric in REPORT_METRICS
        }
        diffs.append(
            {
                "scenario": json.loads(identity),
                "a": metrics_a,
                "b": metrics_b,
                "delta": delta,
            }
        )
    deltas = [
        abs(diff["delta"]["normalized_performance"])
        for diff in diffs
        if diff["delta"]["normalized_performance"] is not None
    ]
    return {
        "campaign_a": report_a["campaign"],
        "campaign_b": report_b["campaign"],
        "matched": len(diffs),
        "rows": diffs,
        "only_in_a": [
            json.loads(identity) for identity in sorted(set(rows_a) - set(rows_b))
        ],
        "only_in_b": [
            json.loads(identity) for identity in sorted(set(rows_b) - set(rows_a))
        ],
        "incomplete_a": report_a["incomplete_entries"],
        "incomplete_b": report_b["incomplete_entries"],
        "max_abs_normalized_delta": max(deltas) if deltas else 0.0,
    }
