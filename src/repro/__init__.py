"""Reproduction of *DAPPER: A Performance-Attack-Resilient Tracker for
RowHammer Defense* (HPCA 2025).

The package is organised by subsystem:

* :mod:`repro.config`   -- system configuration (Table I) and presets.
* :mod:`repro.dram`     -- request-level DDR5 timing, refresh and energy model.
* :mod:`repro.cache`    -- shared last-level cache.
* :mod:`repro.cpu`      -- synthetic workloads and the MLP-limited core model.
* :mod:`repro.crypto`   -- the low-latency block cipher used by DAPPER.
* :mod:`repro.mc`       -- the memory controller and tracker integration.
* :mod:`repro.trackers` -- baseline RowHammer mitigations (Hydra, START,
  CoMeT, ABACUS, BlockHammer, PARA, PrIDE, PRAC).
* :mod:`repro.core`     -- the paper's contribution: DAPPER-S and DAPPER-H.
* :mod:`repro.attacks`  -- Performance-Attack and RowHammer kernels.
* :mod:`repro.analysis` -- analytical security models and the ground-truth
  security auditor.
* :mod:`repro.sim`      -- the multi-core simulator and experiment helpers.
* :mod:`repro.eval`     -- per-figure / per-table experiment definitions.
"""

from repro.config import (
    MitigationCommand,
    SystemConfig,
    baseline_config,
    large_system_config,
)
from repro.sim.experiment import ExperimentRunner, run_workload
from repro.trackers.registry import available_trackers, create_tracker

__version__ = "1.0.0"

__all__ = [
    "SystemConfig",
    "MitigationCommand",
    "baseline_config",
    "large_system_config",
    "ExperimentRunner",
    "run_workload",
    "available_trackers",
    "create_tracker",
    "__version__",
]
