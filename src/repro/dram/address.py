"""Physical address mapping between byte addresses and DRAM coordinates.

Workload generators and attacks often need to target precise DRAM rows and
banks (e.g. "activate 64 rows that live in different banks", or "stream over
every row of a rank").  The :class:`AddressMapper` provides the bijection
between flat physical byte addresses and the ``(channel, rank, bank group,
bank, row, column)`` coordinates used by the memory controller and by the
RowHammer trackers.

The default interleaving places the channel and bank bits directly above the
cache-line offset so that consecutive cache lines spread across channels and
banks (maximising bank-level parallelism), with the column bits above those so
that a single DRAM row still maps to a contiguous-by-stride set of lines, and
the row bits on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

try:  # numpy accelerates batched decode; the scalar path needs nothing.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

from repro.config import DRAMOrganization


class BankAddress(NamedTuple):
    """Identifies one DRAM bank in the system."""

    channel: int
    rank: int
    bank_group: int
    bank: int

    def flat(self, org: DRAMOrganization) -> int:
        """Flat bank index across the whole system (0 .. total_banks - 1)."""
        idx = self.channel
        idx = idx * org.ranks_per_channel + self.rank
        idx = idx * org.bank_groups_per_rank + self.bank_group
        idx = idx * org.banks_per_group + self.bank
        return idx

    def rank_local_bank(self, org: DRAMOrganization) -> int:
        """Bank index inside its rank (0 .. banks_per_rank - 1)."""
        return self.bank_group * org.banks_per_group + self.bank


class RowAddress(NamedTuple):
    """Identifies one DRAM row: a bank plus a row index inside that bank."""

    bank: BankAddress
    row: int

    def rank_row_index(self, org: DRAMOrganization) -> int:
        """Row index inside the rank's flat row space (used by DAPPER hashing)."""
        return self.bank.rank_local_bank(org) * org.rows_per_bank + self.row


@dataclass(frozen=True)
class DecodedAddress:
    """A fully decoded physical address."""

    channel: int
    rank: int
    bank_group: int
    bank: int
    row: int
    column: int

    @property
    def bank_address(self) -> BankAddress:
        return BankAddress(self.channel, self.rank, self.bank_group, self.bank)

    @property
    def row_address(self) -> RowAddress:
        return RowAddress(self.bank_address, self.row)


def _bits(value: int) -> int:
    """Number of bits needed to index ``value`` distinct items."""
    if value <= 1:
        return 0
    return (value - 1).bit_length()


class AddressMapper:
    """Bijective mapping between physical byte addresses and DRAM coordinates.

    Field order from least to most significant:

    ``offset | channel | bank_group | bank | column | rank | row``
    """

    def __init__(self, org: DRAMOrganization):
        self.org = org
        self._offset_bits = _bits(org.line_size_bytes)
        self._channel_bits = _bits(org.channels)
        self._bg_bits = _bits(org.bank_groups_per_rank)
        self._bank_bits = _bits(org.banks_per_group)
        self._column_bits = _bits(org.lines_per_row)
        self._rank_bits = _bits(org.ranks_per_channel)
        self._row_bits = _bits(org.rows_per_bank)

    @property
    def address_bits(self) -> int:
        """Total number of physical address bits covered by the mapping."""
        return (
            self._offset_bits
            + self._channel_bits
            + self._bg_bits
            + self._bank_bits
            + self._column_bits
            + self._rank_bits
            + self._row_bits
        )

    def decode(self, address: int) -> DecodedAddress:
        """Decode a physical byte address into DRAM coordinates."""
        value = address >> self._offset_bits
        channel = value & ((1 << self._channel_bits) - 1)
        value >>= self._channel_bits
        bank_group = value & ((1 << self._bg_bits) - 1)
        value >>= self._bg_bits
        bank = value & ((1 << self._bank_bits) - 1)
        value >>= self._bank_bits
        column = value & ((1 << self._column_bits) - 1)
        value >>= self._column_bits
        rank = value & ((1 << self._rank_bits) - 1)
        value >>= self._rank_bits
        row = value & ((1 << self._row_bits) - 1)
        return DecodedAddress(
            channel=channel,
            rank=rank,
            bank_group=bank_group,
            bank=bank,
            row=row,
            column=column,
        )

    def decode_batch(self, addresses):
        """Vectorized :meth:`decode` over a sequence of byte addresses.

        Returns ``(channel, rank, bank_group, bank, row, column, flat_bank)``
        parallel arrays (numpy int64 when numpy is available, else lists),
        where ``flat_bank`` is :meth:`BankAddress.flat` of each decoded
        address -- the system-wide bank index the controller and DRAM model
        key their state by.
        """
        org = self.org
        if _np is not None:
            value = _np.asarray(addresses, dtype=_np.int64) >> self._offset_bits
            channel = value & ((1 << self._channel_bits) - 1)
            value >>= self._channel_bits
            bank_group = value & ((1 << self._bg_bits) - 1)
            value >>= self._bg_bits
            bank = value & ((1 << self._bank_bits) - 1)
            value >>= self._bank_bits
            column = value & ((1 << self._column_bits) - 1)
            value >>= self._column_bits
            rank = value & ((1 << self._rank_bits) - 1)
            value >>= self._rank_bits
            row = value & ((1 << self._row_bits) - 1)
            flat_bank = (
                ((channel * org.ranks_per_channel + rank)
                 * org.bank_groups_per_rank + bank_group)
                * org.banks_per_group + bank
            )
            return channel, rank, bank_group, bank, row, column, flat_bank
        channels, ranks, bank_groups, banks = [], [], [], []
        rows, columns, flat_banks = [], [], []
        for address in addresses:
            decoded = self.decode(address)
            channels.append(decoded.channel)
            ranks.append(decoded.rank)
            bank_groups.append(decoded.bank_group)
            banks.append(decoded.bank)
            rows.append(decoded.row)
            columns.append(decoded.column)
            flat_banks.append(decoded.bank_address.flat(org))
        return channels, ranks, bank_groups, banks, rows, columns, flat_banks

    def encode(
        self,
        channel: int,
        rank: int,
        bank_group: int,
        bank: int,
        row: int,
        column: int = 0,
        offset: int = 0,
    ) -> int:
        """Encode DRAM coordinates into a physical byte address."""
        org = self.org
        if not 0 <= channel < org.channels:
            raise ValueError(f"channel {channel} out of range")
        if not 0 <= rank < org.ranks_per_channel:
            raise ValueError(f"rank {rank} out of range")
        if not 0 <= bank_group < org.bank_groups_per_rank:
            raise ValueError(f"bank group {bank_group} out of range")
        if not 0 <= bank < org.banks_per_group:
            raise ValueError(f"bank {bank} out of range")
        if not 0 <= row < org.rows_per_bank:
            raise ValueError(f"row {row} out of range")
        if not 0 <= column < org.lines_per_row:
            raise ValueError(f"column {column} out of range")

        value = row
        value = (value << self._rank_bits) | rank
        value = (value << self._column_bits) | column
        value = (value << self._bank_bits) | bank
        value = (value << self._bg_bits) | bank_group
        value = (value << self._channel_bits) | channel
        value = (value << self._offset_bits) | offset
        return value

    def encode_row(self, row_address: RowAddress, column: int = 0) -> int:
        """Encode a :class:`RowAddress` into a physical byte address."""
        bank = row_address.bank
        return self.encode(
            channel=bank.channel,
            rank=bank.rank,
            bank_group=bank.bank_group,
            bank=bank.bank,
            row=row_address.row,
            column=column,
        )

    def rank_row_to_row_address(
        self, channel: int, rank: int, rank_row_index: int
    ) -> RowAddress:
        """Convert a flat per-rank row index back into a :class:`RowAddress`.

        This is the inverse of :meth:`RowAddress.rank_row_index` and is used
        by DAPPER when decrypting a row group back into physical rows to
        refresh.
        """
        org = self.org
        if not 0 <= rank_row_index < org.rows_per_rank:
            raise ValueError(f"rank row index {rank_row_index} out of range")
        bank_local = rank_row_index // org.rows_per_bank
        row = rank_row_index % org.rows_per_bank
        bank_group = bank_local // org.banks_per_group
        bank = bank_local % org.banks_per_group
        return RowAddress(BankAddress(channel, rank, bank_group, bank), row)
