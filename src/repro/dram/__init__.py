"""DRAM substrate: addressing, bank/rank/channel timing, refresh, and energy.

The DRAM model is request-level rather than command-cycle-level: every memory
request is expanded into the DDR5 commands it would require (ACT, RD/WR, PRE,
and any mitigative refreshes injected by the RowHammer tracker) and the timing
constraints between those commands are enforced through per-bank, per-rank and
per-channel availability times.  See ``DESIGN.md`` for why this preserves the
behaviour the paper's evaluation depends on.
"""

from repro.dram.address import AddressMapper, BankAddress, DecodedAddress, RowAddress
from repro.dram.bank import Bank, BankState
from repro.dram.commands import CommandKind, MitigationScope
from repro.dram.dram_system import DRAMAccessResult, DRAMSystem
from repro.dram.energy import EnergyModel, EnergyParameters, EnergyReport
from repro.dram.refresh import RefreshScheduler

__all__ = [
    "AddressMapper",
    "BankAddress",
    "DecodedAddress",
    "RowAddress",
    "Bank",
    "BankState",
    "CommandKind",
    "MitigationScope",
    "DRAMSystem",
    "DRAMAccessResult",
    "EnergyModel",
    "EnergyParameters",
    "EnergyReport",
    "RefreshScheduler",
]
