"""Per-bank state for the request-level DRAM timing model."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class BankState(str, Enum):
    """Row-buffer state of a bank."""

    IDLE = "idle"          # no row open
    ACTIVE = "active"      # a row is open in the row buffer


@dataclass(slots=True)
class Bank:
    """Mutable timing state of one DRAM bank.

    ``open_row``       the row currently held in the row buffer (or ``None``)
    ``ready_ns``       earliest time the bank can accept a new request
    ``next_act_ns``    earliest time a new ACT may be issued (tRC spacing)
    ``blocked_until_ns`` end of any mitigation blackout that targets the bank
    """

    open_row: int | None = None
    ready_ns: float = 0.0
    next_act_ns: float = 0.0
    blocked_until_ns: float = 0.0
    activations: int = field(default=0)
    row_hits: int = field(default=0)
    row_misses: int = field(default=0)
    row_conflicts: int = field(default=0)

    @property
    def state(self) -> BankState:
        return BankState.IDLE if self.open_row is None else BankState.ACTIVE

    def earliest_start(self, now_ns: float) -> float:
        """Earliest time the bank could begin servicing a request issued now."""
        return max(now_ns, self.ready_ns, self.blocked_until_ns)

    def block_until(self, until_ns: float) -> None:
        """Extend the bank's blackout window (mitigative refresh, reset, ...)."""
        if until_ns > self.blocked_until_ns:
            self.blocked_until_ns = until_ns
        if until_ns > self.ready_ns:
            self.ready_ns = until_ns

    def precharge(self) -> None:
        """Close the open row (used after refreshes and structure resets)."""
        self.open_row = None

    def activation_events(
        self,
        bank_index: int,
        previous_row: int | None,
        row: int,
        time_ns: float,
    ) -> list:
        """Event-source adapter: the command events implied by one ACT.

        Under the open-page policy an activation of ``row`` while
        ``previous_row`` was open implies a PRE of the old row first, so a
        row conflict yields ``[BankPrecharge, BankActivate]`` and a miss on
        an idle bank yields ``[BankActivate]`` alone.  Events are stamped
        with the completion time of the triggering request (the
        request-level model does not expose per-command start times).
        """
        from repro.sim.events.events import BankActivate, BankPrecharge

        events: list = []
        if previous_row is not None and previous_row != row:
            events.append(BankPrecharge(time_ns, bank_index, previous_row))
        events.append(BankActivate(time_ns, bank_index, row))
        return events
