"""Periodic auto-refresh scheduling.

DDR5 issues an auto-refresh (REF) command to every rank once per tREFI
(3.9 us); the rank is unavailable for tRFC (295 ns) while the refresh runs.
Over a full refresh window (tREFW, 32 ms) the 8K refresh commands walk over
every row of the rank.  The request-level model does not need to know which
rows each REF touches -- it only needs (a) the bandwidth lost to the blackout
windows and (b) the tREFW boundary at which per-row activation counts reset
for security accounting and at which trackers perform their periodic resets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import DRAMTimings


@dataclass
class RefreshScheduler:
    """Computes auto-refresh blackouts and refresh-window boundaries."""

    timings: DRAMTimings
    stagger_per_rank_ns: float = 0.0

    def adjust_for_refresh(self, start_ns: float, rank_index: int) -> float:
        """Push ``start_ns`` out of any auto-refresh blackout of the rank.

        Refresh blackouts occupy ``[k * tREFI, k * tREFI + tRFC)`` for every
        integer ``k`` (optionally staggered per rank).
        """
        trefi = self.timings.trefi_ns
        trfc = self.timings.trfc_ns
        phase = (start_ns - rank_index * self.stagger_per_rank_ns) % trefi
        if phase < trfc:
            return start_ns + (trfc - phase)
        return start_ns

    def refresh_window_index(self, now_ns: float) -> int:
        """Index of the refresh window (tREFW interval) containing ``now_ns``."""
        return int(now_ns // self.timings.trefw_ns)

    def refreshes_elapsed(self, now_ns: float) -> int:
        """Number of auto-refresh commands issued per rank up to ``now_ns``."""
        return int(now_ns // self.timings.trefi_ns)

    def refresh_overhead_fraction(self) -> float:
        """Fraction of time a rank is unavailable due to auto refresh."""
        return self.timings.trfc_ns / self.timings.trefi_ns

    # ------------------------------------------------------------------ #
    # Event-source adapters for the discrete-event engine.

    def next_refresh_ns(self, now_ns: float) -> float:
        """Nominal start of the first auto-refresh strictly after ``now_ns``."""
        return (int(now_ns // self.timings.trefi_ns) + 1) * self.timings.trefi_ns

    def next_window_start_ns(self, now_ns: float) -> float:
        """Nominal start of the first refresh window strictly after ``now_ns``."""
        return (int(now_ns // self.timings.trefw_ns) + 1) * self.timings.trefw_ns

    def tick_events(self, after_index: int, now_ns: float) -> list:
        """Refresh-tick events for REF commands in ``(after_index, now_ns]``.

        The discrete-event engine enumerates ticks lazily between serviced
        requests (idle stretches cost nothing); each
        :class:`~repro.sim.events.events.RefreshTick` is stamped with its
        nominal command time ``index * tREFI``.
        """
        from repro.sim.events.events import RefreshTick

        last = self.refreshes_elapsed(now_ns)
        trefi = self.timings.trefi_ns
        return [
            RefreshTick(index * trefi, index)
            for index in range(after_index + 1, last + 1)
        ]
