"""DRAMPower-style energy accounting.

The paper reports the energy overhead of DAPPER-H (Table IV) measured with
DRAMPower.  We reproduce that with a per-command energy model: each command
class is charged a nominal energy, and background power is charged for the
total simulated time.  Overheads are reported as ratios against a baseline
run, so the absolute constants matter far less than the relative number of
extra ACT/RD/WR/refresh operations a mitigation injects.

The default per-command energies are representative DDR5 x16 device values
(per 64B access across the rank) and can be overridden through
:class:`EnergyParameters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.commands import CommandKind


@dataclass(frozen=True)
class EnergyParameters:
    """Per-command energies (nanojoules) and background power (watts)."""

    act_pre_nj: float = 2.0          # one ACT + implicit PRE
    rd_nj: float = 1.3               # one 64B read burst
    wr_nj: float = 1.5               # one 64B write burst
    ref_nj: float = 60.0             # one all-bank auto refresh (per rank)
    victim_refresh_nj: float = 4.0   # refresh of one victim row (VRR/DRFM)
    background_watts: float = 0.35   # per rank background/standby power

    def command_energy_nj(self, kind: CommandKind, count: int = 1) -> float:
        """Energy for ``count`` commands of the given kind."""
        table = {
            CommandKind.ACT: self.act_pre_nj,
            CommandKind.PRE: 0.0,
            CommandKind.RD: self.rd_nj,
            CommandKind.WR: self.wr_nj,
            CommandKind.REF: self.ref_nj,
            CommandKind.VRR: self.victim_refresh_nj,
            CommandKind.DRFM_SB: self.victim_refresh_nj,
            CommandKind.RFM_SB: self.victim_refresh_nj,
        }
        return table[kind] * count


@dataclass
class EnergyReport:
    """Total energy split into dynamic command energy and background energy."""

    dynamic_nj: float
    background_nj: float
    command_counts: dict[CommandKind, int]

    @property
    def total_nj(self) -> float:
        return self.dynamic_nj + self.background_nj

    def overhead_vs(self, baseline: "EnergyReport") -> float:
        """Fractional energy overhead of this run relative to ``baseline``."""
        if baseline.total_nj <= 0:
            return 0.0
        return (self.total_nj - baseline.total_nj) / baseline.total_nj


@dataclass
class EnergyModel:
    """Accumulates command counts and produces an :class:`EnergyReport`."""

    params: EnergyParameters = field(default_factory=EnergyParameters)
    num_ranks: int = 4
    _counts: dict[CommandKind, int] = field(default_factory=dict)

    def record(self, kind: CommandKind, count: int = 1) -> None:
        """Record ``count`` commands of kind ``kind``."""
        self._counts[kind] = self._counts.get(kind, 0) + count

    @property
    def counts(self) -> dict[CommandKind, int]:
        return dict(self._counts)

    def report(self, elapsed_ns: float) -> EnergyReport:
        """Produce the energy report for a run of ``elapsed_ns`` nanoseconds."""
        dynamic = sum(
            self.params.command_energy_nj(kind, count)
            for kind, count in self._counts.items()
        )
        background = (
            self.params.background_watts * self.num_ranks * elapsed_ns * 1e-9 * 1e9
        )  # W * s -> J -> nJ
        return EnergyReport(
            dynamic_nj=dynamic,
            background_nj=background,
            command_counts=dict(self._counts),
        )
