"""DRAM command vocabulary and mitigation scopes.

The request-level model does not schedule individual commands on a cycle
clock, but it still accounts for them: every serviced request is decomposed
into the commands it implies (ACT, RD or WR, implicit PRE) and every
mitigation is charged as the refresh command the configuration selects
(VRR / DRFMsb / RFMsb) with its blocking scope and duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class CommandKind(str, Enum):
    """DDR5 commands tracked by the simulator for statistics and energy."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"           # auto refresh (per rank, every tREFI)
    VRR = "VRR"           # victim row refresh (per-bank mitigation)
    DRFM_SB = "DRFMsb"    # same-bank directed refresh management
    RFM_SB = "RFMsb"      # same-bank refresh management


class MitigationScope(str, Enum):
    """How much of the DRAM system a mitigation or reset blocks."""

    BANK = "bank"                          # a single bank
    SAME_BANK_ALL_GROUPS = "same-bank"     # same bank index in every bank group
    RANK = "rank"                          # every bank of one rank
    CHANNEL = "channel"                    # every bank of one channel


@dataclass(frozen=True)
class Blackout:
    """A period during which part of the DRAM system cannot serve requests.

    Blackouts model both mitigative refreshes (short, bank-scoped) and
    full-structure resets (long, rank- or channel-scoped), e.g. CoMeT and
    ABACUS refreshing every DRAM row to reset their shared counters.
    """

    scope: MitigationScope
    channel: int
    rank: int
    bank_group: int = 0
    bank: int = 0
    duration_ns: float = 0.0
    reason: str = ""
