"""Request-level DDR5 timing model.

:class:`DRAMSystem` is the timing heart of the reproduction.  It keeps the
mutable state of every bank (open row, next-ACT time, blackout windows), rank
(ACT-to-ACT spacing, refresh blackouts, rank-wide blackouts) and channel (data
bus occupancy, channel-wide blackouts), and turns each memory request into a
completion time while updating that state.

Three kinds of "extra" DRAM work are modelled explicitly because the paper's
results revolve around them:

* **Counter traffic** -- Hydra and START fetch and write back per-row
  RowHammer counters stored in a reserved DRAM region on tracker misses.
  :meth:`DRAMSystem.counter_access` services those accesses so that they
  consume real bank time and data-bus bandwidth.
* **Mitigative refreshes** -- VRR / DRFMsb / RFMsb commands block one bank or
  the same bank across all bank groups for their specified duration
  (:meth:`DRAMSystem.victim_refresh`).
* **Structure resets** -- CoMeT and ABACUS reset their shared tracking
  structures by refreshing *every* row of a rank or channel, blocking it for
  milliseconds (:meth:`DRAMSystem.apply_blackout` with a rank/channel scope).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import MitigationCommand, SystemConfig
from repro.dram.address import BankAddress, DecodedAddress, RowAddress
from repro.dram.bank import Bank
from repro.dram.commands import Blackout, CommandKind, MitigationScope
from repro.dram.energy import EnergyModel
from repro.dram.refresh import RefreshScheduler


@dataclass(frozen=True)
class DRAMAccessResult:
    """Outcome of servicing one memory request (or counter access)."""

    start_ns: float
    completion_ns: float
    activated: bool
    row_hit: bool
    bank: BankAddress
    row: int


@dataclass
class DRAMStats:
    """Aggregate DRAM statistics for one simulation."""

    reads: int = 0
    writes: int = 0
    activations: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    counter_reads: int = 0
    counter_writes: int = 0
    victim_refreshes: int = 0
    victim_rows_refreshed: int = 0
    blackouts: int = 0
    blackout_time_ns: float = 0.0
    blackout_time_by_reason: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        data = {
            "reads": self.reads,
            "writes": self.writes,
            "activations": self.activations,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_conflicts": self.row_conflicts,
            "counter_reads": self.counter_reads,
            "counter_writes": self.counter_writes,
            "victim_refreshes": self.victim_refreshes,
            "victim_rows_refreshed": self.victim_rows_refreshed,
            "blackouts": self.blackouts,
            "blackout_time_ns": self.blackout_time_ns,
        }
        return data


@dataclass(slots=True)
class _RankState:
    next_act_ns: float = 0.0
    blocked_until_ns: float = 0.0


@dataclass(slots=True)
class _ChannelState:
    bus_ready_ns: float = 0.0
    blocked_until_ns: float = 0.0


class DRAMSystem:
    """Timing state machine for the whole DRAM system."""

    #: Number of rows dedicated to the reserved RowHammer-counter region that
    #: Hydra / START place in DRAM.  Counter accesses round-robin over this
    #: region so consecutive tracker misses land on different banks and rows.
    COUNTER_REGION_ROWS = 1024

    def __init__(self, config: SystemConfig, energy: EnergyModel | None = None):
        self.config = config
        self.org = config.dram
        self.timings = config.timings
        self.refresh = RefreshScheduler(config.timings)
        self.energy = energy or EnergyModel(
            num_ranks=self.org.channels * self.org.ranks_per_channel
        )
        self.stats = DRAMStats()

        self._banks: list[Bank] = [Bank() for _ in range(self.org.total_banks)]
        self._ranks: list[_RankState] = [
            _RankState()
            for _ in range(self.org.channels * self.org.ranks_per_channel)
        ]
        self._channels: list[_ChannelState] = [
            _ChannelState() for _ in range(self.org.channels)
        ]
        self._counter_cursor = 0
        # Hot-path copies of the (frozen) timing parameters.
        t = config.timings
        self._trp = t.trp_ns
        self._trc = t.trc_ns
        self._trcd = t.trcd_ns
        self._trrd_s = t.trrd_s_ns
        self._tcl = t.tcl_ns
        self._tburst = t.tburst_ns
        self._twr = t.twr_ns
        self._trefi = t.trefi_ns
        self._trfc = t.trfc_ns

    # ------------------------------------------------------------------ #
    # Index helpers
    # ------------------------------------------------------------------ #

    def _bank_index(self, bank: BankAddress) -> int:
        return bank.flat(self.org)

    def _rank_index(self, channel: int, rank: int) -> int:
        return channel * self.org.ranks_per_channel + rank

    def bank_state(self, bank: BankAddress) -> Bank:
        """Expose the mutable bank state (mainly for tests and attacks)."""
        return self._banks[self._bank_index(bank)]

    # ------------------------------------------------------------------ #
    # Main access path
    # ------------------------------------------------------------------ #

    def access(
        self,
        decoded: DecodedAddress,
        is_write: bool,
        earliest_ns: float,
        extra_act_delay_ns: float = 0.0,
    ) -> DRAMAccessResult:
        """Service one request and return its timing.

        ``extra_act_delay_ns`` lengthens the activation (used by PRAC, whose
        per-row counter update extends the row cycle).
        """
        bank_addr = decoded.bank_address
        start, completion, activated, row_hit = self.access_flat(
            self._bank_index(bank_addr),
            self._rank_index(decoded.channel, decoded.rank),
            decoded.channel,
            decoded.row,
            is_write,
            earliest_ns,
            extra_act_delay_ns,
        )
        return DRAMAccessResult(
            start_ns=start,
            completion_ns=completion,
            activated=activated,
            row_hit=row_hit,
            bank=bank_addr,
            row=decoded.row,
        )

    def access_flat(
        self,
        bank_index: int,
        rank_index: int,
        channel_index: int,
        row: int,
        is_write: bool,
        earliest_ns: float,
        extra_act_delay_ns: float = 0.0,
    ) -> tuple[float, float, bool, bool]:
        """Timing core of :meth:`access`, keyed by flat indices.

        Returns ``(start_ns, completion_ns, activated, row_hit)``.  This is
        the single source of truth for request timing: :meth:`access` wraps it
        with address-object decode/packaging, and the batched engine calls it
        directly with predecoded coordinates.
        """
        # Hot path: ``max`` chains are unrolled into comparisons and the
        # refresh/energy helpers are inlined (all value-identical -- the
        # operands are non-negative, so tie-breaking cannot differ).
        stats = self.stats
        bank = self._banks[bank_index]
        rank = self._ranks[rank_index]
        channel = self._channels[channel_index]
        trefi = self._trefi
        trfc = self._trfc
        stagger = self.refresh.stagger_per_rank_ns
        energy_counts = self.energy._counts

        start = earliest_ns
        if bank.ready_ns > start:
            start = bank.ready_ns
        if bank.blocked_until_ns > start:
            start = bank.blocked_until_ns
        if rank.blocked_until_ns > start:
            start = rank.blocked_until_ns
        if channel.blocked_until_ns > start:
            start = channel.blocked_until_ns
        phase = (start - rank_index * stagger) % trefi
        if phase < trfc:
            start = start + (trfc - phase)

        activated = False
        row_hit = False
        open_row = bank.open_row
        if open_row == row:
            row_hit = True
            bank.row_hits += 1
            stats.row_hits += 1
            col_issue = start
        else:
            if open_row is None:
                bank.row_misses += 1
                stats.row_misses += 1
                act_start = start
            else:
                bank.row_conflicts += 1
                stats.row_conflicts += 1
                act_start = start + self._trp
            if bank.next_act_ns > act_start:
                act_start = bank.next_act_ns
            if rank.next_act_ns > act_start:
                act_start = rank.next_act_ns
            phase = (act_start - rank_index * stagger) % trefi
            if phase < trfc:
                act_start = act_start + (trfc - phase)
            activated = True
            bank.activations += 1
            stats.activations += 1
            energy_counts[CommandKind.ACT] = (
                energy_counts.get(CommandKind.ACT, 0) + 1
            )
            bank.next_act_ns = act_start + self._trc + extra_act_delay_ns
            rank.next_act_ns = act_start + self._trrd_s
            bank.open_row = row
            col_issue = act_start + self._trcd + extra_act_delay_ns

        transfer_start = col_issue + self._tcl
        if channel.bus_ready_ns > transfer_start:
            transfer_start = channel.bus_ready_ns
        completion = transfer_start + self._tburst
        channel.bus_ready_ns = completion

        if is_write:
            stats.writes += 1
            energy_counts[CommandKind.WR] = (
                energy_counts.get(CommandKind.WR, 0) + 1
            )
            ready = completion + self._twr
            if ready > bank.ready_ns:
                bank.ready_ns = ready
        else:
            stats.reads += 1
            energy_counts[CommandKind.RD] = (
                energy_counts.get(CommandKind.RD, 0) + 1
            )
            if col_issue > bank.ready_ns:
                bank.ready_ns = col_issue

        return start, completion, activated, row_hit

    # ------------------------------------------------------------------ #
    # Tracker-injected traffic
    # ------------------------------------------------------------------ #

    def counter_access(
        self, channel: int, rank: int, earliest_ns: float, is_write: bool
    ) -> DRAMAccessResult:
        """Service one access to the reserved in-DRAM RowHammer-counter region.

        Used by trackers that keep per-row counters in DRAM (Hydra's RCT,
        START's spill region).  The access round-robins over a reserved set of
        rows spread across the banks of the rank so that repeated counter
        misses exercise different banks, as the real designs do.
        """
        org = self.org
        self._counter_cursor += 1
        cursor = self._counter_cursor
        bank_local = cursor % org.banks_per_rank
        bank_group = bank_local // org.banks_per_group
        bank = bank_local % org.banks_per_group
        # The reserved region occupies the top rows of each bank.
        row = org.rows_per_bank - 1 - (
            (cursor // org.banks_per_rank) % self.COUNTER_REGION_ROWS
        )
        decoded = DecodedAddress(
            channel=channel,
            rank=rank,
            bank_group=bank_group,
            bank=bank,
            row=row,
            column=cursor % org.lines_per_row,
        )
        result = self.access(decoded, is_write, earliest_ns)
        if is_write:
            self.stats.counter_writes += 1
        else:
            self.stats.counter_reads += 1
        return result

    # ------------------------------------------------------------------ #
    # Mitigations and blackouts
    # ------------------------------------------------------------------ #

    def victim_refresh(
        self,
        aggressor: RowAddress,
        blast_radius: int,
        command: MitigationCommand,
        now_ns: float,
    ) -> float:
        """Issue a mitigative refresh for the victims of ``aggressor``.

        Returns the blocking duration charged for the refresh.  The blocking
        scope depends on the command: VRR blocks only the aggressor's bank,
        while DRFMsb / RFMsb block the same bank index across all bank groups
        of the rank.
        """
        t = self.timings
        victims = 2 * blast_radius
        if command is MitigationCommand.VRR:
            duration = t.vrr_per_victim_ns * victims
            scope = MitigationScope.BANK
            kind = CommandKind.VRR
        elif command is MitigationCommand.DRFM_SB:
            duration = t.drfm_sb_ns
            scope = MitigationScope.SAME_BANK_ALL_GROUPS
            kind = CommandKind.DRFM_SB
        else:
            duration = t.rfm_sb_ns
            scope = MitigationScope.SAME_BANK_ALL_GROUPS
            kind = CommandKind.RFM_SB

        bank = aggressor.bank
        blackout = Blackout(
            scope=scope,
            channel=bank.channel,
            rank=bank.rank,
            bank_group=bank.bank_group,
            bank=bank.bank,
            duration_ns=duration,
            reason=f"mitigation:{command.value}",
        )
        self.apply_blackout(blackout, now_ns)
        self.energy.record(kind)
        if victims > 1:
            self.energy.record(CommandKind.VRR, victims - 1)
        self.stats.victim_refreshes += 1
        self.stats.victim_rows_refreshed += victims
        return duration

    def apply_blackout(self, blackout: Blackout, now_ns: float) -> float:
        """Apply a blocking window to the banks covered by ``blackout``.

        Returns the time at which the blackout ends.  The blackout begins when
        the affected structure is next free (so back-to-back resets queue up
        rather than overlap).
        """
        org = self.org
        end = now_ns + blackout.duration_ns
        self.stats.blackouts += 1
        self.stats.blackout_time_ns += blackout.duration_ns
        per_reason = self.stats.blackout_time_by_reason
        per_reason[blackout.reason] = (
            per_reason.get(blackout.reason, 0.0) + blackout.duration_ns
        )

        if blackout.scope is MitigationScope.BANK:
            bank = BankAddress(
                blackout.channel, blackout.rank, blackout.bank_group, blackout.bank
            )
            self._banks[self._bank_index(bank)].block_until(end)
        elif blackout.scope is MitigationScope.SAME_BANK_ALL_GROUPS:
            for group in range(org.bank_groups_per_rank):
                bank = BankAddress(
                    blackout.channel, blackout.rank, group, blackout.bank
                )
                self._banks[self._bank_index(bank)].block_until(end)
        elif blackout.scope is MitigationScope.RANK:
            rank_state = self._ranks[self._rank_index(blackout.channel, blackout.rank)]
            rank_state.blocked_until_ns = max(rank_state.blocked_until_ns, end)
            self._close_rows_in_rank(blackout.channel, blackout.rank)
        elif blackout.scope is MitigationScope.CHANNEL:
            channel_state = self._channels[blackout.channel]
            channel_state.blocked_until_ns = max(channel_state.blocked_until_ns, end)
            for rank in range(org.ranks_per_channel):
                self._close_rows_in_rank(blackout.channel, rank)
        else:  # pragma: no cover - exhaustive over the enum
            raise ValueError(f"unknown blackout scope {blackout.scope}")
        return end

    def _close_rows_in_rank(self, channel: int, rank: int) -> None:
        """Precharge every bank in a rank (rows are closed by a bulk refresh)."""
        org = self.org
        for group in range(org.bank_groups_per_rank):
            for bank in range(org.banks_per_group):
                addr = BankAddress(channel, rank, group, bank)
                self._banks[self._bank_index(addr)].precharge()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def row_buffer_hit_rate(self) -> float:
        total = self.stats.row_hits + self.stats.row_misses + self.stats.row_conflicts
        if total == 0:
            return 0.0
        return self.stats.row_hits / total

    def energy_report(self, elapsed_ns: float):
        """Forward to the energy model, including auto-refresh energy."""
        refreshes = self.refresh.refreshes_elapsed(elapsed_ns)
        num_ranks = self.org.channels * self.org.ranks_per_channel
        self.energy.record(CommandKind.REF, refreshes * num_ranks)
        return self.energy.report(elapsed_ns)
