"""Shared last-level cache model."""

from repro.cache.llc import CacheAccessResult, CacheStats, SharedLLC

__all__ = ["SharedLLC", "CacheAccessResult", "CacheStats"]
