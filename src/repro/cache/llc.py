"""Shared set-associative last-level cache (LLC).

The LLC matters to the paper in three ways:

* benign workloads filter most of their traffic through it, so their DRAM
  demand depends on their working-set size relative to the LLC;
* the **cache-thrashing attack** (the paper's non-RowHammer baseline attack)
  works by evicting the benign cores' data;
* **START** reserves half of the LLC for RowHammer counters, shrinking the
  capacity available to data and adding counter fetch/writeback traffic.

The model is a conventional set-associative cache with per-set LRU
replacement, per-core statistics, and support for reserving ways
(:meth:`SharedLLC.reserve_ways`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.config import CacheConfig


@dataclass
class CacheStats:
    """Per-core and aggregate LLC statistics."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    per_core_hits: dict[int, int] = field(default_factory=dict)
    per_core_misses: dict[int, int] = field(default_factory=dict)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def core_hit_rate(self, core_id: int) -> float:
        hits = self.per_core_hits.get(core_id, 0)
        misses = self.per_core_misses.get(core_id, 0)
        total = hits + misses
        return hits / total if total else 0.0


@dataclass(frozen=True)
class CacheAccessResult:
    """Outcome of one LLC access."""

    hit: bool
    writeback: bool          # a dirty line was evicted and must be written to DRAM
    evicted_line: int | None = None


class SharedLLC:
    """Set-associative, LRU, write-back shared last-level cache."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._num_sets = config.num_sets
        self._data_ways = config.ways
        self._reserved_ways = 0
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self._num_sets)
        ]
        self.stats = CacheStats()
        # Optional instrumentation probe (repro.obs); None on the hot path.
        self.probe = None

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #

    @property
    def data_ways(self) -> int:
        """Ways available to demand data (total ways minus reserved ways)."""
        return self._data_ways

    @property
    def reserved_ways(self) -> int:
        return self._reserved_ways

    def reserve_ways(self, ways: int) -> None:
        """Reserve ``ways`` ways per set for non-data use (e.g. START counters).

        Reserving ways shrinks the associativity available to demand data; any
        line that no longer fits is evicted immediately.
        """
        if not 0 <= ways < self.config.ways:
            raise ValueError(
                f"cannot reserve {ways} of {self.config.ways} ways"
            )
        self._reserved_ways = ways
        self._data_ways = self.config.ways - ways
        for cache_set in self._sets:
            while len(cache_set) > self._data_ways:
                _, dirty = cache_set.popitem(last=False)
                self.stats.evictions += 1
                if dirty:
                    self.stats.dirty_evictions += 1

    @property
    def data_capacity_bytes(self) -> int:
        return self._num_sets * self._data_ways * self.config.line_size_bytes

    # ------------------------------------------------------------------ #
    # Access path
    # ------------------------------------------------------------------ #

    def _set_index(self, address: int) -> int:
        return (address // self.config.line_size_bytes) % self._num_sets

    def _tag(self, address: int) -> int:
        return address // (self.config.line_size_bytes * self._num_sets)

    def access(self, address: int, is_write: bool, core_id: int = 0) -> CacheAccessResult:
        """Perform one access; allocate on miss; return hit/writeback status."""
        set_index = self._set_index(address)
        tag = self._tag(address)
        cache_set = self._sets[set_index]

        if tag in cache_set:
            cache_set.move_to_end(tag)
            if is_write:
                cache_set[tag] = True
            self.stats.hits += 1
            self.stats.per_core_hits[core_id] = (
                self.stats.per_core_hits.get(core_id, 0) + 1
            )
            if self.probe is not None:
                self.probe.on_llc_access(core_id, True, is_write)
            return CacheAccessResult(hit=True, writeback=False)

        self.stats.misses += 1
        self.stats.per_core_misses[core_id] = (
            self.stats.per_core_misses.get(core_id, 0) + 1
        )
        if self.probe is not None:
            self.probe.on_llc_access(core_id, False, is_write)
        writeback = False
        evicted_line = None
        if self._data_ways == 0:
            # Fully reserved cache: every access bypasses to DRAM.
            return CacheAccessResult(hit=False, writeback=False)
        if len(cache_set) >= self._data_ways:
            evicted_tag, dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            evicted_line = evicted_tag * self._num_sets + set_index
            if dirty:
                self.stats.dirty_evictions += 1
                writeback = True
        cache_set[tag] = is_write
        return CacheAccessResult(
            hit=False, writeback=writeback, evicted_line=evicted_line
        )

    def flush(self) -> None:
        """Drop every line (used between independent simulations)."""
        for cache_set in self._sets:
            cache_set.clear()

    def occupancy(self) -> float:
        """Fraction of the data ways currently holding a line."""
        if self._data_ways == 0:
            return 0.0
        lines = sum(len(cache_set) for cache_set in self._sets)
        return lines / (self._num_sets * self._data_ways)
