"""Suite files: declarative scenario batches in YAML or JSON.

A suite file names scenario families and their parameters; loading it and
calling :meth:`ScenarioSuite.compile` produces the flat
:class:`~repro.sim.sweep.ScenarioSpec` list the sweep engine executes.  The
format::

    suite: demo                    # optional name
    description: what this probes  # optional
    defaults:                      # optional, applied to every entry whose
      nrh: 500                     # family declares the parameter (the
      requests_per_core: 2000      # entry's own params always win)
    scenarios:
      - family: multi-attacker
        params:
          tracker: dapper-h
          attackers: [blind-random-rows, {attack: row-streaming, hammer_rate: 0.5}]
          workloads: [{workload: 429.mcf, intensity: 1.5}, 470.lbm]
      - family: fuzz
        params: {count: 4, seed: 7}

YAML suites need PyYAML; when it is not installed, JSON suites (same
structure) keep working and YAML files raise a clear error.  All validation
errors -- unknown family, unknown or missing parameters, unknown workload or
attack names -- are reported as ``ValueError`` with the entry index, so the
CLI can print them without a traceback.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.scenarios.catalog import family_by_name
from repro.sim.sweep import ScenarioSpec

try:  # PyYAML is optional: JSON suites work without it.
    import yaml as _yaml
except ImportError:  # pragma: no cover - depends on the environment
    _yaml = None


@dataclass(frozen=True)
class SuiteEntry:
    """One family invocation inside a suite."""

    family: str
    params: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ScenarioSuite:
    """A parsed suite file: defaults plus an ordered list of entries."""

    name: str
    entries: tuple[SuiteEntry, ...]
    defaults: dict = field(default_factory=dict)
    description: str = ""

    def compile(self) -> list[ScenarioSpec]:
        """Expand every entry into specs, in suite order.

        Suite defaults are merged under each entry's parameters, but only the
        keys the entry's family actually declares -- so a shared ``nrh``
        default does not break a family without that knob.
        """
        specs: list[ScenarioSpec] = []
        for index, entry in enumerate(self.entries):
            try:
                family = family_by_name(entry.family)
            except ValueError as error:
                raise ValueError(
                    f"suite {self.name!r}, scenario #{index + 1}: {error}"
                ) from None
            known = set(family.parameter_names())
            params = {
                key: value
                for key, value in self.defaults.items()
                if key in known
            }
            params.update(entry.params)
            try:
                specs.extend(family.expand(params))
            except ValueError as error:
                raise ValueError(
                    f"suite {self.name!r}, scenario #{index + 1} "
                    f"(family {entry.family!r}): {error}"
                ) from None
        return specs


def parse_suite(data: object, name: str = "suite") -> ScenarioSuite:
    """Validate a parsed suite document (raises ``ValueError``)."""
    if not isinstance(data, dict):
        raise ValueError(f"suite {name!r}: top level must be a mapping")
    unknown = set(data) - {"suite", "name", "description", "defaults", "scenarios"}
    if unknown:
        raise ValueError(
            f"suite {name!r}: unknown top-level keys: {', '.join(sorted(unknown))}"
        )
    suite_name = data.get("suite") or data.get("name") or name
    defaults = data.get("defaults") or {}
    if not isinstance(defaults, dict):
        raise ValueError(f"suite {suite_name!r}: 'defaults' must be a mapping")
    raw_entries = data.get("scenarios")
    if not isinstance(raw_entries, list) or not raw_entries:
        raise ValueError(
            f"suite {suite_name!r}: 'scenarios' must be a non-empty list"
        )
    entries = []
    for index, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise ValueError(
                f"suite {suite_name!r}, scenario #{index + 1}: must be a mapping"
            )
        unknown = set(raw) - {"family", "params"}
        if unknown:
            raise ValueError(
                f"suite {suite_name!r}, scenario #{index + 1}: unknown keys: "
                f"{', '.join(sorted(unknown))}"
            )
        family = raw.get("family")
        if not isinstance(family, str) or not family:
            raise ValueError(
                f"suite {suite_name!r}, scenario #{index + 1}: "
                "'family' must be a non-empty string"
            )
        params = raw.get("params") or {}
        if not isinstance(params, dict):
            raise ValueError(
                f"suite {suite_name!r}, scenario #{index + 1}: "
                "'params' must be a mapping"
            )
        entries.append(SuiteEntry(family=family, params=dict(params)))
    return ScenarioSuite(
        name=str(suite_name),
        entries=tuple(entries),
        defaults=dict(defaults),
        description=str(data.get("description") or ""),
    )


def parse_suite_text(
    text: str, format: str = "yaml", name: str = "suite"
) -> ScenarioSuite:
    """Parse suite source text in the given format ('yaml' or 'json')."""
    if format == "json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"suite {name!r}: invalid JSON: {error}") from None
    elif format == "yaml":
        if _yaml is None:
            raise ValueError(
                f"suite {name!r}: PyYAML is not installed; "
                "use a JSON suite file instead"
            )
        try:
            data = _yaml.safe_load(text)
        except _yaml.YAMLError as error:
            raise ValueError(f"suite {name!r}: invalid YAML: {error}") from None
    else:
        raise ValueError(f"unknown suite format {format!r}; use 'yaml' or 'json'")
    return parse_suite(data, name=name)


def load_suite(path: str | os.PathLike) -> ScenarioSuite:
    """Load a suite file, picking the parser from the file extension."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as error:
        raise ValueError(f"cannot read suite file {path}: {error}") from None
    format = "json" if path.suffix.lower() == ".json" else "yaml"
    return parse_suite_text(text, format=format, name=path.stem)
