"""Registry of named, parameterized scenario families.

A *scenario family* is a declarative recipe that expands a small set of
parameters into a list of :class:`~repro.sim.sweep.ScenarioSpec` objects --
the unit the sweep engine caches, deduplicates and fans out over worker
processes.  Families are how the repo expresses "as many scenarios as you can
imagine" without writing Python: suite files (:mod:`repro.scenarios.suite`)
name a family and its parameters, the family compiles them down to specs, and
everything downstream (caching, pooling, normalization) comes for free.

Families are registered at import time by :mod:`repro.scenarios.families`
(the built-in catalog, including the paper's own figure scenarios) and can be
extended by user code through :func:`register_family`.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from repro.sim.sweep import ScenarioSpec

#: Sentinel default marking a parameter the caller must supply.
REQUIRED = object()


@dataclass(frozen=True)
class Parameter:
    """One declared parameter of a scenario family."""

    name: str
    default: object = REQUIRED
    doc: str = ""

    @property
    def required(self) -> bool:
        return self.default is REQUIRED


@dataclass(frozen=True)
class ScenarioFamily:
    """A named recipe expanding parameters into :class:`ScenarioSpec` lists.

    ``builder`` receives every declared parameter as a keyword argument
    (caller values merged over declared defaults) and returns an iterable of
    specs.  :meth:`expand` is the only entry point: it validates parameter
    names, fills defaults, and rejects missing required values -- so builders
    can assume a complete, known-key parameter mapping.
    """

    name: str
    description: str
    builder: Callable[..., Iterable[ScenarioSpec]]
    parameters: tuple[Parameter, ...] = field(default=())

    def parameter_names(self) -> tuple[str, ...]:
        return tuple(parameter.name for parameter in self.parameters)

    def expand(self, params: Mapping | None = None) -> list[ScenarioSpec]:
        """Expand the family into scenario specs (raises ``ValueError``)."""
        params = dict(params or {})
        known = set(self.parameter_names())
        unknown = set(params) - known
        if unknown:
            raise ValueError(
                f"family {self.name!r} does not take parameter(s) "
                f"{', '.join(sorted(repr(name) for name in unknown))}; "
                f"known: {', '.join(sorted(known)) or '(none)'}"
            )
        merged: dict = {}
        for parameter in self.parameters:
            if parameter.name in params:
                merged[parameter.name] = params[parameter.name]
            elif parameter.required:
                raise ValueError(
                    f"family {self.name!r} requires parameter {parameter.name!r}"
                )
            else:
                merged[parameter.name] = parameter.default
        try:
            specs = list(self.builder(**merged))
        except TypeError as error:
            # Builders coerce parameter values with int()/float(); a suite
            # supplying e.g. a list where a number belongs must surface as
            # the documented ValueError contract.  The original exception is
            # chained so a genuine builder bug keeps its traceback.
            raise ValueError(
                f"family {self.name!r}: bad parameter value ({error})"
            ) from error
        if not specs:
            raise ValueError(
                f"family {self.name!r} expanded to zero scenarios "
                f"(parameters: {params or '{}'})"
            )
        return specs


_FAMILIES: dict[str, ScenarioFamily] = {}


def register_family(family: ScenarioFamily) -> ScenarioFamily:
    """Add a family to the catalog (replacing any previous registration)."""
    _FAMILIES[family.name] = family
    return family


def available_families() -> tuple[str, ...]:
    """Names of every registered scenario family, sorted."""
    return tuple(sorted(_FAMILIES))


def family_by_name(name: str) -> ScenarioFamily:
    """Look a family up by name (raises ``ValueError`` for unknown names)."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario family {name!r}; "
            f"available: {', '.join(available_families())}"
        ) from None
