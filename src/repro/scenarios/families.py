"""The built-in scenario families.

Three groups:

* **Generic shapes** -- ``single`` and ``cross-product`` cover the classic
  tracker x attack x workload layout the CLI ``sweep`` command exposes.
* **Heterogeneous shapes** -- ``workload-blend``, ``multi-attacker``,
  ``attacker-count-sweep``, ``hammer-rate-sweep`` and ``fuzz`` compile down
  to per-core plans (:class:`~repro.sim.sweep.CoreAssignment`), expressing
  scenarios the paper's fixed four-core layout cannot: several heterogeneous
  attacker cores, mixed benign blends with per-core intensity, and seeded
  random exploration.
* **Paper scenarios** -- ``paper-figure3/4/11/12`` and ``paper-table4``
  declare exactly the scenario batches behind those figures/tables, so the
  figure runners in :mod:`repro.eval` and any suite file share one
  definition (and therefore one set of cache entries).

Workload blend entries are either a workload name or a mapping with keys
``workload`` (required), ``intensity`` (APKI multiplier, default 1.0) and
``cores`` (how many cores run this entry, default 1).  Attacker entries are
an attack name or a mapping with ``attack`` (required), ``hammer_rate``
(``(0, 1]``, default 1.0) and ``cores`` (default 1).
"""

from __future__ import annotations

from repro.attacks import available_attacks, tailored_attack_name
from repro.config import SystemConfig, baseline_config, reduced_row_config
from repro.cpu.workloads import SUITES, get_workload, workloads_in_suite
from repro.crypto.prng import XorShift64
from repro.scenarios.catalog import Parameter, ScenarioFamily, register_family
from repro.sim.sweep import CoreAssignment, ScenarioSpec
from repro.trackers.registry import create_tracker

#: Refresh-window scale used by short simulation windows (see DESIGN.md).
DEFAULT_TREFW_SCALE = 1.0 / 16.0

#: The scalable trackers the paper's motivation section attacks.
MOTIVATION_TRACKERS: tuple[str, ...] = ("hydra", "start", "abacus", "comet")


def default_workloads(per_suite: int = 1) -> list[str]:
    """A representative subset: the most memory-intensive workloads per suite.

    The paper's headline behaviours are driven by the memory-intensive
    workloads (its Figure 3/10/11 even split them out), so the quick subset
    picks the highest-APKI applications of each suite.
    """
    selected: list[str] = []
    for suite in SUITES:
        profiles = sorted(
            workloads_in_suite(suite), key=lambda p: p.apki, reverse=True
        )
        selected.extend(profile.name for profile in profiles[:per_suite])
    return selected


def motivation_series() -> list[tuple[str, str, str]]:
    """(label, tracker, attack) triples of the motivation experiments: cache
    thrashing on the unprotected system, then each scalable tracker under its
    tailored Perf-Attack."""
    return [("cache-thrashing", "none", "cache-thrashing")] + [
        (tracker, tracker, tailored_attack_name(tracker))
        for tracker in MOTIVATION_TRACKERS
    ]


def full_geometry_config(
    nrh: int, trefw_scale: float = DEFAULT_TREFW_SCALE
) -> SystemConfig:
    """The Table I system at the given threshold and refresh-window scale."""
    return baseline_config(nrh=nrh).with_refresh_window_scale(trefw_scale)


def streaming_config(
    nrh: int, trefw_scale: float = DEFAULT_TREFW_SCALE
) -> SystemConfig:
    """Reduced-row geometry for scenarios with the row-streaming attack
    (which must sweep the whole row space; see EXPERIMENTS.md)."""
    return reduced_row_config(nrh=nrh).with_refresh_window_scale(trefw_scale)


# --------------------------------------------------------------------------- #
# Validation and parsing helpers shared by the builders
# --------------------------------------------------------------------------- #


def _scenario_config(nrh: int, trefw_scale: float, geometry: str) -> SystemConfig:
    if geometry == "full":
        return full_geometry_config(int(nrh), float(trefw_scale))
    if geometry == "reduced":
        return streaming_config(int(nrh), float(trefw_scale))
    raise ValueError(
        f"unknown geometry {geometry!r}; expected 'full' or 'reduced'"
    )


def _check_tracker(name: str, config: SystemConfig) -> str:
    # The registry is the single source of truth for tracker names
    # (including recursive breakhammer: composition), so probe it directly.
    create_tracker(name, config)
    return name


def _check_attack(name: str) -> str:
    if name not in available_attacks():
        raise ValueError(
            f"unknown attack {name!r}; "
            f"available: {', '.join(available_attacks())}"
        )
    return name


def _check_workload(name: str) -> str:
    try:
        get_workload(name)
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r} (see `repro.cli list-workloads`)"
        ) from None
    return name


def _as_list(value, what: str) -> list:
    if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
        raise ValueError(f"{what} must be a list, got {value!r}")
    items = list(value)
    if not items:
        raise ValueError(f"{what} must not be empty")
    return items


def _benign_assignments(entries: list) -> list[CoreAssignment]:
    """Expand blend entries into one assignment per requested core."""
    assignments: list[CoreAssignment] = []
    for entry in entries:
        if isinstance(entry, str):
            entry = {"workload": entry}
        if not isinstance(entry, dict):
            raise ValueError(
                f"workload blend entry must be a name or mapping, got {entry!r}"
            )
        unknown = set(entry) - {"workload", "intensity", "cores"}
        if unknown:
            raise ValueError(
                f"unknown workload-entry keys: {', '.join(sorted(unknown))}"
            )
        if "workload" not in entry:
            raise ValueError(f"workload blend entry needs a 'workload': {entry!r}")
        name = _check_workload(entry["workload"])
        count = int(entry.get("cores", 1))
        if count < 1:
            raise ValueError(f"workload entry 'cores' must be >= 1, got {count}")
        assignment = CoreAssignment(
            role="workload",
            name=name,
            intensity=float(entry.get("intensity", 1.0)),
        )
        assignments.extend([assignment] * count)
    return assignments


def _attacker_assignments(entries: list) -> list[CoreAssignment]:
    """Expand attacker entries into one assignment per requested core."""
    assignments: list[CoreAssignment] = []
    for entry in entries:
        if isinstance(entry, str):
            entry = {"attack": entry}
        if not isinstance(entry, dict):
            raise ValueError(
                f"attacker entry must be a name or mapping, got {entry!r}"
            )
        unknown = set(entry) - {"attack", "hammer_rate", "cores"}
        if unknown:
            raise ValueError(
                f"unknown attacker-entry keys: {', '.join(sorted(unknown))}"
            )
        if "attack" not in entry:
            raise ValueError(f"attacker entry needs an 'attack': {entry!r}")
        name = _check_attack(entry["attack"])
        count = int(entry.get("cores", 1))
        if count < 1:
            raise ValueError(f"attacker entry 'cores' must be >= 1, got {count}")
        assignment = CoreAssignment(
            role="attack",
            name=name,
            hammer_rate=float(entry.get("hammer_rate", 1.0)),
        )
        assignments.extend([assignment] * count)
    return assignments


def _fill_plan(
    attackers: list[CoreAssignment],
    benign: list[CoreAssignment],
    num_cores: int,
) -> tuple[CoreAssignment, ...]:
    """Attackers first, then the benign blend cycled over the remaining cores."""
    if len(attackers) >= num_cores:
        raise ValueError(
            f"{len(attackers)} attacker core(s) leave no benign core on a "
            f"{num_cores}-core system"
        )
    benign_slots = num_cores - len(attackers)
    if len(benign) > benign_slots:
        raise ValueError(
            f"blend needs {len(benign)} benign core(s) but only "
            f"{benign_slots} remain on a {num_cores}-core system"
        )
    filled = [benign[index % len(benign)] for index in range(benign_slots)]
    return tuple(attackers + filled)


def _plan_label(plan: tuple[CoreAssignment, ...]) -> str:
    """The workload that labels a plan spec: the first benign core's."""
    for assignment in plan:
        if assignment.role == "workload":
            if assignment.name is not None:
                return assignment.name
            return assignment.profile.name
    raise ValueError("core plan has no workload core")  # pragma: no cover


_COMMON = (
    Parameter("nrh", 500, "RowHammer threshold"),
    Parameter("requests_per_core", 4_000, "request budget per benign core"),
    Parameter("seed", None, "scenario seed (None = configuration default)"),
    Parameter(
        "trefw_scale", DEFAULT_TREFW_SCALE, "refresh-window scale (short windows)"
    ),
    Parameter("geometry", "full", "'full' (Table I) or 'reduced' (small row space)"),
)


# --------------------------------------------------------------------------- #
# Generic shapes
# --------------------------------------------------------------------------- #


def _build_single(
    tracker,
    workload,
    attack,
    attack_matched_baseline,
    nrh,
    requests_per_core,
    seed,
    trefw_scale,
    geometry,
):
    config = _scenario_config(nrh, trefw_scale, geometry)
    _check_tracker(tracker, config)
    _check_workload(workload)
    if attack is not None:
        _check_attack(attack)
    return [
        ScenarioSpec(
            tracker=tracker,
            workload=workload,
            attack=attack,
            seed=seed,
            requests_per_core=int(requests_per_core),
            attack_matched_baseline=bool(attack_matched_baseline),
            config=config,
        )
    ]


register_family(
    ScenarioFamily(
        name="single",
        description="One classic scenario: tracker, workload, optional attack "
        "on core 0.",
        builder=_build_single,
        parameters=(
            Parameter("tracker", doc="tracker name (see list-trackers)"),
            Parameter("workload", doc="workload name (see list-workloads)"),
            Parameter("attack", None, "attack name, or None for benign"),
            Parameter(
                "attack_matched_baseline",
                False,
                "normalise against a baseline that also runs the attacker",
            ),
        )
        + _COMMON,
    )
)


def _build_cross_product(
    trackers,
    attacks,
    workloads,
    attack_matched_baseline,
    nrh,
    requests_per_core,
    seed,
    trefw_scale,
    geometry,
):
    config = _scenario_config(nrh, trefw_scale, geometry)
    trackers = [_check_tracker(t, config) for t in _as_list(trackers, "trackers")]
    attacks = [
        None if a in (None, "none") else _check_attack(a)
        for a in _as_list(attacks, "attacks")
    ]
    workloads = [_check_workload(w) for w in _as_list(workloads, "workloads")]
    return [
        ScenarioSpec(
            tracker=tracker,
            workload=workload,
            attack=attack,
            seed=seed,
            requests_per_core=int(requests_per_core),
            attack_matched_baseline=bool(attack_matched_baseline),
            config=config,
        )
        for tracker in trackers
        for attack in attacks
        for workload in workloads
    ]


register_family(
    ScenarioFamily(
        name="cross-product",
        description="Full tracker x attack x workload cross-product (the CLI "
        "sweep shape).",
        builder=_build_cross_product,
        parameters=(
            Parameter("trackers", doc="list of tracker names"),
            Parameter("attacks", ["none"], "list of attack names ('none' = benign)"),
            Parameter("workloads", doc="list of workload names"),
            Parameter(
                "attack_matched_baseline",
                False,
                "normalise against baselines that also run the attacker",
            ),
        )
        + _COMMON,
    )
)


# --------------------------------------------------------------------------- #
# Heterogeneous shapes (core plans)
# --------------------------------------------------------------------------- #


def _build_workload_blend(
    tracker,
    workloads,
    nrh,
    requests_per_core,
    seed,
    trefw_scale,
    geometry,
):
    config = _scenario_config(nrh, trefw_scale, geometry)
    _check_tracker(tracker, config)
    benign = _benign_assignments(_as_list(workloads, "workloads"))
    plan = _fill_plan([], benign, config.cores.num_cores)
    return [
        ScenarioSpec(
            tracker=tracker,
            workload=_plan_label(plan),
            seed=seed,
            requests_per_core=int(requests_per_core),
            config=config,
            core_plan=plan,
        )
    ]


register_family(
    ScenarioFamily(
        name="workload-blend",
        description="Mixed benign workloads with per-core intensity, no "
        "attacker (cycled over all cores).",
        builder=_build_workload_blend,
        parameters=(
            Parameter("tracker", "none", "tracker name"),
            Parameter(
                "workloads",
                doc="blend entries: name or {workload, intensity, cores}",
            ),
        )
        + _COMMON,
    )
)


def _build_multi_attacker(
    tracker,
    attackers,
    workloads,
    attack_matched_baseline,
    nrh,
    requests_per_core,
    seed,
    trefw_scale,
    geometry,
):
    config = _scenario_config(nrh, trefw_scale, geometry)
    _check_tracker(tracker, config)
    attacker_cores = _attacker_assignments(_as_list(attackers, "attackers"))
    benign = _benign_assignments(_as_list(workloads, "workloads"))
    plan = _fill_plan(attacker_cores, benign, config.cores.num_cores)
    return [
        ScenarioSpec(
            tracker=tracker,
            workload=_plan_label(plan),
            seed=seed,
            requests_per_core=int(requests_per_core),
            attack_matched_baseline=bool(attack_matched_baseline),
            config=config,
            core_plan=plan,
        )
    ]


register_family(
    ScenarioFamily(
        name="multi-attacker",
        description="Several heterogeneous attacker cores (each with its own "
        "hammer rate) against a benign workload blend.",
        builder=_build_multi_attacker,
        parameters=(
            Parameter("tracker", doc="tracker name"),
            Parameter(
                "attackers",
                doc="attacker entries: name or {attack, hammer_rate, cores}",
            ),
            Parameter(
                "workloads",
                doc="benign blend filling the remaining cores (cycled)",
            ),
            Parameter(
                "attack_matched_baseline",
                False,
                "normalise against a baseline that keeps the attackers running",
            ),
        )
        + _COMMON,
    )
)


def _build_attacker_count_sweep(
    tracker,
    attack,
    counts,
    hammer_rate,
    workloads,
    nrh,
    requests_per_core,
    seed,
    trefw_scale,
    geometry,
):
    config = _scenario_config(nrh, trefw_scale, geometry)
    _check_tracker(tracker, config)
    _check_attack(attack)
    benign = _benign_assignments(_as_list(workloads, "workloads"))
    specs = []
    for count in _as_list(counts, "counts"):
        count = int(count)
        if count < 0:
            raise ValueError(f"attacker count must be >= 0, got {count}")
        attacker_cores = [
            CoreAssignment(role="attack", name=attack, hammer_rate=float(hammer_rate))
        ] * count
        plan = _fill_plan(attacker_cores, benign, config.cores.num_cores)
        specs.append(
            ScenarioSpec(
                tracker=tracker,
                workload=_plan_label(plan),
                seed=seed,
                requests_per_core=int(requests_per_core),
                config=config,
                core_plan=plan,
            )
        )
    return specs


register_family(
    ScenarioFamily(
        name="attacker-count-sweep",
        description="One scenario per attacker count (0 = pure benign blend), "
        "same attack kernel on every attacker core.",
        builder=_build_attacker_count_sweep,
        parameters=(
            Parameter("tracker", doc="tracker name"),
            Parameter("attack", doc="attack kernel every attacker core runs"),
            Parameter("counts", [0, 1, 2], "attacker-core counts to sweep"),
            Parameter("hammer_rate", 1.0, "hammer rate shared by all attackers"),
            Parameter("workloads", doc="benign blend for the remaining cores"),
        )
        + _COMMON,
    )
)


def _build_hammer_rate_sweep(
    tracker,
    attack,
    rates,
    attackers,
    workloads,
    nrh,
    requests_per_core,
    seed,
    trefw_scale,
    geometry,
):
    config = _scenario_config(nrh, trefw_scale, geometry)
    _check_tracker(tracker, config)
    _check_attack(attack)
    benign = _benign_assignments(_as_list(workloads, "workloads"))
    attackers = int(attackers)
    if attackers < 1:
        raise ValueError(f"attackers must be >= 1, got {attackers}")
    specs = []
    for rate in _as_list(rates, "rates"):
        attacker_cores = [
            CoreAssignment(role="attack", name=attack, hammer_rate=float(rate))
        ] * attackers
        plan = _fill_plan(attacker_cores, benign, config.cores.num_cores)
        specs.append(
            ScenarioSpec(
                tracker=tracker,
                workload=_plan_label(plan),
                seed=seed,
                requests_per_core=int(requests_per_core),
                config=config,
                core_plan=plan,
            )
        )
    return specs


register_family(
    ScenarioFamily(
        name="hammer-rate-sweep",
        description="One scenario per attacker hammer rate, fixed attack "
        "kernel and benign blend.",
        builder=_build_hammer_rate_sweep,
        parameters=(
            Parameter("tracker", doc="tracker name"),
            Parameter("attack", doc="attack kernel"),
            Parameter("rates", [1.0, 0.5, 0.25], "hammer rates to sweep"),
            Parameter("attackers", 1, "number of attacker cores"),
            Parameter("workloads", doc="benign blend for the remaining cores"),
        )
        + _COMMON,
    )
)


#: Hammer rates and intensities the fuzz family draws from (discrete choices
#: keep scenario descriptions readable and cache keys reproducible).
_FUZZ_RATES = (1.0, 0.75, 0.5, 0.25)
_FUZZ_INTENSITIES = (0.5, 0.75, 1.0, 1.5, 2.0)


def _build_fuzz(
    count,
    seed,
    trackers,
    attacks,
    workloads,
    max_attackers,
    nrh,
    requests_per_core,
    trefw_scale,
    geometry,
):
    config = _scenario_config(nrh, trefw_scale, geometry)
    trackers = [_check_tracker(t, config) for t in _as_list(trackers, "trackers")]
    attacks = [_check_attack(a) for a in _as_list(attacks, "attacks")]
    workloads = [_check_workload(w) for w in _as_list(workloads, "workloads")]
    count = int(count)
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    max_attackers = min(int(max_attackers), config.cores.num_cores - 1)
    if max_attackers < 0:
        raise ValueError("max_attackers must be >= 0")

    # One deterministic stream drives every random choice, so a (count, seed)
    # pair always expands to the same scenario list -- and therefore the same
    # cache keys -- no matter where or when it is compiled.
    rng = XorShift64((int(seed) << 8) ^ 0xF0220D)
    specs = []
    for index in range(count):
        tracker = trackers[rng.next_below(len(trackers))]
        num_attackers = rng.next_below(max_attackers + 1)
        attacker_cores = [
            CoreAssignment(
                role="attack",
                name=attacks[rng.next_below(len(attacks))],
                hammer_rate=_FUZZ_RATES[rng.next_below(len(_FUZZ_RATES))],
            )
            for _ in range(num_attackers)
        ]
        benign = [
            CoreAssignment(
                role="workload",
                name=workloads[rng.next_below(len(workloads))],
                intensity=_FUZZ_INTENSITIES[
                    rng.next_below(len(_FUZZ_INTENSITIES))
                ],
            )
            for _ in range(config.cores.num_cores - num_attackers)
        ]
        plan = tuple(attacker_cores + benign)
        specs.append(
            ScenarioSpec(
                tracker=tracker,
                workload=_plan_label(plan),
                seed=(int(seed) * 1_000_003 + index) & 0x7FFF_FFFF,
                requests_per_core=int(requests_per_core),
                config=config,
                core_plan=plan,
            )
        )
    return specs


register_family(
    ScenarioFamily(
        name="fuzz",
        description="Seeded random scenarios: tracker, attacker count/kernels/"
        "rates and benign blend all drawn from pools.",
        builder=_build_fuzz,
        parameters=(
            Parameter("count", doc="how many scenarios to generate"),
            Parameter("seed", 2025, "fuzz seed (same seed = same scenarios)"),
            Parameter("trackers", ["none", "dapper-h"], "tracker pool"),
            Parameter(
                "attacks",
                ["refresh", "blind-random-rows", "cache-thrashing"],
                "attack-kernel pool",
            ),
            Parameter(
                "workloads",
                ["429.mcf", "470.lbm", "433.milc", "510.parest"],
                "benign workload pool",
            ),
            Parameter("max_attackers", 2, "maximum attacker cores per scenario"),
            Parameter("nrh", 500, "RowHammer threshold"),
            Parameter("requests_per_core", 4_000, "request budget per benign core"),
            Parameter(
                "trefw_scale", DEFAULT_TREFW_SCALE, "refresh-window scale"
            ),
            Parameter("geometry", "full", "'full' or 'reduced'"),
        ),
    )
)


# --------------------------------------------------------------------------- #
# Paper scenarios: the exact batches behind the sweep-based figures/tables.
# The figure runners in repro.eval expand these same families, so a suite
# file referencing them shares cache entries with `repro.cli figure N`.
# --------------------------------------------------------------------------- #


def _paper_workloads(workloads, fallback: list[str]) -> list[str]:
    # Only None means "use the figure's default subset"; an explicitly empty
    # list is rejected like in every other family.
    if workloads is None:
        workloads = fallback
    return [_check_workload(w) for w in _as_list(workloads, "workloads")]


def _build_paper_figure3(workloads, requests_per_core, nrh):
    workloads = _paper_workloads(workloads, default_workloads(1))
    config = full_geometry_config(int(nrh))
    return [
        ScenarioSpec(
            tracker=tracker,
            workload=workload,
            attack=attack,
            requests_per_core=int(requests_per_core),
            config=config,
        )
        for workload in workloads
        for _, tracker, attack in motivation_series()
    ]


register_family(
    ScenarioFamily(
        name="paper-figure3",
        description="Figure 3: per-workload impact of cache thrashing and the "
        "four tailored Perf-Attacks.",
        builder=_build_paper_figure3,
        parameters=(
            Parameter("workloads", None, "workloads (None = default subset)"),
            Parameter("requests_per_core", 8_000),
            Parameter("nrh", 500),
        ),
    )
)


def _build_paper_figure4(workloads, requests_per_core, nrh_values):
    workloads = _paper_workloads(workloads, default_workloads(1)[:3])
    return [
        ScenarioSpec(
            tracker=tracker,
            workload=workload,
            attack=attack,
            requests_per_core=int(requests_per_core),
            config=full_geometry_config(int(nrh)),
        )
        for nrh in nrh_values
        for _, tracker, attack in motivation_series()
        for workload in workloads
    ]


register_family(
    ScenarioFamily(
        name="paper-figure4",
        description="Figure 4: Perf-Attack slowdowns as the RowHammer "
        "threshold varies.",
        builder=_build_paper_figure4,
        parameters=(
            Parameter("workloads", None, "workloads (None = default subset)"),
            Parameter("requests_per_core", 6_000),
            Parameter("nrh_values", (500, 1000, 2000, 4000)),
        ),
    )
)


def _build_paper_figure11(workloads, requests_per_core, nrh):
    workloads = _paper_workloads(workloads, default_workloads(1))
    config = full_geometry_config(int(nrh))
    return [
        ScenarioSpec(
            tracker="dapper-h",
            workload=workload,
            requests_per_core=int(requests_per_core),
            config=config,
        )
        for workload in workloads
    ]


register_family(
    ScenarioFamily(
        name="paper-figure11",
        description="Figure 11: DAPPER-H on benign applications (no attacker).",
        builder=_build_paper_figure11,
        parameters=(
            Parameter("workloads", None, "workloads (None = default subset)"),
            Parameter("requests_per_core", 8_000),
            Parameter("nrh", 500),
        ),
    )
)


def paper_figure12_series(nrh: int) -> list[tuple[str, str | None, SystemConfig]]:
    """(label, attack, config) triples of one Figure 12 threshold step.  The
    streaming attack needs the reduced-row geometry; the batch mixes both
    configurations freely."""
    return [
        ("DAPPER-H", None, full_geometry_config(nrh)),
        ("DAPPER-H-Streaming", "row-streaming", streaming_config(nrh)),
        ("DAPPER-H-Refresh", "refresh", full_geometry_config(nrh)),
    ]


def _build_paper_figure12(workloads, requests_per_core, nrh_values):
    workloads = _paper_workloads(workloads, default_workloads(1)[:3])
    return [
        ScenarioSpec(
            tracker="dapper-h",
            workload=workload,
            attack=attack,
            requests_per_core=int(requests_per_core),
            attack_matched_baseline=attack is not None,
            config=config,
        )
        for nrh in nrh_values
        for _, attack, config in paper_figure12_series(int(nrh))
        for workload in workloads
    ]


register_family(
    ScenarioFamily(
        name="paper-figure12",
        description="Figure 12: DAPPER-H vs NRH, benign and under the "
        "streaming/refresh attacks.",
        builder=_build_paper_figure12,
        parameters=(
            Parameter("workloads", None, "workloads (None = default subset)"),
            Parameter("requests_per_core", 6_000),
            Parameter("nrh_values", (125, 250, 500, 1000)),
        ),
    )
)


def paper_table4_series(nrh: int) -> list[tuple[str, str | None, SystemConfig]]:
    """(scenario, attack, config) triples of one Table IV threshold step."""
    full = full_geometry_config(nrh)
    return [
        ("benign", None, full),
        ("streaming", "row-streaming", streaming_config(nrh)),
        ("refresh", "refresh", full),
    ]


def _build_paper_table4(workloads, requests_per_core, nrh_values):
    workloads = _paper_workloads(workloads, default_workloads(1)[:3])
    return [
        ScenarioSpec(
            tracker="dapper-h",
            workload=workload,
            attack=attack,
            requests_per_core=int(requests_per_core),
            attack_matched_baseline=attack is not None,
            config=config,
        )
        for nrh in nrh_values
        for _, attack, config in paper_table4_series(int(nrh))
        for workload in workloads
    ]


register_family(
    ScenarioFamily(
        name="paper-table4",
        description="Table IV: energy overhead of DAPPER-H (benign, "
        "streaming, refresh).",
        builder=_build_paper_table4,
        parameters=(
            Parameter("workloads", None, "workloads (None = default subset)"),
            Parameter("requests_per_core", 6_000),
            Parameter("nrh_values", (125, 500, 1000)),
        ),
    )
)


# --------------------------------------------------------------------------- #
# Long-horizon shapes (discrete-event engine territory)
# --------------------------------------------------------------------------- #


def _build_multi_refresh_window(
    tracker,
    workload,
    attack,
    windows,
    nrh,
    seed,
    trefw_scale,
    geometry,
):
    config = _scenario_config(nrh, trefw_scale, geometry)
    trackers = (
        [tracker] if isinstance(tracker, str) else _as_list(tracker, "tracker")
    )
    for name in trackers:
        _check_tracker(name, config)
    profile = get_workload(_check_workload(workload))
    attack = None if attack in (None, "none") else _check_attack(attack)
    windows = int(windows)
    if windows < 1:
        raise ValueError(f"windows must be >= 1, got {windows}")
    # Size the budget so the benign issue stream alone (gaps at peak issue
    # rate, no stalls) spans the requested number of refresh windows; memory
    # stalls only stretch the run further, so the bound is conservative.
    peak = config.cores.peak_instructions_per_ns
    mean_gap = max(1, int(round(1000.0 / profile.apki)))
    requests = (
        int(windows * config.timings.trefw_ns * peak / mean_gap * 1.15) + 1
    )
    return [
        ScenarioSpec(
            tracker=name,
            workload=workload,
            attack=attack,
            seed=seed,
            requests_per_core=requests,
            config=config,
        )
        for name in trackers
    ]


register_family(
    ScenarioFamily(
        name="multi-refresh-window",
        description="A horizon spanning N full tREFW windows (tracker epoch "
        "resets included); sized automatically from the workload's APKI.  "
        "Pair with REPRO_SIM_ENGINE=event for long windows.",
        builder=_build_multi_refresh_window,
        parameters=(
            Parameter("tracker", doc="tracker name, or a list of them"),
            Parameter("workload", doc="workload name (see list-workloads)"),
            Parameter("attack", None, "attack name, or None for benign"),
            Parameter("windows", 2, "refresh windows the run must span"),
            Parameter("nrh", 500, "RowHammer threshold"),
            Parameter("seed", None, "scenario seed (None = config default)"),
            Parameter(
                "trefw_scale",
                1.0 / 256.0,
                "refresh-window scale; 1.0 = the full 32 ms window",
            ),
            Parameter(
                "geometry", "full", "'full' (Table I) or 'reduced' geometry"
            ),
        ),
    )
)


def _build_trace_replay(
    tracker,
    trace,
    cores,
    attack,
    nrh,
    requests_per_core,
    seed,
    trefw_scale,
    geometry,
):
    from pathlib import Path

    from repro.cpu.tracefile import load_trace_info

    config = _scenario_config(nrh, trefw_scale, geometry)
    _check_tracker(tracker, config)
    attackers = (
        []
        if attack in (None, "none")
        else [CoreAssignment(role="attack", name=_check_attack(attack))]
    )
    cores = int(cores)
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    num_cores = config.cores.num_cores
    if len(attackers) + cores > num_cores:
        raise ValueError(
            f"{len(attackers)} attacker + {cores} trace core(s) exceed the "
            f"{num_cores}-core system"
        )
    trace_path = str(trace)
    info = load_trace_info(trace_path)  # validates the file up front
    plan = tuple(
        attackers
        + [CoreAssignment(role="trace", trace=trace_path)] * cores
        + [CoreAssignment(role="idle")]
        * (num_cores - len(attackers) - cores)
    )
    requests = (
        len(info.entries)
        if requests_per_core is None
        else int(requests_per_core)
    )
    return [
        ScenarioSpec(
            tracker=tracker,
            workload=f"trace:{Path(trace_path).name}",
            seed=seed,
            requests_per_core=requests,
            config=config,
            core_plan=plan,
        )
    ]


register_family(
    ScenarioFamily(
        name="trace-replay",
        description="Replay a recorded trace file (cpu/tracefile.py format) "
        "on N cores, optionally next to an attacker.  Budget defaults to one "
        "full pass over the trace.",
        builder=_build_trace_replay,
        parameters=(
            Parameter("tracker", "none", "tracker name"),
            Parameter("trace", doc="path to a trace file"),
            Parameter("cores", 1, "how many cores replay the trace"),
            Parameter("attack", None, "attack name, or None for benign"),
            Parameter("nrh", 500, "RowHammer threshold"),
            Parameter(
                "requests_per_core",
                None,
                "budget per trace core (None = one full trace pass)",
            ),
            Parameter("seed", None, "scenario seed (None = config default)"),
            Parameter(
                "trefw_scale", DEFAULT_TREFW_SCALE, "refresh-window scale"
            ),
            Parameter(
                "geometry", "full", "'full' (Table I) or 'reduced' geometry"
            ),
        ),
    )
)
