"""Declarative scenario catalog.

The catalog turns scenario *shapes* into data: named, parameterized families
(:mod:`repro.scenarios.catalog`) expand into
:class:`~repro.sim.sweep.ScenarioSpec` batches, and suite files
(:mod:`repro.scenarios.suite`) compose families declaratively in YAML/JSON.
Everything compiles down to the sweep engine, so on-disk caching, in-batch
baseline deduplication and process-pool fan-out apply to every scenario a
family can express -- including multi-attacker and mixed-workload core plans
the classic harness could not.

Importing this package registers the built-in families
(:mod:`repro.scenarios.families`).  See ``docs/scenarios.md`` for the suite
format reference and ``repro.cli scenarios list/show/run`` for the CLI.
"""

from repro.scenarios.catalog import (
    Parameter,
    ScenarioFamily,
    available_families,
    family_by_name,
    register_family,
)
from repro.scenarios.families import (
    DEFAULT_TREFW_SCALE,
    MOTIVATION_TRACKERS,
    default_workloads,
    full_geometry_config,
    motivation_series,
    streaming_config,
)
from repro.scenarios.suite import (
    ScenarioSuite,
    SuiteEntry,
    load_suite,
    parse_suite,
    parse_suite_text,
)

__all__ = [
    "Parameter",
    "ScenarioFamily",
    "available_families",
    "family_by_name",
    "register_family",
    "DEFAULT_TREFW_SCALE",
    "MOTIVATION_TRACKERS",
    "default_workloads",
    "full_geometry_config",
    "motivation_series",
    "streaming_config",
    "ScenarioSuite",
    "SuiteEntry",
    "load_suite",
    "parse_suite",
    "parse_suite_text",
]
