#!/usr/bin/env python3
"""Markdown link checker for the docs tree (stdlib only, used by CI).

Scans the given markdown files/directories for inline links and image
references, and verifies that every *relative* target exists on disk
(anchors are stripped; external http(s)/mailto links are not fetched).

Usage:  python tools/check_links.py README.md docs benchmarks/README.md
Exit codes: 0 = all links resolve, 1 = broken links found, 2 = bad usage.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Inline links/images: [text](target) / ![alt](target).  Reference-style
#: definitions ("[id]: target") are rare in this repo and intentionally out
#: of scope.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Schemes that point outside the repository and are not checked.
_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown_files(arguments: list[str]) -> list[Path]:
    files: list[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.suffix.lower() == ".md" and path.exists():
            files.append(path)
        else:
            print(f"check_links: no such markdown file or directory: {path}")
            raise SystemExit(2)
    return files


def broken_links(markdown: Path) -> list[tuple[int, str]]:
    broken: list[tuple[int, str]] = []
    text = markdown.read_text(encoding="utf-8")
    # Fenced code blocks regularly contain [x](y)-shaped text that is not a
    # link; skip them.
    in_fence = False
    for line_number, line in enumerate(text.splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            if not (markdown.parent / relative).exists():
                broken.append((line_number, target))
    return broken


def main(arguments: list[str]) -> int:
    if not arguments:
        print(__doc__.strip())
        return 2
    files = iter_markdown_files(arguments)
    failures = 0
    for markdown in files:
        for line_number, target in broken_links(markdown):
            print(f"{markdown}:{line_number}: broken link -> {target}")
            failures += 1
    print(
        f"check_links: {len(files)} file(s) scanned, {failures} broken link(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
