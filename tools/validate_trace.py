#!/usr/bin/env python3
"""Validate a Chrome-trace JSON file emitted by ``repro.cli obs trace``.

Checks the document against the checked-in schema subset
(``tools/trace_schema.json`` by default) using the dependency-free validator
in :mod:`repro.obs`, and prints a short summary of the event population.
Exit codes: 0 when the trace conforms, 1 on validation errors, 2 when the
trace or schema file cannot be read.

Usage::

    PYTHONPATH=src python tools/validate_trace.py trace.json
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import validate_chrome_trace                   # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome-trace JSON file to validate")
    parser.add_argument(
        "--schema",
        default=str(Path(__file__).resolve().parent / "trace_schema.json"),
        help="schema file (default: tools/trace_schema.json)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.trace, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"ERROR: cannot read trace {args.trace}: {error}", file=sys.stderr)
        return 2
    try:
        with open(args.schema, encoding="utf-8") as handle:
            schema = json.load(handle)
    except (OSError, ValueError) as error:
        print(f"ERROR: cannot read schema {args.schema}: {error}", file=sys.stderr)
        return 2

    errors = validate_chrome_trace(trace, schema)
    if errors:
        for error in errors:
            print(f"ERROR: {error}", file=sys.stderr)
        print(f"{args.trace}: INVALID ({len(errors)} error(s))", file=sys.stderr)
        return 1

    events = trace.get("traceEvents", [])
    phases = Counter(event.get("ph") for event in events)
    breakdown = ", ".join(
        f"{count} {phase!r}" for phase, count in sorted(phases.items())
    )
    dropped = trace.get("otherData", {}).get("dropped_events", 0)
    print(f"{args.trace}: OK ({len(events)} events: {breakdown}; "
          f"{dropped} dropped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
