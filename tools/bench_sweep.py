#!/usr/bin/env python3
"""Benchmark the sweep engine: serial vs pooled vs warm-warehouse.

Runs one reference scenario suite (a tracker x attack x workload
cross-product) three ways and writes the wall-clock and cache accounting to a
JSON artifact (default ``BENCH_sweep.json``), seeding the repo's performance
trajectory:

``serial``
    Cold, cache-less, single-process execution -- the baseline cost of
    simulating the suite.
``pool``
    Cold execution fanned out over ``--jobs`` worker processes, filling the
    SQLite warehouse as results land.
``warm``
    The same suite again, served entirely from the warehouse: this is the
    steady-state cost of re-generating figures or resuming campaigns.

Usage::

    PYTHONPATH=src python tools/bench_sweep.py --jobs 4 -o BENCH_sweep.json

The reference suite is intentionally small enough for CI (a few minutes
serial) while still exercising baseline dedup, the process pool, and both
attack and benign scenarios.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios import family_by_name                    # noqa: E402
from repro.sim.sweep import CODE_VERSION, SweepRunner         # noqa: E402
from repro.store import SqliteStore                           # noqa: E402


def reference_specs(requests_per_core: int):
    """The benchmark's scenario matrix (via the scenario catalog)."""
    return family_by_name("cross-product").expand(
        {
            "trackers": ["none", "graphene", "dapper-h"],
            "attacks": ["none", "refresh"],
            "workloads": ["453.povray", "429.mcf"],
            "requests_per_core": requests_per_core,
            "geometry": "reduced",
            "nrh": 500,
        }
    )


def _run_mode(specs, runner: SweepRunner) -> dict:
    started = time.perf_counter()
    outcomes = runner.run(specs)
    elapsed = time.perf_counter() - started
    return {
        "elapsed_seconds": elapsed,
        "scenarios": len(outcomes),
        "simulations": runner.stats.simulations,
        "cache_hits": runner.stats.cache_hits,
        "cache_misses": runner.stats.cache_misses,
        "cache_hit_rate": runner.stats.hit_rate,
        "baselines_shared": runner.stats.baselines_shared,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_sweep.json")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--requests", type=int, default=1500)
    parser.add_argument(
        "--store",
        default=None,
        help="warehouse path (default: a temporary .sqlite file)",
    )
    args = parser.parse_args(argv)

    specs = reference_specs(args.requests)
    print(f"reference suite: {len(specs)} scenarios, "
          f"{args.requests} requests/core")

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(args.store) if args.store else Path(tmp) / "wh.sqlite"

        serial = _run_mode(specs, SweepRunner(jobs=1))
        print(f"serial: {serial['elapsed_seconds']:.1f}s "
              f"({serial['cache_misses']} simulations)")

        store = SqliteStore(store_path)
        pool = _run_mode(specs, SweepRunner(store=store, jobs=args.jobs))
        pool["jobs"] = args.jobs
        print(f"pool x{args.jobs}: {pool['elapsed_seconds']:.1f}s "
              f"({pool['cache_misses']} simulations)")

        warm = _run_mode(specs, SweepRunner(store=store, jobs=args.jobs))
        print(f"warm warehouse: {warm['elapsed_seconds']:.2f}s "
              f"(hit rate {warm['cache_hit_rate']:.0%})")

    report = {
        "benchmark": "sweep-engine",
        "code_version": CODE_VERSION,
        "reference_suite": {
            "scenarios": len(specs),
            "requests_per_core": args.requests,
        },
        "modes": {"serial": serial, "pool": pool, "warm": warm},
        "speedup_pool_vs_serial": (
            serial["elapsed_seconds"] / pool["elapsed_seconds"]
            if pool["elapsed_seconds"] > 0
            else None
        ),
        "speedup_warm_vs_serial": (
            serial["elapsed_seconds"] / warm["elapsed_seconds"]
            if warm["elapsed_seconds"] > 0
            else None
        ),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    if warm["cache_hit_rate"] < 1.0:
        print("ERROR: warm warehouse run was not fully cached", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
