#!/usr/bin/env python3
"""Benchmark the sweep engine: scalar vs batched, serial vs pooled vs warm.

Runs one reference scenario suite (a tracker x attack x workload
cross-product) four ways and writes the wall-clock and cache accounting to a
JSON artifact (default ``BENCH_sweep.json``), seeding the repo's performance
trajectory:

``scalar_serial``
    Cold, cache-less, single-process execution on the reference *scalar*
    engine -- the pre-batching cost of simulating the suite.
``serial``
    The same cold single-process execution on the default batched engine.
    The two serial modes must produce bit-identical results; the benchmark
    asserts this on every run.
``pool``
    Cold execution fanned out over ``--jobs`` worker processes, filling the
    SQLite warehouse as results land.
``warm``
    The same suite again, served entirely from the warehouse: this is the
    steady-state cost of re-generating figures or resuming campaigns.

Usage::

    PYTHONPATH=src python tools/bench_sweep.py --jobs 4 -o BENCH_sweep.json

With ``--baseline committed.json`` the run additionally gates against a
committed report: the run fails if the batched engine's serial-mode speedup
over the scalar reference regressed by more than ``--max-regression``
(default 25%).  The speedup ratio is used rather than raw seconds so the
gate is insensitive to how fast the machine running the check happens to be.

The reference suite is intentionally small enough for CI while still
exercising baseline dedup, the process pool, and both attack and benign
scenarios.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios import family_by_name                    # noqa: E402
from repro.sim.sweep import CODE_VERSION, SweepRunner         # noqa: E402
from repro.store import SqliteStore                           # noqa: E402

_ENGINE_ENV = "REPRO_SIM_ENGINE"


def reference_specs(requests_per_core: int):
    """The benchmark's scenario matrix (via the scenario catalog)."""
    return family_by_name("cross-product").expand(
        {
            "trackers": ["none", "graphene", "dapper-h"],
            "attacks": ["none", "refresh"],
            "workloads": ["453.povray", "429.mcf"],
            "requests_per_core": requests_per_core,
            "geometry": "reduced",
            "nrh": 500,
        }
    )


def _run_mode(specs, runner: SweepRunner, engine: str | None = None) -> tuple[dict, list]:
    previous = os.environ.get(_ENGINE_ENV)
    if engine is not None:
        os.environ[_ENGINE_ENV] = engine
    try:
        started = time.perf_counter()
        outcomes = runner.run(specs)
        elapsed = time.perf_counter() - started
    finally:
        if engine is not None:
            if previous is None:
                os.environ.pop(_ENGINE_ENV, None)
            else:
                os.environ[_ENGINE_ENV] = previous
    return {
        "elapsed_seconds": elapsed,
        "scenarios": len(outcomes),
        "simulations": runner.stats.simulations,
        "cache_hits": runner.stats.cache_hits,
        "cache_misses": runner.stats.cache_misses,
        "cache_hit_rate": runner.stats.hit_rate,
        "baselines_shared": runner.stats.baselines_shared,
    }, outcomes


def _profile_stages(specs) -> dict[str, float]:
    """Per-stage wall time of one representative instrumented simulation.

    Picks the first mitigated attack scenario of the suite (the most work per
    stage) and runs it once with a pipeline profiler attached; the breakdown
    (generation / warm-up / drain / mitigation scan) lands in the report so
    stage-level cost shifts show up next to the headline speedups.
    """
    from repro.obs import PipelineProfiler, Probe
    from repro.sim.experiment import run_workload

    spec = next(
        (s for s in specs if s.tracker != "none" and s.attack), specs[0]
    )
    profiler = PipelineProfiler()
    run_workload(
        config=spec.resolved_config(),
        tracker=spec.tracker,
        workload=spec.resolved_workload(),
        attack=spec.attack,
        requests_per_core=spec.requests_per_core,
        seed=spec.resolved_seed(),
        attack_warmup_activations=spec.attack_warmup_activations,
        llc_warmup_accesses=spec.llc_warmup_accesses,
        probe=Probe(profiler=profiler),
    )
    report = profiler.report()
    return {
        name: stage["seconds"] for name, stage in report["stages"].items()
    }


def _longhorizon_case(tmp: Path, requests: int) -> dict:
    """Idle-heavy long-horizon case: the event engine vs the scalar reference.

    Replays a hot-set trace (256 distinct lines, inter-access gaps far above
    the LLC hit latency) for ``requests`` accesses on one core next to idle
    cores -- the shape the event engine's quiescent stretch executor exists
    for.  Both engines run the same spec; the case records their wall-clock
    and asserts bit-identical results.
    """
    import random

    from repro.cpu.trace import TraceEntry
    from repro.cpu.tracefile import write_trace
    from repro.sim.experiment import run_workload

    rng = random.Random(7)
    entries = [
        TraceEntry(
            gap_instructions=rng.randint(2_500, 7_500),
            address=(1 << 20) + 64 * rng.randrange(256),
            is_write=rng.random() < 0.25,
        )
        for _ in range(16_384)
    ]
    trace_path = tmp / "longhorizon.trace"
    write_trace(trace_path, entries, header="bench: hot-set idle-heavy trace")
    # The full 32 ms window is the whole point: most of the horizon is
    # idle stretch between sparse hits, which the event engine skips.
    spec = family_by_name("trace-replay").expand(
        {
            "tracker": "graphene",
            "trace": str(trace_path),
            "requests_per_core": requests,
            "geometry": "reduced",
            "nrh": 500,
            "trefw_scale": 1.0,
        }
    )[0]

    def _one(engine: str):
        started = time.perf_counter()
        result = run_workload(
            config=spec.config,
            tracker=spec.tracker,
            workload=spec.workload,
            requests_per_core=spec.requests_per_core,
            seed=spec.seed,
            llc_warmup_accesses=spec.llc_warmup_accesses,
            core_plan=spec.core_plan,
            engine=engine,
        )
        return time.perf_counter() - started, result

    scalar_seconds, scalar_result = _one("scalar")
    event_seconds, event_result = _one("event")
    return {
        "scenario": "trace-replay (hot-set, idle-heavy)",
        "trace_entries": len(entries),
        "requests_per_core": requests,
        "scalar_seconds": scalar_seconds,
        "event_seconds": event_seconds,
        "parity": scalar_result.to_dict() == event_result.to_dict(),
        "speedup": (
            scalar_seconds / event_seconds if event_seconds > 0 else None
        ),
    }


#: Speedup ratios gated by --baseline, with a human-readable label each.
_GATED_SPEEDUPS = (
    ("speedup_batched_vs_scalar", "batched-vs-scalar"),
    ("speedup_event_vs_scalar", "event-vs-scalar (long horizon)"),
)


def check_baseline(report: dict, baseline: dict, max_regression: float) -> str | None:
    """Compare a fresh report against a committed baseline report.

    Returns an error message when a gated engine speedup over the scalar
    reference regressed by more than ``max_regression`` (a fraction: 0.25
    allows a 25% slowdown), or ``None`` when the run is acceptable.
    Reports that predate a speedup field skip that gate rather than fail,
    so the gate cannot break on schema evolution.
    """
    for field, label in _GATED_SPEEDUPS:
        current = report.get(field)
        reference = baseline.get(field)
        if not current or not reference:
            continue
        floor = reference * (1.0 - max_regression)
        if current < floor:
            return (
                f"regression: {label} speedup {current:.2f}x is below "
                f"{floor:.2f}x ({(1.0 - max_regression):.0%} of the "
                f"committed baseline's {reference:.2f}x)"
            )
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default="BENCH_sweep.json")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--requests", type=int, default=1500)
    parser.add_argument(
        "--longhorizon-requests",
        type=int,
        default=4_000_000,
        help="request budget of the idle-heavy long-horizon case (event "
        "engine vs scalar reference)",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="warehouse path (default: a temporary .sqlite file)",
    )
    parser.add_argument(
        "--allow-warm-store",
        action="store_true",
        help="proceed even if --store already holds results (the pool/warm "
        "modes then measure a pre-warmed warehouse; the report is marked)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_sweep.json to gate against (see --max-regression)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="maximum tolerated serial-mode speedup regression vs --baseline "
        "(fraction, default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    store_prewarmed = False
    if args.store is not None:
        store_path = Path(args.store)
        if store_path.exists():
            existing = len(SqliteStore(store_path))
            if existing:
                if not args.allow_warm_store:
                    print(
                        f"ERROR: store {store_path} already holds {existing} "
                        "results; the pool and warm modes would measure cache "
                        "hits instead of simulation cost.  Point --store at a "
                        "fresh path, or pass --allow-warm-store to benchmark "
                        "against the pre-warmed warehouse anyway.",
                        file=sys.stderr,
                    )
                    return 2
                store_prewarmed = True
                print(
                    f"note: store {store_path} holds {existing} results; "
                    "pool/warm modes measure a pre-warmed warehouse"
                )

    specs = reference_specs(args.requests)
    print(f"reference suite: {len(specs)} scenarios, "
          f"{args.requests} requests/core")

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(args.store) if args.store else Path(tmp) / "wh.sqlite"

        scalar_serial, scalar_outcomes = _run_mode(
            specs, SweepRunner(jobs=1), engine="scalar"
        )
        print(f"scalar serial: {scalar_serial['elapsed_seconds']:.1f}s "
              f"({scalar_serial['cache_misses']} simulations)")

        serial, batched_outcomes = _run_mode(
            specs, SweepRunner(jobs=1), engine="batched"
        )
        print(f"serial: {serial['elapsed_seconds']:.1f}s "
              f"({serial['cache_misses']} simulations)")

        mismatched = [
            outcome.spec.tracker
            for outcome, reference in zip(batched_outcomes, scalar_outcomes)
            if outcome.result.to_dict() != reference.result.to_dict()
        ]
        if mismatched:
            print(
                "ERROR: batched engine diverged from the scalar reference "
                f"on: {', '.join(mismatched)}",
                file=sys.stderr,
            )
            return 1

        store = SqliteStore(store_path)
        pool_runner = SweepRunner(store=store, jobs=args.jobs)
        pool, _ = _run_mode(specs, pool_runner)
        pool["jobs"] = args.jobs
        worker_utilization = pool_runner.worker_report()
        print(f"pool x{args.jobs}: {pool['elapsed_seconds']:.1f}s "
              f"({pool['cache_misses']} simulations)")

        warm, _ = _run_mode(specs, SweepRunner(store=store, jobs=args.jobs))
        print(f"warm warehouse: {warm['elapsed_seconds']:.2f}s "
              f"(hit rate {warm['cache_hit_rate']:.0%})")

        stage_times = _profile_stages(specs)
        top = sorted(
            stage_times.items(), key=lambda item: item[1], reverse=True
        )[:3]
        print("stage times: " + ", ".join(
            f"{name} {seconds:.2f}s" for name, seconds in top
        ))

        longhorizon = _longhorizon_case(
            Path(tmp), args.longhorizon_requests
        )
        if not longhorizon["parity"]:
            print(
                "ERROR: event engine diverged from the scalar reference "
                "on the long-horizon case",
                file=sys.stderr,
            )
            return 1
        print(
            f"long horizon: scalar {longhorizon['scalar_seconds']:.1f}s, "
            f"event {longhorizon['event_seconds']:.1f}s "
            f"({longhorizon['speedup']:.1f}x)"
        )

    def _ratio(numerator, denominator):
        return numerator / denominator if denominator > 0 else None

    report = {
        "benchmark": "sweep-engine",
        "code_version": CODE_VERSION,
        "reference_suite": {
            "scenarios": len(specs),
            "requests_per_core": args.requests,
        },
        "store_prewarmed": store_prewarmed,
        "engine_parity": True,
        "modes": {
            "scalar_serial": scalar_serial,
            "serial": serial,
            "pool": pool,
            "warm": warm,
        },
        "speedup_batched_vs_scalar": _ratio(
            scalar_serial["elapsed_seconds"], serial["elapsed_seconds"]
        ),
        "speedup_pool_vs_serial": _ratio(
            serial["elapsed_seconds"], pool["elapsed_seconds"]
        ),
        "speedup_warm_vs_serial": _ratio(
            serial["elapsed_seconds"], warm["elapsed_seconds"]
        ),
        "longhorizon": longhorizon,
        "speedup_event_vs_scalar": longhorizon["speedup"],
        "stage_times": stage_times,
        "worker_utilization": worker_utilization,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    if report["speedup_batched_vs_scalar"]:
        print(f"batched vs scalar (serial): "
              f"{report['speedup_batched_vs_scalar']:.2f}x")
    if report["speedup_event_vs_scalar"]:
        print(f"event vs scalar (long horizon): "
              f"{report['speedup_event_vs_scalar']:.2f}x")

    if warm["cache_hit_rate"] < 1.0:
        print("ERROR: warm warehouse run was not fully cached", file=sys.stderr)
        return 1

    if args.baseline:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        error = check_baseline(report, baseline, args.max_regression)
        if error:
            print(f"ERROR: {error}", file=sys.stderr)
            return 3
        reference = baseline.get("speedup_batched_vs_scalar")
        if reference:
            print(f"baseline gate passed (committed speedup {reference:.2f}x)")

    return 0


if __name__ == "__main__":
    sys.exit(main())
