#!/usr/bin/env python3
"""Trace recording and replay.

The evaluation in the paper is trace-driven.  This example shows the trace
workflow this reproduction offers around its synthetic workloads:

1. record a synthetic trace of 429.mcf to a plain-text trace file,
2. inspect a few lines of the file,
3. replay the file through the simulator with DAPPER-H,
4. verify that the replay reproduces the live synthetic run bit-exactly.

The same :class:`repro.cpu.tracefile.FileTraceGenerator` can replay traces
captured from real hardware or other simulators, as long as they are converted
to the ``<gap_instructions> <address> <R|W>`` format.

Run with:  python examples/trace_replay.py
"""

import tempfile
from pathlib import Path

from repro.config import reduced_row_config
from repro.cpu.tracefile import FileTraceGenerator, record_workload_trace, write_trace
from repro.cpu.trace import WorkloadTraceGenerator
from repro.cpu.workloads import get_workload
from repro.dram.address import AddressMapper
from repro.sim.simulator import CoreSpec, Simulator

WORKLOAD = "429.mcf"
REQUESTS = 3_000


def simulate(config, generator):
    simulator = Simulator(
        config,
        "dapper-h",
        [CoreSpec(generator=generator, request_budget=REQUESTS)],
    )
    return simulator.run()


def main():
    config = reduced_row_config(rows_per_bank=4096)

    # 1. Record the synthetic workload to a trace file.
    entries = record_workload_trace(WORKLOAD, REQUESTS, config=config)
    trace_path = Path(tempfile.gettempdir()) / "repro_mcf.trace"
    write_trace(trace_path, entries, header=f"{WORKLOAD}, {REQUESTS} LLC accesses")
    print(f"recorded {len(entries)} accesses of {WORKLOAD} to {trace_path}")

    # 2. Show what the format looks like.
    print("\nfirst lines of the trace file:")
    for line in trace_path.read_text().splitlines()[:5]:
        print(f"  {line}")

    # 3. Replay the trace and run the live synthetic generator side by side.
    live_generator = WorkloadTraceGenerator(
        get_workload(WORKLOAD),
        config.dram,
        AddressMapper(config.dram),
        core_id=0,
        seed=config.seed,
    )
    live = simulate(config, live_generator)
    replayed = simulate(config, FileTraceGenerator(trace_path))

    # 4. The replay must match the live run exactly.
    print("\n                         live        replayed")
    print(f"  IPC                : {live.core_results[0].ipc:10.4f} "
          f"{replayed.core_results[0].ipc:10.4f}")
    print(f"  DRAM activations   : {live.dram_stats.activations:10d} "
          f"{replayed.dram_stats.activations:10d}")
    print(f"  mitigations        : {live.tracker_stats.mitigations_issued:10d} "
          f"{replayed.tracker_stats.mitigations_issued:10d}")
    matches = (
        live.core_results[0].ipc == replayed.core_results[0].ipc
        and live.dram_stats.activations == replayed.dram_stats.activations
    )
    print(f"\nreplay reproduces the live run: {'yes' if matches else 'NO'}")


if __name__ == "__main__":
    main()
