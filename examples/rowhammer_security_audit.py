#!/usr/bin/env python3
"""RowHammer security audit.

Mounts a classic double-sided RowHammer attack while three benign cores run,
and uses the ground-truth auditor to check whether any DRAM row's activation
count ever exceeds the RowHammer threshold before its victims are refreshed.
Without a mitigation the attack sails past the threshold; with DAPPER-S or
DAPPER-H it never gets there.

Run with:  python examples/rowhammer_security_audit.py
"""

from repro.config import reduced_row_config
from repro.sim.experiment import run_workload

WORKLOAD = "403.gcc"


def audit(tracker: str) -> None:
    config = reduced_row_config(nrh=500, rows_per_bank=4096)
    result = run_workload(
        config=config,
        tracker=tracker,
        workload=WORKLOAD,
        attack="rowhammer",
        requests_per_core=3_000,
        enable_auditor=True,
    )
    report = result.security
    verdict = "SECURE" if report.is_secure else "VULNERABLE"
    print(f"\ntracker = {tracker:10s} -> {verdict}")
    print(f"  RowHammer threshold (NRH):        {report.nrh}")
    print(f"  maximum per-row activation count: {report.max_count} "
          f"({report.max_count_fraction_of_nrh * 100:.0f}% of NRH)")
    print(f"  rows tracked by the auditor:      {report.rows_tracked}")
    print(f"  mitigative refreshes issued:      "
          f"{result.tracker_stats.mitigations_issued}")
    if not report.is_secure:
        worst = report.violations[0]
        print(f"  first violation: rank-row {worst.rank_row_index} reached "
              f"{worst.count} activations at t = {worst.time_ns / 1e3:.1f} us")


def main():
    print("Double-sided RowHammer attack, ground-truth security audit")
    for tracker in ("none", "para", "dapper-s", "dapper-h"):
        audit(tracker)
    print("\nThe unprotected system lets the aggressor rows blow through the "
          "threshold; every tracker (including DAPPER) keeps the count below "
          "NRH by refreshing victims in time.")


if __name__ == "__main__":
    main()
