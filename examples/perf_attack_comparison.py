#!/usr/bin/env python3
"""Performance-Attack comparison: a miniature Figure 1.

One memory-intensive workload (470.lbm) runs on three cores while the fourth
core mounts, in turn: a cache-thrashing attack against an unprotected system,
and the tailored RH-Tracker-based Perf-Attack against Hydra, START, CoMeT,
ABACUS -- and finally the mapping-agnostic refresh attack against DAPPER-H.
The output shows why shared-structure trackers are vulnerable and how DAPPER-H
holds up.

Run with:  python examples/perf_attack_comparison.py
"""

from repro import baseline_config
from repro.eval.report import format_table
from repro.sim.experiment import ExperimentRunner
from repro.sim.metrics import slowdown_percent

WORKLOAD = "470.lbm"


def main():
    config = baseline_config(nrh=500).with_refresh_window_scale(1 / 16)
    runner = ExperimentRunner(config, requests_per_core=6_000)

    scenarios = [
        ("none", "cache-thrashing", "cache thrashing vs unprotected system"),
        ("hydra", "rcc-conflict", "RCC set-conflict attack on Hydra"),
        ("start", "counter-streaming", "counter-streaming attack on START"),
        ("comet", "rat-thrash", "RAT-thrashing attack on CoMeT"),
        ("abacus", "id-streaming", "row-ID streaming attack on ABACUS"),
        ("dapper-h", "refresh", "refresh attack on DAPPER-H"),
    ]

    rows = []
    for tracker, attack, description in scenarios:
        print(f"running: {description} ...")
        run = runner.run(tracker, WORKLOAD, attack=attack)
        result = run.result
        rows.append(
            {
                "tracker": tracker,
                "attack": attack,
                "normalized_perf": round(run.normalized, 3),
                "slowdown_%": round(slowdown_percent(run.normalized), 1),
                "counter_traffic": result.dram_stats.counter_reads
                + result.dram_stats.counter_writes,
                "reset_blackout_ms": round(
                    result.dram_stats.blackout_time_ns / 1e6, 2
                ),
            }
        )

    print("\nPerformance of the three benign copies of "
          f"{WORKLOAD} (1.0 = attack-free insecure baseline):\n")
    print(format_table(rows))
    print("\nThe tailored attacks cripple the shared-structure trackers through "
          "counter traffic (Hydra/START) or multi-millisecond reset refreshes "
          "(CoMeT/ABACUS); DAPPER-H's secure hashing keeps the damage to a few "
          "percent.")


if __name__ == "__main__":
    main()
