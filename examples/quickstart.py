#!/usr/bin/env python3
"""Quickstart: simulate one workload on the baseline system with DAPPER-H.

Runs four copies of 429.mcf on the Table I system (4 cores, 8MB shared LLC,
2x32GB DDR5-6400) twice -- once with no RowHammer mitigation and once with
DAPPER-H -- and reports per-core IPC, DRAM statistics, the tracker's
mitigation activity, and the normalized performance of DAPPER-H.

Run with:  python examples/quickstart.py
"""

from repro import baseline_config
from repro.sim.experiment import run_workload
from repro.sim.metrics import normalized_performance, slowdown_percent

WORKLOAD = "429.mcf"
REQUESTS_PER_CORE = 6_000


def describe(result, label):
    print(f"\n--- {label} ---")
    for core in result.core_results:
        print(f"  core {core.core_id}: IPC {core.ipc:.3f} "
              f"({core.instructions} instructions, {core.requests} LLC accesses)")
    stats = result.dram_stats
    print(f"  DRAM: {stats.reads} reads, {stats.writes} writes, "
          f"{stats.activations} activations, "
          f"row-buffer hit rate {stats.row_hits / max(1, stats.row_hits + stats.row_misses + stats.row_conflicts):.2f}")
    print(f"  LLC hit rate: {result.llc_stats.hit_rate:.2f}")
    print(f"  tracker '{result.tracker_name}': "
          f"{result.tracker_stats.mitigations_issued} mitigations, "
          f"{result.tracker_stats.rows_mitigated} rows refreshed")
    print(f"  energy: {result.energy.total_nj / 1e6:.2f} mJ over "
          f"{result.elapsed_ns / 1e6:.3f} ms simulated")


def main():
    config = baseline_config(nrh=500)
    print(f"Simulating {WORKLOAD} x {config.cores.num_cores} cores, "
          f"NRH = {config.rowhammer.nrh}")

    baseline = run_workload(
        config=config, tracker="none", workload=WORKLOAD,
        requests_per_core=REQUESTS_PER_CORE,
    )
    describe(baseline, "no RowHammer mitigation (insecure baseline)")

    dapper = run_workload(
        config=config, tracker="dapper-h", workload=WORKLOAD,
        requests_per_core=REQUESTS_PER_CORE,
    )
    describe(dapper, "DAPPER-H")

    norm = normalized_performance(
        [c.ipc for c in dapper.core_results],
        [c.ipc for c in baseline.core_results],
    )
    print(f"\nDAPPER-H normalized performance: {norm:.4f} "
          f"({slowdown_percent(norm):.2f}% slowdown)")


if __name__ == "__main__":
    main()
