#!/usr/bin/env python3
"""Plugging a custom RowHammer tracker into the evaluation harness.

The library's tracker interface (:class:`repro.trackers.base.RowHammerTracker`)
is the integration point the paper's memory controller exposes: observe every
activation, optionally request counter traffic / victim refreshes / blackouts,
and report a storage cost.  This example implements the simplest possible
sound tracker -- one dedicated counter per row of the whole system, the design
whose storage cost motivates every low-cost tracker in the literature -- and
runs it through the same harness as the built-in mitigations:

* RowHammer security audit under double-sided hammering,
* benign overhead against the insecure baseline,
* storage comparison against DAPPER-H.

Run with:  python examples/custom_tracker.py
"""

from repro.analysis.security import GroundTruthAuditor
from repro.attacks import attack_by_name
from repro.config import baseline_config
from repro.dram.address import AddressMapper, RowAddress
from repro.dram.dram_system import DRAMSystem
from repro.mc.controller import MemoryController
from repro.sim.experiment import run_workload
from repro.sim.metrics import normalized_performance, slowdown_percent
from repro.trackers.base import (
    EMPTY_RESPONSE,
    RowHammerTracker,
    StorageReport,
    TrackerResponse,
)
from repro.trackers.registry import create_tracker


class PerRowCounterTracker(RowHammerTracker):
    """One dedicated activation counter per DRAM row (the exact ideal).

    Perfectly precise and trivially resilient to Perf-Attacks -- but the
    storage report below shows why nobody builds it: megabytes of SRAM per
    channel, against DAPPER-H's 96KB.
    """

    name = "per-row-counters"

    def __init__(self, config):
        super().__init__(config)
        self._counters: dict[tuple[int, int, int], int] = {}

    def on_activation(self, row: RowAddress, now_ns: float) -> TrackerResponse:
        self._note_activation()
        key = (row.bank.channel, row.bank.rank, row.rank_row_index(self.org))
        count = self._counters.get(key, 0) + 1
        if count >= self.mitigation_threshold:
            self._counters[key] = 0
            self._note_mitigation()
            return TrackerResponse(mitigations=(row,))
        self._counters[key] = count
        return EMPTY_RESPONSE

    def on_refresh_window(self, window_index: int, now_ns: float) -> TrackerResponse:
        self._counters.clear()
        self.stats.periodic_resets += 1
        return EMPTY_RESPONSE

    def storage_report(self) -> StorageReport:
        counter_bits = max(1, (self.mitigation_threshold - 1).bit_length())
        rows_per_channel = self.org.rows_per_channel
        return StorageReport(sram_bytes=rows_per_channel * counter_bits // 8)


def security_audit(tracker, config) -> bool:
    """Hammer the tracker double-sided and audit the ground truth."""
    mapper = AddressMapper(config.dram)
    auditor = GroundTruthAuditor(config)
    controller = MemoryController(
        config, DRAMSystem(config), tracker, mapper, auditor=auditor
    )
    attack = attack_by_name("rowhammer", config.dram, mapper)
    now = 0.0
    for _ in range(8_000):
        entry = attack.next_entry()
        now = controller.service(entry.address, entry.is_write, now)
    report = auditor.report()
    print(f"  max per-row activations: {report.max_count} "
          f"(threshold {report.nrh}) -> "
          f"{'SECURE' if report.is_secure else 'VULNERABLE'}")
    return report.is_secure


def main():
    config = baseline_config(nrh=500)

    print("1. RowHammer security audit of the custom tracker")
    security_audit(PerRowCounterTracker(config), config)

    print("\n2. Benign overhead versus the insecure baseline (4x 403.gcc)")
    baseline = run_workload(
        config=config, tracker="none", workload="403.gcc", requests_per_core=4_000
    )
    custom = run_workload(
        config=config,
        tracker=PerRowCounterTracker(config),
        workload="403.gcc",
        requests_per_core=4_000,
    )
    norm = normalized_performance(
        [c.ipc for c in custom.core_results],
        [c.ipc for c in baseline.core_results],
    )
    print(f"  normalized performance: {norm:.4f} "
          f"({slowdown_percent(norm):.2f}% slowdown)")

    print("\n3. Storage comparison per 32GB channel")
    custom_report = PerRowCounterTracker(config).storage_report()
    dapper_report = create_tracker("dapper-h", config).storage_report()
    print(f"  per-row counters : {custom_report.sram_kb / 1024:.1f} MB SRAM")
    print(f"  DAPPER-H         : {dapper_report.sram_kb:.0f} KB SRAM")
    print(f"  ratio            : "
          f"{custom_report.sram_bytes / dapper_report.sram_bytes:.0f}x")


if __name__ == "__main__":
    main()
