#!/usr/bin/env python3
"""Mapping-Capturing attack: analytical model (Table II) and empirical attack.

First prints the closed-form analysis of Section V-D / Table II (how quickly a
single secure hash can be reverse-engineered for different re-keying periods),
then mounts the attack empirically against live DAPPER-S and DAPPER-H tracker
instances, treating each mitigative refresh as the timing side channel the
paper assumes.

Run with:  python examples/mapping_capture_attack.py
"""

from repro.analysis.dapper_h_security import analyze_dapper_h_mapping_capture
from repro.analysis.mapping_capture import table2_rows
from repro.attacks.mapping_capture import run_mapping_capture_attack
from repro.config import baseline_config, reduced_row_config
from repro.core.dapper_h import DapperHTracker
from repro.core.dapper_s import DapperSTracker
from repro.eval.report import format_table


def main():
    print("Table II -- analytical Mapping-Capturing attack on DAPPER-S")
    rows = [
        {
            "reset_period_us": row["reset_period_us"],
            "attack_iterations": round(row["attack_iterations"], 1),
            "attack_time_us": round(row["attack_time_us"], 1),
            "paper_iterations": row["paper_attack_iterations"],
            "paper_time_us": row["paper_attack_time_us"],
        }
        for row in table2_rows()
    ]
    print(format_table(rows))

    analysis = analyze_dapper_h_mapping_capture()
    print("\nDAPPER-H double-hash analysis (Eq. 6-7):")
    print(f"  success probability per trial:     {analysis.success_probability_per_trial:.2e}")
    print(f"  trials per refresh window:         {analysis.trials_per_refresh_window}")
    print(f"  capture probability per tREFW:     {analysis.success_probability_per_window:.2e}")
    print(f"  prevention rate:                   {analysis.prevention_rate * 100:.3f}%")

    print("\nEmpirical attack against DAPPER-S (reduced 64K-row rank so the "
          "single-hash capture completes quickly):")
    small = reduced_row_config(nrh=500, rows_per_bank=2048)
    result = run_mapping_capture_attack(DapperSTracker(small), small, max_time_ns=64e6)
    print(f"  captured = {result.captured} after {result.reset_periods_used} reset "
          f"periods, {result.probe_activations} probes, "
          f"{result.elapsed_ms:.2f} ms of simulated attack time")

    print("\nEmpirical attack against DAPPER-H (full 2M-row rank):")
    full = baseline_config(nrh=500)
    result = run_mapping_capture_attack(DapperHTracker(full), full, max_time_ns=8e6)
    print(f"  captured = {result.captured} after {result.target_activations} target "
          f"activations and {result.probe_activations} probes "
          f"({result.elapsed_ms:.2f} ms simulated) -- the double hash holds.")


if __name__ == "__main__":
    main()
