#!/usr/bin/env python3
"""Composing BreakHammer-style thread throttling with existing trackers.

Section VII-A of the paper discusses BreakHammer, a concurrent proposal that
identifies the hardware thread responsible for triggered mitigations and
throttles it, and notes that DAPPER can be combined with it.  This example
runs the composition on two scenarios:

* CoMeT under its tailored RAT-thrashing Perf-Attack -- the throttling shim
  identifies the attacking core and slows it down (within a short simulation
  window the dominant cost is the structure-reset blackout the warm-up has
  already provoked, so the recovery is modest; over full refresh windows the
  slowed attacker provokes fewer resets);
* DAPPER-H under the refresh attack -- the shim identifies the hammering
  thread from the mitigations it triggers and rate-limits it, returning the
  bandwidth it was burning to the benign cores.

Run with:  python examples/breakhammer_throttling.py
"""

from repro.config import baseline_config
from repro.sim.experiment import run_workload
from repro.sim.metrics import slowdown_percent

WORKLOAD = "470.lbm"
REQUESTS = 4_000
TREFW_SCALE = 1 / 16
WARMUP = 150_000


def normalized(result, baseline):
    benign = [c.core_id for c in result.benign_results() if c.core_id != 0]
    return sum(result.ipc_of(i) / baseline.ipc_of(i) for i in benign) / len(benign)


def main():
    config = baseline_config(nrh=500).with_refresh_window_scale(TREFW_SCALE)
    baseline = run_workload(
        config=config,
        tracker="none",
        workload=WORKLOAD,
        requests_per_core=REQUESTS,
    )

    scenarios = (
        ("comet", "rat-thrash"),
        ("breakhammer:comet", "rat-thrash"),
        ("dapper-h", "refresh"),
        ("breakhammer:dapper-h", "refresh"),
    )
    print(f"{'tracker':<24} {'attack':<12} {'norm. perf':>11} {'slowdown':>9} "
          f"{'attacker throttle (ms)':>23}")
    for tracker, attack in scenarios:
        result = run_workload(
            config=config,
            tracker=tracker,
            workload=WORKLOAD,
            attack=attack,
            requests_per_core=REQUESTS,
            attack_warmup_activations=WARMUP,
        )
        norm = normalized(result, baseline)
        print(f"{tracker:<24} {attack:<12} {norm:>11.4f} "
              f"{slowdown_percent(norm):>8.2f}% "
              f"{result.tracker_stats.throttle_time_ns / 1e6:>23.3f}")

    print("\nThe shim must never hurt the benign cores; once the attacking "
          "thread is identified it claws bandwidth back for them.")


if __name__ == "__main__":
    main()
