"""Setuptools entry point.

The declarative configuration lives in ``pyproject.toml``; this shim exists so
that ``pip install -e .`` also works on environments whose setuptools/pip
tool-chain predates PEP 660 editable installs (no ``wheel`` package).
"""

from setuptools import setup

setup()
