"""Figure 17: PRAC versus DAPPER-H.  PRAC pays a roughly constant benign
overhead from its per-activation counter read-modify-writes; DAPPER-H is
nearly free on benign applications."""

from repro.eval.figures import default_workloads, figure17


def test_figure17_prac_comparison(regenerate):
    figure = regenerate(
        figure17,
        workloads=default_workloads(1)[:2],
        requests_per_core=6_000,
        nrh_values=(500, 1000),
    )

    for nrh in (500, 1000):
        rows = {row["series"]: row["normalized_performance"] for row in figure.filter(nrh=nrh)}
        # PRAC's benign overhead is visible at every threshold; DAPPER-H beats it.
        assert rows["PRAC"] < 0.99
        assert rows["DAPPER-H"] > rows["PRAC"]
        # PRAC is comparatively insensitive to the Perf-Attack.
        assert abs(rows["PRAC-Perf"] - rows["PRAC"]) < 0.15
