"""Shared helpers for the benchmark harness.

Every benchmark regenerates one figure or table of the paper.  The simulation
behind a figure is executed exactly once (``rounds=1``) through
pytest-benchmark so the harness records its runtime, and the resulting
rows/series are printed in the paper's table-like form so the run's output can
be compared against the published figure (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.eval.report import FigureData, print_figure


@pytest.fixture
def regenerate(benchmark):
    """Run a figure-generating callable once, print it, and return its data."""

    def _run(figure_fn, *args, **kwargs) -> FigureData:
        result = benchmark.pedantic(
            lambda: figure_fn(*args, **kwargs), rounds=1, iterations=1
        )
        print_figure(result)
        return result

    return _run
