"""Figure 4: sensitivity of the Perf-Attacks to the RowHammer threshold.
The paper's point: the attacks remain potent even at NRH = 4K."""

from repro.eval.figures import default_workloads, figure4


def test_figure4_attacks_remain_potent_at_high_nrh(regenerate):
    figure = regenerate(
        figure4,
        workloads=default_workloads(1)[:2],
        requests_per_core=6_000,
        nrh_values=(500, 2000, 4000),
    )

    # Even at the highest threshold the tailored attacks beat cache thrashing.
    high = {row["series"]: row["normalized_performance"] for row in figure.filter(nrh=4000)}
    tailored_worst = min(high[t] for t in ("hydra", "start", "abacus", "comet"))
    assert tailored_worst < high["cache-thrashing"]
