"""Table IV: energy overhead of DAPPER-H under benign, streaming-attack and
refresh-attack conditions as the RowHammer threshold varies."""

from repro.eval.tables import table4


def test_table4_energy_overheads(regenerate):
    table = regenerate(
        table4,
        requests_per_core=6_000,
        nrh_values=(125, 500),
    )

    def overhead(nrh, scenario):
        return table.value("energy_overhead_percent", nrh=nrh, scenario=scenario)

    # Benign energy overhead is negligible at NRH=500 and stays small at 125.
    assert overhead(500, "benign") < 2.0
    assert overhead(125, "benign") < 10.0
    # The refresh attack costs more energy than the benign case at low NRH
    # (mitigative refreshes dominate), but remains bounded.
    assert overhead(125, "refresh") >= overhead(500, "benign") - 0.5
    assert overhead(125, "refresh") < 20.0
