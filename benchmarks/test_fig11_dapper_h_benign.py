"""Figure 11: DAPPER-H on benign applications (no attacker) -- essentially
free (the paper reports a 0.1% average slowdown)."""

from repro.eval.figures import default_workloads, figure11


def test_figure11_dapper_h_benign_overhead(regenerate):
    figure = regenerate(
        figure11,
        workloads=default_workloads(1),
        requests_per_core=8_000,
        nrh=500,
    )

    average = figure.value("normalized_performance", workload="average")
    assert average > 0.98
    for row in figure.rows:
        assert row["normalized_performance"] > 0.9
