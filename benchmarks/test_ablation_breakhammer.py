"""BreakHammer-style thread throttling composed with existing trackers.

The paper's related-work discussion (Section VII-A) positions BreakHammer as
complementary: it attributes triggered mitigations to hardware threads and
throttles the suspects, so it can soften Perf-Attacks against trackers that
remain vulnerable to them -- and it can be stacked on DAPPER-H without
changing its behaviour on benign or attack-free runs.
"""

from repro.config import baseline_config
from repro.eval.report import FigureData, print_figure
from repro.sim.experiment import run_workload

_TREFW_SCALE = 1 / 16
_REQUESTS = 5_000
_WORKLOAD = "470.lbm"
_WARMUP = 150_000


def _normalized(result, baseline):
    ids = [c.core_id for c in result.benign_results() if c.core_id != 0]
    ratios = [result.ipc_of(i) / baseline.ipc_of(i) for i in ids]
    return sum(ratios) / len(ratios)


def test_breakhammer_composition(benchmark):
    """Throttling the attacking thread must never hurt the benign cores, and
    once the attacker is identified it should claw back bandwidth for them."""

    def run() -> FigureData:
        config = baseline_config(nrh=500).with_refresh_window_scale(_TREFW_SCALE)
        baseline = run_workload(
            config=config,
            tracker="none",
            workload=_WORKLOAD,
            attack=None,
            requests_per_core=_REQUESTS,
        )
        figure = FigureData(
            name="breakhammer-composition",
            title="BreakHammer thread throttling composed with CoMeT and DAPPER-H",
        )
        scenarios = (
            ("comet", "rat-thrash"),
            ("breakhammer:comet", "rat-thrash"),
            ("dapper-h", "refresh"),
            ("breakhammer:dapper-h", "refresh"),
        )
        for tracker, attack in scenarios:
            result = run_workload(
                config=config,
                tracker=tracker,
                workload=_WORKLOAD,
                attack=attack,
                requests_per_core=_REQUESTS,
                attack_warmup_activations=_WARMUP,
            )
            figure.add(
                tracker=tracker,
                attack=attack,
                normalized_performance=_normalized(result, baseline),
                throttle_time_ms=result.tracker_stats.throttle_time_ns / 1e6,
            )
        return figure

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)

    comet = figure.value("normalized_performance", tracker="comet")
    comet_throttled = figure.value(
        "normalized_performance", tracker="breakhammer:comet"
    )
    dapper = figure.value("normalized_performance", tracker="dapper-h")
    dapper_throttled = figure.value(
        "normalized_performance", tracker="breakhammer:dapper-h"
    )

    # Throttling the attacker must never make the victim workloads slower
    # (small tolerance for simulation noise)...
    assert comet_throttled >= comet - 0.02
    assert dapper_throttled >= dapper - 0.02
    # ...and once the refresh-attack thread is identified on DAPPER-H, the
    # rate limit visibly engages against it.
    assert (
        figure.value("throttle_time_ms", tracker="breakhammer:dapper-h") > 0.0
    )
