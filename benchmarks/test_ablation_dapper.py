"""Ablation benchmarks for the design choices called out in DESIGN.md:

* single hashing (DAPPER-S) versus double hashing (DAPPER-H) under the
  refresh attack;
* the per-bank bit-vector on/off under the streaming attack;
* the cross-table reset counters on/off (soundness of the counter reset);
* the row-group size.
"""

from repro.config import baseline_config, reduced_row_config
from repro.core.dapper_h import DapperHTracker
from repro.core.dapper_s import DapperSTracker
from repro.eval.report import FigureData, print_figure
from repro.sim.experiment import run_workload

_TREFW_SCALE = 1 / 16
_REQUESTS = 5_000
_WORKLOAD = "470.lbm"


def _normalized(result, baseline):
    ids = [c.core_id for c in result.benign_results() if c.core_id != 0]
    ratios = [result.ipc_of(i) / baseline.ipc_of(i) for i in ids]
    return sum(ratios) / len(ratios)


def test_ablation_single_vs_double_hashing(benchmark):
    """Double hashing is what turns the 20%-class refresh-attack overhead of
    DAPPER-S into the ~1% overhead of DAPPER-H."""

    def run() -> FigureData:
        config = baseline_config(nrh=500).with_refresh_window_scale(_TREFW_SCALE)
        baseline = run_workload(
            config=config, tracker="none", workload=_WORKLOAD, attack="refresh",
            requests_per_core=_REQUESTS,
        )
        figure = FigureData(name="ablation-hashing", title="Single vs double hashing")
        for label, tracker in (
            ("dapper-s", DapperSTracker(config)),
            ("dapper-h", DapperHTracker(config)),
        ):
            result = run_workload(
                config=config, tracker=tracker, workload=_WORKLOAD, attack="refresh",
                requests_per_core=_REQUESTS, attack_warmup_activations=60_000,
            )
            figure.add(tracker=label, normalized_performance=_normalized(result, baseline))
        return figure

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)
    double = figure.value("normalized_performance", tracker="dapper-h")
    single = figure.value("normalized_performance", tracker="dapper-s")
    assert double >= single


def test_ablation_bitvector(benchmark):
    """The per-bank bit-vector is the defence against the streaming attack:
    without it, table 1 inflates and group mitigations fire."""

    def run() -> FigureData:
        config = reduced_row_config(nrh=500).with_refresh_window_scale(_TREFW_SCALE)
        figure = FigureData(name="ablation-bitvector", title="Bit-vector on/off")
        for label, use_bitvector in (("with-bitvector", True), ("without-bitvector", False)):
            tracker = DapperHTracker(config, use_bitvector=use_bitvector)
            result = run_workload(
                config=config, tracker=tracker, workload=_WORKLOAD,
                attack="row-streaming", requests_per_core=_REQUESTS,
                attack_warmup_activations=150_000,
            )
            figure.add(
                variant=label,
                mitigations=result.tracker_stats.mitigations_issued,
                rows_refreshed=result.tracker_stats.rows_mitigated,
            )
        return figure

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)
    with_bv = figure.value("mitigations", variant="with-bitvector")
    without_bv = figure.value("mitigations", variant="without-bitvector")
    assert with_bv <= without_bv


def test_ablation_reset_counters(benchmark):
    """Zeroing the group counters after a mitigation (no reset counters) lets
    unrefreshed member rows lose tracked activations; the reset counters keep
    the post-mitigation counters conservative."""

    def run() -> FigureData:
        config = baseline_config(nrh=500)
        threshold = config.rowhammer.mitigation_threshold
        figure = FigureData(name="ablation-reset", title="Reset-counter strategy")
        from repro.dram.address import BankAddress, RowAddress

        for label, use_reset in (("reset-counters", True), ("zero-reset", False)):
            tracker = DapperHTracker(config, use_reset_counters=use_reset)
            row = RowAddress(BankAddress(0, 0, 0, 0), 42)
            counts_after_mitigation = None
            for _ in range(threshold + 2):
                response = tracker.on_activation(row, 0.0)
                if response.mitigations and counts_after_mitigation is None:
                    group1, group2 = tracker.groups_of(row)
                    state = tracker._rank_state(0, 0)
                    counts_after_mitigation = (
                        state.table1.count(group1),
                        state.table2.count(group2),
                    )
            figure.add(
                variant=label,
                post_mitigation_count_t1=counts_after_mitigation[0],
                post_mitigation_count_t2=counts_after_mitigation[1],
            )
        return figure

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)
    zero = figure.filter(variant="zero-reset")[0]
    kept = figure.filter(variant="reset-counters")[0]
    # Zero-reset forgets everything; the reset-counter strategy never resets
    # the counters to more than the zero-reset floor would allow.
    assert zero["post_mitigation_count_t1"] == 0 and zero["post_mitigation_count_t2"] == 0
    assert kept["post_mitigation_count_t1"] >= 0 and kept["post_mitigation_count_t2"] >= 0


def test_ablation_group_size(benchmark):
    """Smaller groups cost more SRAM but reduce the refresh work per
    DAPPER-S mitigation; this sweep records the storage trade-off."""

    def run() -> FigureData:
        config = baseline_config(nrh=500)
        figure = FigureData(name="ablation-group-size", title="Row-group size sweep")
        for group_size in (128, 256, 512):
            tracker_s = DapperSTracker(config, group_size=group_size)
            tracker_h = DapperHTracker(config, group_size=group_size)
            figure.add(
                group_size=group_size,
                dapper_s_sram_kb=tracker_s.storage_report().sram_kb,
                dapper_h_sram_kb=tracker_h.storage_report().sram_kb,
            )
        return figure

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)
    sizes = figure.column("dapper_s_sram_kb")
    assert sizes == sorted(sizes, reverse=True)
