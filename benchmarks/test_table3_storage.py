"""Table III: storage overhead per 32GB of DDR5, regenerated from the tracker
implementations themselves."""

from repro.eval.tables import table3


def test_table3_storage_overheads(regenerate):
    table = regenerate(table3)
    rows = {row["tracker"]: row for row in table.rows}

    # DAPPER-H needs 96KB of SRAM per 32GB channel (32KB of RGCs + 64KB of
    # bit-vectors) and no CAM.
    assert abs(rows["dapper-h"]["sram_kb"] - 96.0) < 2.0
    assert rows["dapper-h"]["cam_kb"] == 0.0
    # DAPPER-S alone is 16KB; START is the smallest; CoMeT the largest SRAM.
    assert abs(rows["dapper-s"]["sram_kb"] - 16.0) < 1.0
    assert rows["start"]["sram_kb"] < rows["dapper-h"]["sram_kb"]
    assert rows["comet"]["sram_kb"] > rows["dapper-h"]["sram_kb"]
