"""Figure 1: normalized performance of Hydra/START/ABACUS/CoMeT under tailored
Perf-Attacks versus a cache-thrashing attack, per benchmark suite, NRH=500."""

from repro.eval.figures import default_workloads, figure1


def test_figure1_perf_attacks_vs_cache_thrashing(regenerate):
    figure = regenerate(
        figure1,
        workloads=default_workloads(1),
        requests_per_core=8_000,
        nrh=500,
    )

    overall = {
        row["series"]: row["normalized_performance"]
        for row in figure.filter(suite="All")
    }
    # Shape check: every tailored Perf-Attack hurts the benign applications
    # more than cache thrashing does (the paper reports 60-90% vs ~40%).
    for tracker in ("hydra", "start", "abacus", "comet"):
        assert overall[tracker] < overall["cache-thrashing"]
    # And the attacks are devastating in absolute terms.
    assert min(overall[t] for t in ("hydra", "start", "abacus", "comet")) < 0.5
