"""Figure 13: blast radius 2 and Same-Bank DRFM as the mitigation back-end.
Wider mitigations cost more, and DRFMsb (blocking 8 banks) costs the most."""

from repro.eval.figures import default_workloads, figure13


def test_figure13_blast_radius_and_drfm(regenerate):
    figure = regenerate(
        figure13,
        workloads=default_workloads(1)[:2],
        requests_per_core=6_000,
        nrh_values=(500,),
    )

    refresh = {
        row["series"]: row["normalized_performance"]
        for row in figure.filter(nrh=500)
        if row["series"].endswith("-Refresh")
    }
    # Under the refresh attack: BR1 >= BR2 >= DRFMsb (heavier mitigations
    # cost more), mirroring the paper's 1% / 2% / 8% ordering.
    assert refresh["DAPPER-H-Refresh"] >= refresh["DAPPER-H-BR2-Refresh"] - 0.02
    assert refresh["DAPPER-H-BR2-Refresh"] >= refresh["DAPPER-H-DRFMsb-Refresh"] - 0.02
