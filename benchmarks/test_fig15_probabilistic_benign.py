"""Figure 15: PARA / PrIDE versus DAPPER-H on benign applications as the
RowHammer threshold drops."""

from repro.eval.figures import default_workloads, figure15


def test_figure15_probabilistic_benign(regenerate):
    figure = regenerate(
        figure15,
        workloads=default_workloads(1)[:2],
        requests_per_core=6_000,
        nrh_values=(125, 500),
    )

    low = {row["series"]: row["normalized_performance"] for row in figure.filter(nrh=125)}
    # At NRH=125 the stateless mitigations pay much more than DAPPER-H.
    assert low["DAPPER-H"] >= low["PARA"]
    assert low["DAPPER-H"] >= low["PrIDE"]
    # DRFMsb makes the probabilistic mitigations clearly worse than their
    # per-bank variants.
    assert low["PARA-DRFMsb"] <= low["PARA"] + 0.01
