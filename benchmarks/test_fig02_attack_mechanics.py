"""Figure 2 (qualitative): the hardware mechanism each tailored Perf-Attack
exploits -- extra in-DRAM counter traffic for Hydra/START, full-structure
reset refreshes for CoMeT/ABACUS."""

from repro.eval.figures import figure2


def test_figure2_attack_mechanics(regenerate):
    figure = regenerate(figure2, workload="470.lbm", requests_per_core=8_000)

    by_tracker = {row["tracker"]: row for row in figure.rows}
    # Hydra and START are attacked through counter traffic.
    assert by_tracker["hydra"]["counter_accesses_per_kilo_act"] > 100
    assert by_tracker["start"]["counter_accesses_per_kilo_act"] > 100
    # CoMeT and ABACUS are attacked through structure-reset refreshes.
    assert (
        by_tracker["comet"]["blackout_ms"] + by_tracker["abacus"]["blackout_ms"] > 0.5
    )
