"""DAPPER-H versus the precise and the minimalist related-work baselines.

Graphene (exact per-bank Misra-Gries tracking) is the "ideal but unscalable"
end of the design space the paper cites: immune to Perf-Attacks because it
never touches DRAM for counters and never resets by refreshing the array, but
its per-bank CAM grows inversely with the RowHammer threshold.  MINT is the
opposite end: almost no state, but paced probabilistic mitigations whose
bandwidth cost grows as the threshold drops.  DAPPER-H should match
Graphene's behaviour under attack at a small fraction of the storage.
"""

from repro.config import baseline_config
from repro.eval.report import FigureData, print_figure
from repro.sim.experiment import run_workload
from repro.trackers.registry import create_tracker

_TREFW_SCALE = 1 / 16
_REQUESTS = 5_000
_WORKLOAD = "470.lbm"
_WARMUP = 60_000
_TRACKERS = ("graphene", "mint", "dapper-h")


def _normalized(result, baseline):
    ids = [c.core_id for c in result.benign_results() if c.core_id != 0]
    ratios = [result.ipc_of(i) / baseline.ipc_of(i) for i in ids]
    return sum(ratios) / len(ratios)


def test_precise_and_minimalist_baselines(benchmark):
    """Compare overhead under the refresh attack and storage per 32GB channel."""

    def run() -> FigureData:
        config = baseline_config(nrh=500).with_refresh_window_scale(_TREFW_SCALE)
        baseline = run_workload(
            config=config,
            tracker="none",
            workload=_WORKLOAD,
            attack="refresh",
            requests_per_core=_REQUESTS,
        )
        figure = FigureData(
            name="precise-trackers",
            title="DAPPER-H vs Graphene (precise) and MINT (minimalist), NRH=500",
        )
        # Storage is reported for the real (unscaled) refresh window: the
        # Misra-Gries sizing of Graphene depends on how many activations fit
        # in tREFW, and the benchmark's shortened window would understate it.
        storage_config = baseline_config(nrh=500)
        for tracker_name in _TRACKERS:
            result = run_workload(
                config=config,
                tracker=tracker_name,
                workload=_WORKLOAD,
                attack="refresh",
                requests_per_core=_REQUESTS,
                attack_warmup_activations=_WARMUP,
            )
            storage = create_tracker(tracker_name, storage_config).storage_report()
            figure.add(
                tracker=tracker_name,
                normalized_performance=_normalized(result, baseline),
                sram_kb=round(storage.sram_kb, 1),
                cam_kb=round(storage.cam_kb, 1),
                mitigations=result.tracker_stats.mitigations_issued,
            )
        return figure

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)

    dapper = figure.filter(tracker="dapper-h")[0]
    graphene = figure.filter(tracker="graphene")[0]
    mint = figure.filter(tracker="mint")[0]

    # All three contain the refresh attack's performance damage...
    for row in (dapper, graphene, mint):
        assert row["normalized_performance"] > 0.85
    # ...but only Graphene pays a CAM footprint an order of magnitude larger
    # than DAPPER-H's total SRAM budget.
    assert graphene["cam_kb"] + graphene["sram_kb"] > 4 * dapper["sram_kb"]
    # And MINT, being paced-probabilistic, issues far more mitigations than
    # the tracking-based designs under the same pattern.
    assert mint["mitigations"] > dapper["mitigations"]
