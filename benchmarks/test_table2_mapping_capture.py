"""Table II: the analytical Mapping-Capturing attack model for DAPPER-S, plus
the Equation (6)-(7) analysis showing DAPPER-H prevents the attack."""

from repro.eval.tables import table2


def test_table2_mapping_capture_analysis(regenerate):
    table = regenerate(table2)
    by_period = {row["reset_period_us"]: row for row in table.rows}

    # A longer reset period is easier to attack (fewer iterations).
    assert (
        by_period[36.0]["attack_iterations"]
        < by_period[24.0]["attack_iterations"]
        < by_period[12.0]["attack_iterations"]
    )
    # Even the aggressive 12 us re-keying is broken within a refresh window,
    # which is the paper's argument for moving to double hashing.
    assert by_period[12.0]["attack_time_us"] < 32_000.0
