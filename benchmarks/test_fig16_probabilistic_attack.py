"""Figure 16: PARA / PrIDE versus DAPPER-H under the refresh Perf-Attack."""

from repro.eval.figures import default_workloads, figure16


def test_figure16_probabilistic_under_attack(regenerate):
    figure = regenerate(
        figure16,
        workloads=default_workloads(1)[:2],
        requests_per_core=6_000,
        nrh_values=(125, 500),
    )

    for nrh in (125, 500):
        rows = {row["series"]: row["normalized_performance"] for row in figure.filter(nrh=nrh)}
        assert rows["DAPPER-H"] >= rows["PARA"] - 0.02
        assert rows["DAPPER-H"] >= rows["PrIDE"] - 0.02
    assert figure.value("normalized_performance", nrh=500, series="DAPPER-H") > 0.9
