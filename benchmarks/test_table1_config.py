"""Table I: the simulated system configuration."""

from repro.eval.tables import table1


def test_table1_system_configuration(regenerate):
    table = regenerate(table1)
    parameters = {row["parameter"]: row["value"] for row in table.rows}
    assert parameters["Memory size"] == "64 GB DDR5"
    assert parameters["Rows per bank, size"] == "64K, 8KB"
    assert parameters["RowHammer threshold (default)"] == "500"
