"""Figure 10: DAPPER-H under the streaming and refresh attacks.  The headline
result: the double hash, bit-vector and reset counters hold the overhead to
about a percent."""

from repro.eval.figures import default_workloads, figure10


def test_figure10_dapper_h_resilience(regenerate):
    figure = regenerate(
        figure10,
        workloads=default_workloads(1)[:4],
        requests_per_core=8_000,
        nrh=500,
    )

    average = figure.value("normalized_performance", workload="average", attack="both")
    assert average > 0.93          # paper: <1% average slowdown
    for row in figure.rows:
        if row["workload"] == "average":
            continue
        assert row["normalized_performance"] > 0.85   # paper worst case: 4.7%
