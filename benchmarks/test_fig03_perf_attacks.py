"""Figure 3: per-workload normalized performance of the four scalable trackers
under cache thrashing and tailored RH-Tracker-based Perf-Attacks."""

from repro.eval.figures import default_workloads, figure3


def test_figure3_per_workload_impact(regenerate):
    workloads = default_workloads(1)[:4]
    figure = regenerate(
        figure3, workloads=workloads, requests_per_core=8_000, nrh=500
    )

    # Every workload suffers more under at least one tailored attack than
    # under cache thrashing.
    for workload in workloads:
        rows = figure.filter(workload=workload)
        thrash = next(
            r["normalized_performance"] for r in rows if r["series"] == "cache-thrashing"
        )
        tailored = [
            r["normalized_performance"] for r in rows if r["series"] != "cache-thrashing"
        ]
        assert min(tailored) < thrash
