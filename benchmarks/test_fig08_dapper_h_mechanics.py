"""Figure 8 (qualitative): DAPPER-H's internal mechanics -- double hashing,
per-bank bit-vector filtering, shared-row mitigation and cross-table reset
counters -- exercised directly on the tracker."""

from repro.config import baseline_config
from repro.core.dapper_h import DapperHTracker
from repro.dram.address import BankAddress, RowAddress
from repro.eval.report import FigureData, print_figure


def _row(row, bank=0):
    return RowAddress(BankAddress(0, 0, bank // 4, bank % 4), row)


def test_figure8_dapper_h_mechanics(benchmark):
    def run() -> FigureData:
        config = baseline_config(nrh=500)
        tracker = DapperHTracker(config)
        threshold = config.rowhammer.mitigation_threshold

        # (1) A streaming sweep: every row touched once across banks.
        streamed = 0
        for row in range(0, 20_000, 7):
            response = tracker.on_activation(_row(row, bank=row % 32), 0.0)
            streamed += len(response.mitigations)

        # (2) A hammered row: mitigated at the threshold with (almost always)
        # a single shared row refreshed.
        hammer_mitigations = 0
        for _ in range(threshold + 2):
            response = tracker.on_activation(_row(42), 0.0)
            hammer_mitigations += len(response.mitigations)

        figure = FigureData(
            name="figure8", title="DAPPER-H mechanics (streaming vs hammering)"
        )
        figure.add(scenario="streaming-sweep", rows_refreshed=streamed)
        figure.add(scenario="hammered-row", rows_refreshed=hammer_mitigations)
        figure.add(
            scenario="single-shared-row-fraction",
            rows_refreshed=tracker.single_row_mitigation_fraction(),
        )
        return figure

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)
    assert figure.value("rows_refreshed", scenario="streaming-sweep") == 0
    assert figure.value("rows_refreshed", scenario="hammered-row") >= 1
    assert figure.value("rows_refreshed", scenario="single-shared-row-fraction") >= 0.9
