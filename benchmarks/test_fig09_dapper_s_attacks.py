"""Figure 9: performance overhead of DAPPER-S under the two mapping-agnostic
attacks (streaming and refresh).  DAPPER-S stops the counter-traffic attacks
but still pays a noticeable price here -- the motivation for DAPPER-H."""

from repro.eval.figures import default_workloads, figure9


def test_figure9_dapper_s_mapping_agnostic_overheads(regenerate):
    figure = regenerate(
        figure9,
        workloads=default_workloads(1)[:4],
        requests_per_core=8_000,
        nrh=500,
    )

    overall = {row["attack"]: row["overhead_percent"] for row in figure.filter(suite="All")}
    # The paper reports ~13% (streaming) and ~20% (refresh): both attacks must
    # cost DAPPER-S a clearly visible overhead.
    assert overall["refresh"] > 3.0
    assert overall["streaming"] >= -2.0    # small or noisy, but not a speed-up
    assert max(overall.values()) > 5.0
