"""Figure 14: BlockHammer versus DAPPER-H on benign applications.  Throttling
becomes very expensive at ultra-low thresholds; DAPPER-H does not."""

from repro.eval.figures import default_workloads, figure14


def test_figure14_blockhammer_comparison(regenerate):
    figure = regenerate(
        figure14,
        workloads=default_workloads(1)[:2],
        requests_per_core=6_000,
        nrh_values=(125, 500),
    )

    for nrh in (125, 500):
        rows = {row["series"]: row["normalized_performance"] for row in figure.filter(nrh=nrh)}
        assert rows["DAPPER-H"] >= rows["BlockHammer"] - 0.02
    # DAPPER-H stays near 1.0 even at the lowest threshold.
    assert figure.value("normalized_performance", nrh=125, series="DAPPER-H") > 0.9
