"""Figure 12: DAPPER-H as the RowHammer threshold drops to 125 -- the overhead
stays small under both mapping-agnostic attacks."""

from repro.eval.figures import default_workloads, figure12


def test_figure12_dapper_h_nrh_sensitivity(regenerate):
    figure = regenerate(
        figure12,
        workloads=default_workloads(1)[:2],
        requests_per_core=6_000,
        nrh_values=(125, 500),
    )

    # At NRH >= 500 the overhead is tiny; at 125 it may grow but stays modest.
    assert figure.value("normalized_performance", nrh=500, series="DAPPER-H") > 0.97
    assert figure.value("normalized_performance", nrh=500, series="DAPPER-H-Refresh") > 0.9
    assert figure.value("normalized_performance", nrh=125, series="DAPPER-H-Refresh") > 0.75
