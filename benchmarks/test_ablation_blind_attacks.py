"""Section III-E: Perf-Attack potency without internal knowledge.

The tailored attacks of Figure 2 assume the attacker knows structure sizes
(RCC geometry, RAT capacity).  The paper argues the attacks stay potent
without that knowledge: random-row working sets overwhelm Hydra's counter
cache through capacity misses, and CoMeT's reset blackouts are so visible
that the RAT size can be probed once and exploited forever.  This benchmark
compares the informed attack with its blind counterpart on both trackers.

The blind Hydra attack needs a long ramp before it bites: every shared group
counter has to reach Hydra's per-row-tracking threshold, which takes roughly
``group_threshold x working_set`` activations.  The paper's full-length
windows (500M instructions) contain that ramp many times over; the short
window here pre-plays it through the tracker directly (without the
early-stopping warm-up helper, which would stop at Hydra's first mitigation,
long before the counter cache starts thrashing).
"""

from repro.attacks import attack_by_name
from repro.config import baseline_config
from repro.dram.address import AddressMapper
from repro.eval.report import FigureData, print_figure
from repro.sim.experiment import run_workload
from repro.trackers.registry import create_tracker

_TREFW_SCALE = 1 / 16
_REQUESTS = 5_000
_WORKLOAD = "470.lbm"
#: Warm-up used for the informed attacks and the CoMeT probe (same value the
#: figure benchmarks use).
_WARMUP = 150_000
#: Ramp pre-played for the blind Hydra attack: enough activations for the
#: random working set's group counters to cross into per-row tracking.
_BLIND_HYDRA_RAMP = 2_000_000


def _normalized(result, baseline):
    ids = [c.core_id for c in result.benign_results() if c.core_id != 0]
    ratios = [result.ipc_of(i) / baseline.ipc_of(i) for i in ids]
    return sum(ratios) / len(ratios)


def _ramp_tracker(tracker, attack_name, config, activations, seed):
    """Pre-play ``activations`` attack activations without early stopping."""
    mapper = AddressMapper(config.dram)
    attack = attack_by_name(attack_name, config.dram, mapper, seed=seed)
    now_ns = 0.0
    step_ns = config.timings.trrd_s_ns
    for _ in range(activations):
        entry = attack.next_entry()
        tracker.on_activation(mapper.decode(entry.address).row_address, now_ns)
        now_ns += step_ns
    return tracker


def test_blind_attacks_match_informed_attacks(benchmark):
    """Blind variants must degrade performance comparably to the informed ones."""

    def run() -> FigureData:
        config = baseline_config(nrh=500).with_refresh_window_scale(_TREFW_SCALE)
        seed = config.seed ^ 0xB11D
        baseline = run_workload(
            config=config,
            tracker="none",
            workload=_WORKLOAD,
            attack=None,
            requests_per_core=_REQUESTS,
        )
        figure = FigureData(
            name="blind-attacks",
            title="Informed vs knowledge-free Perf-Attacks (Section III-E)",
        )

        # The CoMeT attacker uses the post-probe steady state: Section III-E's
        # probe is a one-off (its escalation schedule is exercised by the unit
        # tests); the sustained attack hammers the row count it discovered.
        scenarios = (
            ("hydra", "rcc-conflict", "informed", _WARMUP, False),
            ("hydra", "blind-random-rows", "blind", _BLIND_HYDRA_RAMP, True),
            ("comet", "rat-thrash", "informed", _WARMUP, False),
            ("comet", "blind-post-probe", "blind", _WARMUP, False),
        )
        for tracker_name, attack, knowledge, warmup, custom_ramp in scenarios:
            if custom_ramp:
                tracker = _ramp_tracker(
                    create_tracker(tracker_name, config), attack, config, warmup, seed
                )
                result = run_workload(
                    config=config,
                    tracker=tracker,
                    workload=_WORKLOAD,
                    attack=attack,
                    requests_per_core=_REQUESTS,
                    seed=seed,
                )
            else:
                result = run_workload(
                    config=config,
                    tracker=tracker_name,
                    workload=_WORKLOAD,
                    attack=attack,
                    requests_per_core=_REQUESTS,
                    attack_warmup_activations=warmup,
                    seed=seed,
                )
            figure.add(
                tracker=tracker_name,
                attack=attack,
                knowledge=knowledge,
                normalized_performance=_normalized(result, baseline),
                counter_traffic=result.dram_stats.counter_reads
                + result.dram_stats.counter_writes,
                reset_blackouts=result.controller_stats.structure_reset_blackouts,
            )
        return figure

    figure = benchmark.pedantic(run, rounds=1, iterations=1)
    print_figure(figure)

    for tracker in ("hydra", "comet"):
        informed = figure.value(
            "normalized_performance", tracker=tracker, knowledge="informed"
        )
        blind = figure.value(
            "normalized_performance", tracker=tracker, knowledge="blind"
        )
        # Both attack flavours must hurt, and the blind one must destroy at
        # least half as much performance as the informed one.
        assert informed < 0.9
        assert blind < 0.9
        assert (1.0 - blind) >= 0.5 * (1.0 - informed)
    # The blind Hydra attack works through counter traffic, the blind CoMeT
    # probe through structure-reset blackouts -- the two mechanisms of Fig. 2.
    assert figure.value("counter_traffic", tracker="hydra", knowledge="blind") > 0
