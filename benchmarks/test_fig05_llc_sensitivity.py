"""Figure 5: the Perf-Attacks on a large (8-channel) system as the per-core
LLC size grows -- bigger caches do not fix the vulnerability."""

from repro.eval.figures import default_workloads, figure5


def test_figure5_large_system_remains_vulnerable(regenerate):
    figure = regenerate(
        figure5,
        workloads=default_workloads(1)[:2],
        requests_per_core=5_000,
        llc_sizes_mb=(2, 5),
        nrh=500,
    )

    for llc_mb in (2, 5):
        rows = {
            row["series"]: row["normalized_performance"]
            for row in figure.filter(per_core_llc_mb=llc_mb)
        }
        tailored_worst = min(rows[t] for t in ("hydra", "start", "abacus", "comet"))
        assert tailored_worst < rows["cache-thrashing"]
