"""Tests for the shared last-level cache."""

import pytest

from repro.cache.llc import SharedLLC
from repro.config import CacheConfig


@pytest.fixture
def llc():
    return SharedLLC(CacheConfig(size_bytes=64 * 1024, ways=4, line_size_bytes=64))


class TestBasicOperation:
    def test_miss_then_hit(self, llc):
        first = llc.access(0x1000, is_write=False)
        second = llc.access(0x1000, is_write=False)
        assert not first.hit
        assert second.hit
        assert llc.stats.hits == 1
        assert llc.stats.misses == 1

    def test_different_lines_do_not_hit(self, llc):
        llc.access(0, False)
        other = llc.access(64, False)
        assert not other.hit

    def test_lru_eviction(self, llc):
        sets = llc.config.num_sets
        line = llc.config.line_size_bytes
        stride = sets * line
        addresses = [i * stride for i in range(5)]   # 5 lines, 4 ways, same set
        for address in addresses[:4]:
            llc.access(address, False)
        llc.access(addresses[0], False)               # refresh line 0
        result = llc.access(addresses[4], False)      # evicts line 1 (LRU)
        assert not result.hit
        assert llc.access(addresses[0], False).hit
        assert not llc.access(addresses[1], False).hit

    def test_dirty_eviction_requests_writeback(self, llc):
        sets = llc.config.num_sets
        stride = sets * llc.config.line_size_bytes
        llc.access(0, is_write=True)
        for i in range(1, 4):
            llc.access(i * stride, False)
        result = llc.access(4 * stride, False)
        assert result.writeback
        assert result.evicted_line == 0

    def test_write_hit_marks_dirty(self, llc):
        sets = llc.config.num_sets
        stride = sets * llc.config.line_size_bytes
        llc.access(0, is_write=False)
        llc.access(0, is_write=True)
        for i in range(1, 5):
            result = llc.access(i * stride, False)
        assert result.writeback

    def test_per_core_stats(self, llc):
        llc.access(0, False, core_id=1)
        llc.access(0, False, core_id=2)
        assert llc.stats.per_core_misses[1] == 1
        assert llc.stats.per_core_hits[2] == 1
        assert llc.stats.core_hit_rate(2) == 1.0

    def test_flush(self, llc):
        llc.access(0, False)
        llc.flush()
        assert not llc.access(0, False).hit

    def test_occupancy(self, llc):
        assert llc.occupancy() == 0.0
        llc.access(0, False)
        assert llc.occupancy() > 0.0


class TestWayReservation:
    def test_reserving_ways_reduces_capacity(self, llc):
        llc.reserve_ways(2)
        assert llc.data_ways == 2
        assert llc.data_capacity_bytes == llc.config.size_bytes // 2

    def test_reserved_ways_evict_existing_lines(self, llc):
        sets = llc.config.num_sets
        stride = sets * llc.config.line_size_bytes
        for i in range(4):
            llc.access(i * stride, False)
        llc.reserve_ways(2)
        hits = sum(llc.access(i * stride, False).hit for i in range(4))
        assert hits <= 2

    def test_reserving_all_ways_is_rejected(self, llc):
        with pytest.raises(ValueError):
            llc.reserve_ways(llc.config.ways)

    def test_fully_reserved_behaviour_via_zero_data_ways(self):
        llc = SharedLLC(CacheConfig(size_bytes=4096, ways=4, line_size_bytes=64))
        llc.reserve_ways(3)
        assert llc.data_ways == 1
        assert not llc.access(0, False).hit
        assert llc.access(0, False).hit

    def test_thrashing_reduces_victim_hit_rate(self, llc):
        """A streaming interloper evicts a small resident working set."""
        resident = [i * 64 for i in range(16)]
        for address in resident:
            llc.access(address, False, core_id=0)
        base_hits = sum(llc.access(a, False, core_id=0).hit for a in resident)
        # Stream far more lines than the cache holds.
        for i in range(4096):
            llc.access(0x100000 + i * 64, False, core_id=1)
        post_hits = sum(llc.access(a, False, core_id=0).hit for a in resident)
        assert base_hits == len(resident)
        assert post_hits < base_hits
