"""Tests for trace-file reading, writing, recording and replay."""

import pytest

from repro.config import baseline_config, reduced_row_config
from repro.cpu.trace import TraceEntry, WorkloadTraceGenerator
from repro.cpu.tracefile import (
    FileTraceGenerator,
    TraceFormatError,
    read_trace,
    record_trace,
    record_workload_trace,
    write_trace,
)
from repro.cpu.workloads import get_workload
from repro.dram.address import AddressMapper
from repro.sim.simulator import CoreSpec, Simulator


@pytest.fixture
def config():
    return baseline_config()


@pytest.fixture
def sample_entries():
    return [
        TraceEntry(gap_instructions=10, address=0x1000, is_write=False),
        TraceEntry(gap_instructions=3, address=0x2040, is_write=True),
        TraceEntry(gap_instructions=250, address=0xDEADBEEF, is_write=False),
    ]


class TestTraceFileRoundTrip:
    def test_write_then_read_preserves_every_entry(self, tmp_path, sample_entries):
        path = tmp_path / "sample.trace"
        written = write_trace(path, sample_entries)
        assert written == len(sample_entries)
        assert read_trace(path) == sample_entries

    def test_header_comment_is_ignored_on_read(self, tmp_path, sample_entries):
        path = tmp_path / "sample.trace"
        write_trace(path, sample_entries, header="recorded for tests\nsecond line")
        text = path.read_text()
        assert text.startswith("# recorded for tests")
        assert read_trace(path) == sample_entries

    def test_blank_lines_and_comments_are_skipped(self, tmp_path):
        path = tmp_path / "hand_written.trace"
        path.write_text(
            "\n"
            "# a hand-written trace\n"
            "5 0x40 R\n"
            "\n"
            "7 64 W\n"          # decimal addresses are accepted too
        )
        entries = read_trace(path)
        assert entries == [
            TraceEntry(5, 0x40, False),
            TraceEntry(7, 64, True),
        ]

    @pytest.mark.parametrize(
        "bad_line",
        [
            "5 0x40",                  # missing access kind
            "5 0x40 R extra",          # too many fields
            "x 0x40 R",                # non-integer gap
            "5 zz R",                  # non-integer address
            "-1 0x40 R",               # negative gap
            "5 0x40 Q",                # unknown kind
        ],
    )
    def test_malformed_lines_are_rejected_with_line_numbers(self, tmp_path, bad_line):
        path = tmp_path / "bad.trace"
        path.write_text("1 0x0 R\n" + bad_line + "\n")
        with pytest.raises(TraceFormatError, match="line 2"):
            read_trace(path)


class TestFileTraceGenerator:
    def test_replays_in_order(self, sample_entries):
        generator = FileTraceGenerator(sample_entries)
        assert [generator.next_entry() for _ in range(3)] == sample_entries

    def test_loops_by_default_and_counts_replays(self, sample_entries):
        generator = FileTraceGenerator(sample_entries)
        for _ in range(7):
            generator.next_entry()
        assert generator.replays == 2
        assert generator.next_entry() == sample_entries[1]

    def test_non_looping_generator_stops(self, sample_entries):
        generator = FileTraceGenerator(sample_entries, loop=False)
        for _ in range(3):
            generator.next_entry()
        with pytest.raises(StopIteration):
            generator.next_entry()

    def test_loads_directly_from_a_path(self, tmp_path, sample_entries):
        path = tmp_path / "sample.trace"
        write_trace(path, sample_entries)
        generator = FileTraceGenerator(path)
        assert len(generator) == 3
        assert generator.next_entry() == sample_entries[0]

    def test_empty_trace_is_rejected(self):
        with pytest.raises(ValueError):
            FileTraceGenerator([])

    def test_llc_bypass_flag_is_configurable(self, sample_entries):
        assert FileTraceGenerator(sample_entries).bypasses_llc is False
        assert FileTraceGenerator(sample_entries, bypasses_llc=True).bypasses_llc


class TestRecording:
    def test_record_trace_pulls_the_requested_number(self, config):
        profile = get_workload("429.mcf")
        generator = WorkloadTraceGenerator(
            profile, config.dram, AddressMapper(config.dram), core_id=0, seed=1
        )
        entries = record_trace(generator, 100)
        assert len(entries) == 100
        assert all(isinstance(entry, TraceEntry) for entry in entries)

    def test_record_trace_rejects_non_positive_counts(self, config):
        profile = get_workload("429.mcf")
        generator = WorkloadTraceGenerator(
            profile, config.dram, AddressMapper(config.dram), core_id=0, seed=1
        )
        with pytest.raises(ValueError):
            record_trace(generator, 0)

    def test_record_workload_trace_is_deterministic(self, config):
        one = record_workload_trace("429.mcf", 50, config=config)
        two = record_workload_trace("429.mcf", 50, config=config)
        assert one == two

    def test_record_workload_trace_respects_seed(self, config):
        one = record_workload_trace("429.mcf", 50, config=config, seed=1)
        two = record_workload_trace("429.mcf", 50, config=config, seed=2)
        assert one != two

    def test_recorded_addresses_fit_the_address_space(self, config):
        mapper = AddressMapper(config.dram)
        entries = record_workload_trace("510.parest", 200, config=config)
        for entry in entries:
            assert 0 <= entry.address < (1 << mapper.address_bits)


class TestReplayThroughTheSimulator:
    def test_recorded_and_replayed_streams_give_identical_results(self, tmp_path):
        """Freezing a synthetic workload to a file must not change the simulation."""
        config = reduced_row_config(rows_per_bank=2048)
        budget = 400
        entries = record_workload_trace("429.mcf", budget, config=config)
        path = tmp_path / "mcf.trace"
        write_trace(path, entries)

        def run(generator):
            simulator = Simulator(
                config,
                "dapper-h",
                [CoreSpec(generator=generator, request_budget=budget)],
            )
            return simulator.run()

        live = run(
            WorkloadTraceGenerator(
                get_workload("429.mcf"),
                config.dram,
                AddressMapper(config.dram),
                core_id=0,
                seed=config.seed,
            )
        )
        replayed = run(FileTraceGenerator(path))

        assert replayed.core_results[0].ipc == pytest.approx(
            live.core_results[0].ipc
        )
        assert replayed.dram_stats.activations == live.dram_stats.activations
