"""Tests for the attack kernels."""

import pytest

from repro.attacks import attack_by_name, tailored_attack_for
from repro.attacks.cache_thrash import CacheThrashingAttack
from repro.attacks.comet_attack import RATThrashingAttack
from repro.attacks.hydra_attack import RCCConflictAttack
from repro.attacks.refresh_attack import DoubleSidedRowHammerAttack, RefreshAttack
from repro.attacks.streaming import RowStreamingAttack
from repro.config import DRAMOrganization
from repro.dram.address import AddressMapper


@pytest.fixture
def org():
    return DRAMOrganization()


@pytest.fixture
def mapper(org):
    return AddressMapper(org)


class TestFactory:
    def test_all_registered_attacks_constructible(self, org, mapper):
        for name in (
            "cache-thrashing",
            "rcc-conflict",
            "rat-thrash",
            "row-streaming",
            "counter-streaming",
            "id-streaming",
            "refresh",
            "rowhammer",
        ):
            attack = attack_by_name(name, org, mapper)
            entry = attack.next_entry()
            assert entry.address >= 0

    def test_unknown_attack_rejected(self, org, mapper):
        with pytest.raises(ValueError):
            attack_by_name("nope", org, mapper)

    def test_tailored_mapping(self, org, mapper):
        assert isinstance(tailored_attack_for("hydra", org, mapper), RCCConflictAttack)
        assert isinstance(tailored_attack_for("comet", org, mapper), RATThrashingAttack)
        assert isinstance(tailored_attack_for("start", org, mapper), RowStreamingAttack)
        assert isinstance(tailored_attack_for("abacus", org, mapper), RowStreamingAttack)
        assert isinstance(tailored_attack_for("dapper-h", org, mapper), RefreshAttack)


class TestCacheThrashing:
    def test_goes_through_the_llc(self, org, mapper):
        assert CacheThrashingAttack(org, mapper).bypasses_llc is False

    def test_streams_distinct_lines_larger_than_llc(self, org, mapper):
        attack = CacheThrashingAttack(org, mapper, footprint_bytes=16 * 1024 * 1024)
        addresses = {attack.next_entry().address for _ in range(10_000)}
        assert len(addresses) == 10_000

    def test_footprint_wraps_around(self, org, mapper):
        attack = CacheThrashingAttack(org, mapper, footprint_bytes=64 * 1024)
        first = attack.next_entry().address
        for _ in range(64 * 1024 // 64 - 1):
            attack.next_entry()
        assert attack.next_entry().address == first


class TestRCCConflictAttack:
    def test_rows_collide_in_the_rcc_set(self, org, mapper):
        attack = RCCConflictAttack(org, mapper, target_set=7)
        rows = set()
        for _ in range(len(attack._sequence)):
            decoded = mapper.decode(attack.next_entry().address)
            rows.add((decoded.rank, decoded.bank_group, decoded.bank, decoded.row))
            assert decoded.row % RCCConflictAttack.RCC_SETS == 7
        assert len(rows) == len(attack._sequence)

    def test_consecutive_accesses_hit_different_banks(self, org, mapper):
        attack = RCCConflictAttack(org, mapper)
        first = mapper.decode(attack.next_entry().address)
        second = mapper.decode(attack.next_entry().address)
        assert first.bank_address != second.bank_address

    def test_per_bank_rows_alternate(self, org, mapper):
        attack = RCCConflictAttack(org, mapper)
        by_bank = {}
        for _ in range(2 * len(attack._sequence)):
            decoded = mapper.decode(attack.next_entry().address)
            by_bank.setdefault(decoded.bank_address, set()).add(decoded.row)
        assert all(len(rows) == 2 for rows in by_bank.values())


class TestRowStreaming:
    def test_every_access_is_a_new_row_for_its_bank(self, org, mapper):
        attack = RowStreamingAttack(org, mapper)
        last_row = {}
        for _ in range(4000):
            decoded = mapper.decode(attack.next_entry().address)
            bank = decoded.bank_address
            assert last_row.get(bank) != decoded.row
            last_row[bank] = decoded.row

    def test_distinct_row_ids_mode(self, org, mapper):
        attack = RowStreamingAttack(org, mapper, distinct_row_ids=True)
        rows = [mapper.decode(attack.next_entry().address).row for _ in range(1000)]
        assert len(set(rows)) == 1000

    def test_row_stride(self, org, mapper):
        attack = RowStreamingAttack(org, mapper, row_stride=64, channels=(0,), ranks=(0,))
        seen_rows = set()
        for _ in range(org.banks_per_rank * 3):
            seen_rows.add(mapper.decode(attack.next_entry().address).row)
        assert seen_rows == {0, 64, 128}

    def test_targets_limited_to_requested_ranks(self, org, mapper):
        attack = RowStreamingAttack(org, mapper, channels=(1,), ranks=(0,))
        for _ in range(500):
            decoded = mapper.decode(attack.next_entry().address)
            assert decoded.channel == 1
            assert decoded.rank == 0


class TestRATThrashing:
    def test_uses_more_rows_than_the_rat(self, org, mapper):
        attack = RATThrashingAttack(org, mapper, num_rows=768)
        rows = set()
        for _ in range(len(attack._sequence)):
            decoded = mapper.decode(attack.next_entry().address)
            rows.add((decoded.bank_address, decoded.row))
        assert len(rows) > 128

    def test_sequence_is_cyclic(self, org, mapper):
        attack = RATThrashingAttack(org, mapper)
        first_pass = [attack.next_entry().address for _ in range(len(attack._sequence))]
        second_pass = [attack.next_entry().address for _ in range(len(attack._sequence))]
        assert first_pass == second_pass


class TestRefreshAttack:
    def test_hammers_a_bounded_row_set(self, org, mapper):
        attack = RefreshAttack(org, mapper)
        rows = set()
        for _ in range(4 * attack.hammered_rows):
            decoded = mapper.decode(attack.next_entry().address)
            rows.add((decoded.bank_address, decoded.row))
        assert len(rows) == attack.hammered_rows

    def test_back_to_back_accesses_to_a_bank_differ_in_row(self, org, mapper):
        attack = RefreshAttack(org, mapper)
        last_row = {}
        for _ in range(4 * attack.hammered_rows):
            decoded = mapper.decode(attack.next_entry().address)
            bank = decoded.bank_address
            assert last_row.get(bank) != decoded.row
            last_row[bank] = decoded.row

    def test_channel_restriction(self, org, mapper):
        attack = RefreshAttack(org, mapper, channels=(0,))
        for _ in range(200):
            assert mapper.decode(attack.next_entry().address).channel == 0


class TestDoubleSidedRowHammer:
    def test_alternates_the_two_aggressors(self, org, mapper):
        attack = DoubleSidedRowHammerAttack(org, mapper, victim_row=30_000, banks_used=1)
        rows = [mapper.decode(attack.next_entry().address).row for _ in range(10)]
        assert set(rows) == {29_999, 30_001}

    def test_covers_requested_banks(self, org, mapper):
        attack = DoubleSidedRowHammerAttack(org, mapper, banks_used=4)
        banks = {
            mapper.decode(attack.next_entry().address).bank_address
            for _ in range(16)
        }
        assert len(banks) == 4
