"""Experiment warehouse backends: parity between the SQLite warehouse and the
legacy JSON cache directory, schema migration, concurrent writers, atomic
writes, and the worker cap of the sweep pool."""

from __future__ import annotations

import json
import sqlite3
import threading
from concurrent.futures import Future

import pytest

import repro.sim.sweep as sweep_module
from repro.config import reduced_row_config
from repro.sim.sweep import CODE_VERSION, ResultCache, ScenarioSpec, SweepRunner
from repro.store import (
    SCHEMA_VERSION,
    JsonDirStore,
    RunRecord,
    SqliteStore,
    import_store,
    open_store,
    query_rows,
)
from repro.store.backend import create_schema_v1

REQUESTS = 250


@pytest.fixture(scope="module")
def sweep_config():
    return reduced_row_config(nrh=500, rows_per_bank=2048).with_refresh_window_scale(
        1 / 32
    )


@pytest.fixture
def spec(sweep_config):
    return ScenarioSpec(
        tracker="dapper-h",
        workload="453.povray",
        requests_per_core=REQUESTS,
        config=sweep_config,
    )


def _record(key="k1", tracker="dapper-h", code_version=CODE_VERSION) -> RunRecord:
    return RunRecord(
        key=key,
        code_version=code_version,
        scenario={
            "tracker": tracker,
            "workload": "453.povray",
            "attack": None,
            "seed": 7,
            "nrh": 500,
        },
        result={"payload": key},
        elapsed_seconds=0.25,
    )


class TestBackendResolution:
    def test_suffix_selects_sqlite(self, tmp_path):
        assert isinstance(open_store(tmp_path / "wh.sqlite"), SqliteStore)
        assert isinstance(open_store(tmp_path / "wh.db"), SqliteStore)

    def test_plain_path_selects_json_dir(self, tmp_path):
        assert isinstance(open_store(tmp_path / "cache"), JsonDirStore)

    def test_none_and_empty_disable(self):
        assert open_store(None) is None
        assert open_store("") is None

    def test_store_instance_passes_through(self, tmp_path):
        store = JsonDirStore(tmp_path)
        assert open_store(store) is store

    def test_cache_rejects_both_targets(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            ResultCache(tmp_path, store=JsonDirStore(tmp_path))


class TestBackendParity:
    """sqlite == json-dir == serial: byte-identical stored results."""

    def test_round_trip_identical_records(self, tmp_path):
        record = _record()
        json_store = JsonDirStore(tmp_path / "cache")
        sqlite_store = SqliteStore(tmp_path / "wh.sqlite")
        json_store.put(record)
        sqlite_store.put(record)
        from_json = json_store.get(record.key)
        from_sqlite = sqlite_store.get(record.key)
        for loaded in (from_json, from_sqlite):
            assert loaded.key == record.key
            assert loaded.code_version == record.code_version
            assert loaded.scenario == record.scenario
            assert loaded.result == record.result
            assert loaded.elapsed_seconds == record.elapsed_seconds

    def test_simulated_results_byte_identical_across_backends(
        self, spec, tmp_path
    ):
        serial = SweepRunner().run_one(spec)
        via_json = SweepRunner(cache_dir=tmp_path / "cache").run_one(spec)
        via_sqlite = SweepRunner(cache_dir=tmp_path / "wh.sqlite").run_one(spec)
        reference = json.dumps(serial.result.to_dict(), sort_keys=True)
        for outcome in (via_json, via_sqlite):
            assert json.dumps(outcome.result.to_dict(), sort_keys=True) == reference
            assert outcome.normalized == serial.normalized

    def test_sqlite_replay_hits_cache(self, spec, tmp_path):
        SweepRunner(cache_dir=tmp_path / "wh.sqlite").run_one(spec)
        replay = SweepRunner(cache_dir=tmp_path / "wh.sqlite")
        outcome = replay.run_one(spec)
        assert outcome.from_cache and outcome.baseline_from_cache
        assert replay.stats.cache_misses == 0

    def test_json_to_sqlite_import_replays_identically(self, spec, tmp_path):
        reference = SweepRunner(cache_dir=tmp_path / "cache").run_one(spec)
        warehouse = SqliteStore(tmp_path / "wh.sqlite")
        imported, skipped = import_store(warehouse, tmp_path / "cache")
        assert imported == 2 and skipped == 0  # measured + baseline
        # Imported entries must be replayed as cache hits, bit-identically.
        replay = SweepRunner(store=warehouse)
        outcome = replay.run_one(spec)
        assert outcome.from_cache
        assert replay.stats.cache_misses == 0
        assert json.dumps(outcome.result.to_dict(), sort_keys=True) == json.dumps(
            reference.result.to_dict(), sort_keys=True
        )
        # Importing again skips everything.
        assert import_store(warehouse, tmp_path / "cache") == (0, 2)

    def test_sqlite_tolerates_corrupted_payload(self, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        store.put(_record())
        store._connection.execute(
            "UPDATE runs SET result = '{not json' WHERE key = 'k1'"
        )
        store._connection.commit()
        assert store.get("k1") is None
        assert ResultCache(store=store).load("k1") is None  # miss, not crash


class TestSchemaMigration:
    def _v1_database(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        connection = sqlite3.connect(path)
        create_schema_v1(connection)
        connection.execute(
            "INSERT INTO runs (key, code_version, scenario, result, created_at) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                "old-key",
                CODE_VERSION,
                json.dumps(
                    {
                        "tracker": "graphene",
                        "workload": "429.mcf",
                        "attack": "refresh",
                        "seed": 3,
                        "nrh": 1000,
                    }
                ),
                json.dumps({"payload": "v1"}),
                "2026-01-01T00:00:00+00:00",
            ),
        )
        connection.commit()
        connection.close()
        return path

    def test_v1_database_migrates_and_keeps_data(self, tmp_path):
        path = self._v1_database(tmp_path)
        store = SqliteStore(path)
        assert store._schema_version() == SCHEMA_VERSION
        record = store.get("old-key")
        assert record is not None
        assert record.result == {"payload": "v1"}
        assert record.elapsed_seconds is None   # v1 had no timing column

    def test_migration_backfills_scenario_columns(self, tmp_path):
        store = SqliteStore(self._v1_database(tmp_path))
        matched = store.query(tracker="graphene", nrh=1000)
        assert [record.key for record in matched] == ["old-key"]
        assert store.query(tracker="dapper-h") == []

    def test_migration_adds_campaign_table(self, tmp_path):
        store = SqliteStore(self._v1_database(tmp_path))
        store.save_campaign("after-migration", {"entries": []})
        assert store.load_campaign("after-migration") == {"entries": []}

    def test_failed_migration_rolls_back_cleanly(self, tmp_path, monkeypatch):
        # A crash mid-migration must leave the database at v1 so the next
        # open retries from scratch -- a partially-committed migration would
        # fail every subsequent open on "duplicate column name".
        import repro.store.backend as backend_module

        path = self._v1_database(tmp_path)

        def _crashing_migration(connection):
            connection.execute("ALTER TABLE runs ADD COLUMN tracker TEXT")
            raise sqlite3.OperationalError("simulated crash mid-migration")

        monkeypatch.setitem(backend_module.MIGRATIONS, 1, _crashing_migration)
        with pytest.raises(sqlite3.OperationalError, match="simulated crash"):
            SqliteStore(path)
        monkeypatch.undo()

        store = SqliteStore(path)   # the real migration must now succeed
        assert store._schema_version() == SCHEMA_VERSION
        assert store.get("old-key") is not None
        assert [record.key for record in store.query(tracker="graphene")] == [
            "old-key"
        ]

    def test_newer_schema_is_refused(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        connection = sqlite3.connect(path)
        connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 1}")
        connection.commit()
        connection.close()
        with pytest.raises(ValueError, match="newer than this code"):
            SqliteStore(path)

    def test_reopening_is_idempotent(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        SqliteStore(path).put(_record())
        reopened = SqliteStore(path)
        assert reopened._schema_version() == SCHEMA_VERSION
        assert reopened.get("k1") is not None


class TestConcurrentWriters:
    def test_parallel_writers_lose_nothing(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        SqliteStore(path).close()    # create the schema up front
        per_writer, writers = 25, 4

        def _write(writer: int) -> None:
            # One store (= one connection) per writer, as pool feeders have.
            store = SqliteStore(path)
            for index in range(per_writer):
                store.put(_record(key=f"w{writer}-{index}"))
            store.close()

        threads = [
            threading.Thread(target=_write, args=(writer,))
            for writer in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        store = SqliteStore(path)
        assert len(store.keys()) == per_writer * writers
        assert all(record.result for record in store.records())

    def test_concurrent_schema_creation(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        stores: list[SqliteStore] = []
        errors: list[Exception] = []

        def _open() -> None:
            try:
                stores.append(SqliteStore(path))
            except Exception as error:  # pragma: no cover - failure mode
                errors.append(error)

        threads = [threading.Thread(target=_open) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert all(store._schema_version() == SCHEMA_VERSION for store in stores)


class TestAtomicJsonWrites:
    """A killed or failing writer must never leave a truncated cache entry."""

    def test_put_leaves_no_temp_files(self, tmp_path):
        store = JsonDirStore(tmp_path)
        store.put(_record())
        assert [path.name for path in tmp_path.glob("*.tmp.*")] == []
        assert store.get("k1") is not None

    def test_unserializable_result_leaves_nothing_behind(self, tmp_path):
        store = JsonDirStore(tmp_path)
        bad = RunRecord(
            key="bad",
            code_version=CODE_VERSION,
            scenario={},
            result={"unserializable": object()},
        )
        store.put(bad)   # degrades silently, exactly like an unwritable disk
        assert store.get("bad") is None
        assert list(tmp_path.glob("bad*")) == []

    def test_interrupted_write_preserves_previous_entry(self, tmp_path, monkeypatch):
        store = JsonDirStore(tmp_path)
        store.put(_record())
        before = store.get("k1")

        def _boom(payload, handle, **kwargs):
            handle.write('{"partial":')
            raise OSError("disk full")

        monkeypatch.setattr("repro.store.backend.json.dump", _boom)
        store.put(_record())
        monkeypatch.undo()
        after = store.get("k1")
        assert after is not None
        assert after.result == before.result
        assert [path.name for path in tmp_path.glob("*.tmp.*")] == []


class _RecordingPool:
    """In-process stand-in for ProcessPoolExecutor that records max_workers."""

    max_workers_seen: int | None = None

    def __init__(self, max_workers):
        type(self).max_workers_seen = max_workers

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False

    def submit(self, fn, *args):
        future = Future()
        future.set_result(fn(*args))
        return future


class TestWorkerCap:
    def test_pool_never_exceeds_pending_work(
        self, sweep_config, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            sweep_module, "ProcessPoolExecutor", _RecordingPool
        )
        specs = [
            ScenarioSpec(
                tracker=tracker,
                workload="453.povray",
                requests_per_core=REQUESTS,
                config=sweep_config,
            )
            for tracker in ("none", "dapper-h")
        ]
        runner = SweepRunner(jobs=8)
        runner.run(specs)
        # Two unique simulations pending (dapper-h + the shared baseline):
        # eight requested jobs must be capped at two workers.
        assert _RecordingPool.max_workers_seen == 2


class TestQueryLayer:
    def test_query_filters_and_limit(self, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        for index, tracker in enumerate(("dapper-h", "dapper-h", "graphene")):
            store.put(_record(key=f"k{index}", tracker=tracker))
        assert len(store.query(tracker="dapper-h")) == 2
        assert len(store.query(tracker="dapper-h", limit=1)) == 1
        assert store.query(tracker="graphene", nrh=999) == []
        # The generic (scan-based) implementation must agree.
        json_store = JsonDirStore(tmp_path / "cache")
        for index, tracker in enumerate(("dapper-h", "dapper-h", "graphene")):
            json_store.put(_record(key=f"k{index}", tracker=tracker))
        assert len(json_store.query(tracker="dapper-h")) == 2
        assert len(json_store.query(tracker="dapper-h", limit=1)) == 1

    def test_query_offset_pages_in_stable_key_order(self, tmp_path):
        for store in (
            SqliteStore(tmp_path / "wh.sqlite"),
            JsonDirStore(tmp_path / "cache"),
        ):
            for index in range(5):
                store.put(_record(key=f"k{index}"))
            keys = [record.key for record in store.query()]
            assert keys == sorted(keys)
            assert [r.key for r in store.query(offset=2)] == keys[2:]
            assert [r.key for r in store.query(offset=1, limit=2)] == keys[1:3]
            assert store.query(offset=99) == []
            # A negative offset clamps to the start rather than erroring.
            assert [r.key for r in store.query(offset=-3, limit=2)] == keys[:2]
            # Walking fixed-size pages covers every row exactly once.
            paged = []
            for offset in range(0, len(keys) + 1, 2):
                paged.extend(store.query(limit=2, offset=offset))
            assert [r.key for r in paged] == keys

    def test_query_offset_composes_with_filters(self, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        for index, tracker in enumerate(("dapper-h", "dapper-h", "graphene")):
            store.put(_record(key=f"k{index}", tracker=tracker))
        matches = store.query(tracker="dapper-h")
        assert store.query(tracker="dapper-h", offset=1) == matches[1:]
        rows = query_rows(store, tracker="dapper-h", offset=1, limit=1)
        assert [row["key"] for row in rows] == [matches[1].key]

    def test_query_rows_flatten(self, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        store.put(_record())
        rows = query_rows(store, tracker="dapper-h")
        assert rows[0]["tracker"] == "dapper-h"
        assert rows[0]["elapsed_seconds"] == 0.25
        assert rows[0]["code_version"] == CODE_VERSION

    def test_gc_purges_only_other_code_versions(self, tmp_path):
        from repro.store import gc_store

        store = SqliteStore(tmp_path / "wh.sqlite")
        store.put(_record(key="current"))
        store.put(_record(key="stale", code_version="older-version"))
        assert gc_store(store, dry_run=True) == 1
        assert len(store.keys()) == 2
        assert gc_store(store) == 1
        assert store.keys() == {"current"}


class TestMetricsPlane:
    """Schema-v3 metrics time-series: round trip, filters, cleanup."""

    ROWS = [
        ("llc.hit_rate", 100.0, 0.5),
        ("llc.hit_rate", 200.0, 0.625),
        ("mc.requests", 100.0, 10.0),
        ("mc.requests", 200.0, 24.0),
    ]

    def _stores(self, tmp_path):
        return (
            JsonDirStore(tmp_path / "cache"),
            SqliteStore(tmp_path / "wh.sqlite"),
        )

    def test_round_trip_both_backends(self, tmp_path):
        for store in self._stores(tmp_path):
            store.put_metrics("k1", self.ROWS)
            series = store.get_metrics("k1")
            assert series == {
                "llc.hit_rate": [(100.0, 0.5), (200.0, 0.625)],
                "mc.requests": [(100.0, 10.0), (200.0, 24.0)],
            }
            assert store.metrics_keys() == {"k1"}
            assert store.get_metrics("k1", metric="mc.requests") == {
                "mc.requests": [(100.0, 10.0), (200.0, 24.0)],
            }
            assert store.get_metrics("missing") == {}

    def test_put_replaces_previous_series(self, tmp_path):
        for store in self._stores(tmp_path):
            store.put_metrics("k1", self.ROWS)
            store.put_metrics("k1", [("dram.activations", 5.0, 1.0)])
            assert store.get_metrics("k1") == {
                "dram.activations": [(5.0, 1.0)],
            }

    def test_delete_cleans_metrics_up(self, tmp_path):
        for store in self._stores(tmp_path):
            store.put(_record())
            store.put_metrics("k1", self.ROWS)
            assert store.delete(["k1"]) == 1
            assert store.get_metrics("k1") == {}
            assert store.metrics_keys() == set()

    def test_metrics_never_raise_on_bad_rows(self, tmp_path):
        # Like put(), metric persistence degrades to a no-op on failure.
        for store in self._stores(tmp_path):
            store.put_metrics("k1", [("metric", "not-a-number", None)])
            assert store.get_metrics("k1") == {}

    def test_json_dir_sidecars_do_not_pollute_run_keys(self, tmp_path):
        store = JsonDirStore(tmp_path / "cache")
        store.put(_record())
        store.put_metrics("k1", self.ROWS)
        assert store.keys() == {"k1"}
        assert len(store) == 1


class TestSchemaV3Migration:
    def _v2_database(self, tmp_path):
        from repro.store.backend import create_schema_v2

        path = tmp_path / "wh.sqlite"
        connection = sqlite3.connect(path)
        create_schema_v2(connection)
        connection.execute(
            "INSERT INTO runs (key, code_version, scenario, result, "
            "tracker, workload, attack, nrh, seed, elapsed_seconds, "
            "created_at) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                "v2-key",
                CODE_VERSION,
                json.dumps({"tracker": "graphene", "workload": "429.mcf",
                            "attack": "refresh", "seed": 3, "nrh": 1000}),
                json.dumps({"payload": "v2"}),
                "graphene", "429.mcf", "refresh", 1000, 3, 1.5,
                "2026-01-01T00:00:00+00:00",
            ),
        )
        connection.commit()
        connection.close()
        return path

    def test_v2_database_migrates_and_keeps_data(self, tmp_path):
        store = SqliteStore(self._v2_database(tmp_path))
        assert store._schema_version() == SCHEMA_VERSION
        record = store.get("v2-key")
        assert record.result == {"payload": "v2"}
        assert record.elapsed_seconds == 1.5
        assert record.peak_memory_bytes is None  # v2 had no memory column

    def test_migrated_database_accepts_metrics_and_memory(self, tmp_path):
        store = SqliteStore(self._v2_database(tmp_path))
        store.put_metrics("v2-key", [("llc.hit_rate", 10.0, 0.5)])
        assert store.metrics_keys() == {"v2-key"}
        store.put(_record(key="new-key"))
        assert store.get("new-key").peak_memory_bytes is None

    def test_v1_chain_reaches_v3(self, tmp_path):
        # A v1 database runs both migrations back to back.
        path = tmp_path / "wh.sqlite"
        connection = sqlite3.connect(path)
        create_schema_v1(connection)
        connection.commit()
        connection.close()
        store = SqliteStore(path)
        assert store._schema_version() == SCHEMA_VERSION
        store.put_metrics("k", [("m", 1.0, 2.0)])
        assert store.get_metrics("k") == {"m": [(1.0, 2.0)]}


class TestPeakMemoryTracking:
    def test_opt_in_records_peak_memory(self, spec, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        SweepRunner(store=store, track_memory=True).run_one(spec)
        records = list(store.records())
        assert records
        assert all(
            record.peak_memory_bytes and record.peak_memory_bytes > 0
            for record in records
        )
        row = query_rows(store)[0]
        assert row["peak_memory_bytes"] > 0

    def test_default_leaves_peak_memory_unset(self, spec, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        SweepRunner(store=store).run_one(spec)
        assert all(
            record.peak_memory_bytes is None for record in store.records()
        )

    def test_results_identical_with_tracking(self, spec, tmp_path):
        plain = SweepRunner().run_one(spec)
        tracked = SweepRunner(
            store=SqliteStore(tmp_path / "wh.sqlite"), track_memory=True
        ).run_one(spec)
        assert json.dumps(tracked.result.to_dict(), sort_keys=True) == \
            json.dumps(plain.result.to_dict(), sort_keys=True)


class TestWorkerAccounting:
    def test_pooled_run_reports_utilization(self, sweep_config):
        specs = [
            ScenarioSpec(
                tracker=tracker,
                workload="453.povray",
                attack="refresh",
                requests_per_core=REQUESTS,
                config=sweep_config,
            )
            for tracker in ("graphene", "dapper-h")
        ]
        runner = SweepRunner(jobs=2)
        runner.run(specs)
        report = runner.worker_report()
        assert report is not None
        assert report["workers"] == 2
        assert report["total_busy_seconds"] > 0
        assert 0.0 < report["utilization"] <= 1.0
        assert report["busy_seconds_by_pid"]

    def test_serial_run_has_no_worker_report(self, spec):
        runner = SweepRunner()
        runner.run_one(spec)
        assert runner.worker_report() is None


class TestSchemaV4Migration:
    """v3 warehouses (runs + metrics, no leases) migrate in place to v4."""

    def _v3_database(self, tmp_path):
        from repro.store.backend import create_schema_v3

        path = tmp_path / "wh.sqlite"
        connection = sqlite3.connect(path)
        create_schema_v3(connection)
        connection.execute(
            "INSERT INTO runs (key, code_version, scenario, result, "
            "tracker, workload, attack, nrh, seed, elapsed_seconds, "
            "peak_memory_bytes, created_at) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                "v3-key",
                CODE_VERSION,
                json.dumps({"tracker": "graphene", "workload": "429.mcf",
                            "attack": "refresh", "seed": 3, "nrh": 1000}),
                json.dumps({"payload": "v3"}),
                "graphene", "429.mcf", "refresh", 1000, 3, 1.5, 4096,
                "2026-01-01T00:00:00+00:00",
            ),
        )
        connection.executemany(
            "INSERT INTO metrics (key, metric, t_ns, value) "
            "VALUES (?, ?, ?, ?)",
            [("v3-key", "llc.hit_rate", 10, 0.5),
             ("v3-key", "llc.hit_rate", 20, 0.625)],
        )
        connection.commit()
        connection.close()
        return path

    def test_v3_database_migrates_and_keeps_data(self, tmp_path):
        store = SqliteStore(self._v3_database(tmp_path))
        assert store._schema_version() == SCHEMA_VERSION
        record = store.get("v3-key")
        assert record.result == {"payload": "v3"}
        assert record.peak_memory_bytes == 4096
        # Metrics rows survive the migration untouched.
        assert store.get_metrics("v3-key") == {
            "llc.hit_rate": [(10.0, 0.5), (20.0, 0.625)]
        }

    def test_migrated_database_accepts_leases(self, tmp_path):
        store = SqliteStore(self._v3_database(tmp_path))
        assert store.init_leases("mig", [["a", "b"], ["c"]]) == 2
        lease = store.claim_lease("mig", "w0", now=0.0, duration=10.0)
        assert lease.shard == 0 and lease.keys == ("a", "b")
        assert store.complete_lease("mig", 0, "w0")
        summary = store.lease_summary("mig")
        assert summary["done"] == 1 and summary["pending"] == 1

    def test_v1_chain_reaches_v4(self, tmp_path):
        # A v1 database runs all three migrations back to back.
        path = tmp_path / "wh.sqlite"
        connection = sqlite3.connect(path)
        create_schema_v1(connection)
        connection.commit()
        connection.close()
        store = SqliteStore(path)
        assert store._schema_version() == SCHEMA_VERSION
        assert store.init_leases("chain", [["k"]]) == 1

    def test_fresh_database_is_v4(self, tmp_path):
        store = SqliteStore(tmp_path / "wh.sqlite")
        assert store._schema_version() == 4 == SCHEMA_VERSION


class TestLeaseClaimRace:
    """The BEGIN IMMEDIATE claim transaction: racing claimants under WAL
    yield exactly one winner per shard, never a split lease."""

    def _race(self, path, workers: int, barrier_timeout=10.0):
        barrier = threading.Barrier(workers, timeout=barrier_timeout)
        results: dict[str, object] = {}

        def _claim(worker: str) -> None:
            store = SqliteStore(path)       # one connection per worker
            barrier.wait()
            results[worker] = store.claim_lease(
                "race", worker, now=100.0, duration=30.0
            )
            store.close()

        threads = [
            threading.Thread(target=_claim, args=(f"w{index}",))
            for index in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return results

    def test_two_claimants_one_shard_exactly_one_winner(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        store = SqliteStore(path)
        store.init_leases("race", [["only"]])
        store.close()
        results = self._race(path, workers=2)
        winners = [lease for lease in results.values() if lease is not None]
        assert len(winners) == 1
        assert winners[0].shard == 0 and winners[0].attempts == 1

    def test_many_claimants_cover_shards_disjointly(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        store = SqliteStore(path)
        store.init_leases("race", [[f"s{index}"] for index in range(3)])
        store.close()
        results = self._race(path, workers=4)
        claimed = [lease.shard for lease in results.values() if lease is not None]
        # Three shards, four claimants: every shard claimed exactly once,
        # one claimant walks away empty-handed.
        assert sorted(claimed) == [0, 1, 2]
        store = SqliteStore(path)
        rows = store.lease_rows("race")
        assert all(row.state == "leased" and row.attempts == 1 for row in rows)

    def test_racing_init_leases_is_first_writer_wins(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        SqliteStore(path).close()
        barrier = threading.Barrier(2, timeout=10.0)
        counts: list[int] = []

        def _init(plan) -> None:
            store = SqliteStore(path)
            barrier.wait()
            counts.append(store.init_leases("race", plan))
            store.close()

        threads = [
            threading.Thread(target=_init, args=([["a"], ["b"]],)),
            threading.Thread(target=_init, args=([["a", "b"]],)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        store = SqliteStore(path)
        rows = store.lease_rows("race")
        # Both callers report the same winning plan, whichever one it was.
        assert counts[0] == counts[1] == len(rows)
        assert len(rows) in (1, 2)

    def test_racing_create_campaign_is_first_writer_wins(self, tmp_path):
        path = tmp_path / "wh.sqlite"
        SqliteStore(path).close()
        workers = 4
        barrier = threading.Barrier(workers, timeout=10.0)
        results: list[tuple[dict, bool]] = []
        lock = threading.Lock()

        def _create(index: int) -> None:
            store = SqliteStore(path)
            manifest = {"name": "race", "entries": [], "writer": index}
            barrier.wait()
            outcome = store.create_campaign("race", manifest)
            with lock:
                results.append(outcome)
            store.close()

        threads = [
            threading.Thread(target=_create, args=(index,))
            for index in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == workers
        # Exactly one writer won; every caller got the same stored manifest.
        assert sum(created for _manifest, created in results) == 1
        winners = {manifest["writer"] for manifest, _created in results}
        assert len(winners) == 1
        store = SqliteStore(path)
        assert store.campaign_names() == ("race",)
        assert store.load_campaign("race")["writer"] == winners.pop()
        store.close()

    def test_create_campaign_generic_backend(self, tmp_path):
        store = JsonDirStore(tmp_path / "cache")
        manifest, created = store.create_campaign("c", {"entries": []})
        assert created and manifest == {"entries": []}
        again, created = store.create_campaign("c", {"entries": ["other"]})
        assert not created and again == {"entries": []}
