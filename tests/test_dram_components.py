"""Tests for the smaller DRAM substrates: bank state, refresh, energy."""

import pytest

from repro.config import DRAMTimings
from repro.dram.bank import Bank, BankState
from repro.dram.commands import CommandKind
from repro.dram.energy import EnergyModel, EnergyParameters
from repro.dram.refresh import RefreshScheduler


class TestBank:
    def test_initial_state_is_idle(self):
        bank = Bank()
        assert bank.state is BankState.IDLE
        assert bank.earliest_start(5.0) == 5.0

    def test_open_row_makes_bank_active(self):
        bank = Bank()
        bank.open_row = 7
        assert bank.state is BankState.ACTIVE
        bank.precharge()
        assert bank.state is BankState.IDLE

    def test_block_until_extends_availability(self):
        bank = Bank()
        bank.block_until(100.0)
        assert bank.earliest_start(0.0) == 100.0
        bank.block_until(50.0)       # shorter blackout does not shrink it
        assert bank.blocked_until_ns == 100.0


class TestRefreshScheduler:
    def test_start_inside_blackout_is_pushed_out(self):
        sched = RefreshScheduler(DRAMTimings())
        assert sched.adjust_for_refresh(10.0, 0) == pytest.approx(295.0)

    def test_start_outside_blackout_unchanged(self):
        sched = RefreshScheduler(DRAMTimings())
        assert sched.adjust_for_refresh(1000.0, 0) == 1000.0

    def test_second_refresh_interval(self):
        sched = RefreshScheduler(DRAMTimings())
        inside_second = 3900.0 + 10.0
        assert sched.adjust_for_refresh(inside_second, 0) == pytest.approx(3900.0 + 295.0)

    def test_window_index(self):
        sched = RefreshScheduler(DRAMTimings())
        assert sched.refresh_window_index(1.0) == 0
        assert sched.refresh_window_index(32_000_001.0) == 1

    def test_refresh_overhead_fraction(self):
        sched = RefreshScheduler(DRAMTimings())
        assert sched.refresh_overhead_fraction() == pytest.approx(295.0 / 3900.0)

    def test_refreshes_elapsed(self):
        sched = RefreshScheduler(DRAMTimings())
        assert sched.refreshes_elapsed(3900.0 * 10 + 1) == 10


class TestEnergyModel:
    def test_record_and_report(self):
        model = EnergyModel(num_ranks=4)
        model.record(CommandKind.ACT, 100)
        model.record(CommandKind.RD, 100)
        report = model.report(elapsed_ns=1_000.0)
        params = EnergyParameters()
        expected_dynamic = 100 * params.act_pre_nj + 100 * params.rd_nj
        assert report.dynamic_nj == pytest.approx(expected_dynamic)
        assert report.background_nj > 0

    def test_overhead_vs_baseline(self):
        base_model = EnergyModel(num_ranks=4)
        base_model.record(CommandKind.ACT, 100)
        base = base_model.report(1000.0)

        heavy_model = EnergyModel(num_ranks=4)
        heavy_model.record(CommandKind.ACT, 100)
        heavy_model.record(CommandKind.VRR, 500)
        heavy = heavy_model.report(1000.0)

        assert heavy.overhead_vs(base) > 0
        assert base.overhead_vs(base) == pytest.approx(0.0)

    def test_background_scales_with_time_and_ranks(self):
        small = EnergyModel(num_ranks=1).report(1000.0)
        large = EnergyModel(num_ranks=4).report(1000.0)
        assert large.background_nj == pytest.approx(4 * small.background_nj)

    def test_all_commands_have_energies(self):
        params = EnergyParameters()
        for kind in CommandKind:
            assert params.command_energy_nj(kind) >= 0.0
