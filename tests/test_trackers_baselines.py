"""Unit tests for the baseline RowHammer trackers."""

import pytest

from repro.config import baseline_config
from repro.dram.address import BankAddress, RowAddress
from repro.dram.commands import MitigationScope
from repro.trackers.abacus import AbacusTracker, misra_gries_entries
from repro.trackers.blockhammer import BlockHammerTracker
from repro.trackers.comet import CoMeTTracker
from repro.trackers.hydra import HydraTracker
from repro.trackers.none import NoMitigation
from repro.trackers.para import ParaTracker
from repro.trackers.prac import PracTracker
from repro.trackers.pride import PrideTracker
from repro.trackers.start import StartTracker


def _row(row=1000, bank=0, bank_group=0, rank=0, channel=0):
    return RowAddress(BankAddress(channel, rank, bank_group, bank), row)


@pytest.fixture
def config():
    return baseline_config(nrh=500)


class TestNoMitigation:
    def test_never_mitigates(self, config):
        tracker = NoMitigation(config)
        for _ in range(10_000):
            assert tracker.on_activation(_row(), 0.0).is_empty
        assert tracker.storage_report().sram_bytes == 0


class TestHydra:
    def test_group_counting_has_no_dram_traffic(self, config):
        tracker = HydraTracker(config)
        response = tracker.on_activation(_row(), 0.0)
        assert response.is_empty

    def test_transition_to_per_row_tracking(self, config):
        tracker = HydraTracker(config)
        # Drive the group counter past 80% of the mitigation threshold.
        for i in range(tracker.group_threshold):
            tracker.on_activation(_row(row=i % HydraTracker.GROUP_SIZE), 0.0)
        response = tracker.on_activation(_row(row=0), 0.0)
        # Now in per-row mode: the first access misses the RCC and fetches.
        assert response.counter_reads == 1

    def test_rcc_hit_avoids_dram_traffic(self, config):
        tracker = HydraTracker(config)
        for i in range(tracker.group_threshold + 1):
            tracker.on_activation(_row(row=0), 0.0)
        response = tracker.on_activation(_row(row=0), 0.0)
        assert response.counter_reads == 0

    def test_mitigation_at_threshold(self, config):
        tracker = HydraTracker(config)
        mitigated = False
        for _ in range(config.rowhammer.mitigation_threshold + 10):
            response = tracker.on_activation(_row(row=7), 0.0)
            if response.mitigations:
                mitigated = True
                assert response.mitigations[0].row == 7
                break
        assert mitigated

    def test_set_conflicts_cause_eviction_writebacks(self, config):
        tracker = HydraTracker(config)
        rows = [5 + i * 128 for i in range(64)]      # same RCC set, > 32 ways
        # Enter per-row mode for each row's group first.
        for row in rows:
            for _ in range(tracker.group_threshold + 1):
                tracker.on_activation(_row(row=row), 0.0)
        writes = 0
        for _ in range(3):
            for row in rows:
                response = tracker.on_activation(_row(row=row), 0.0)
                writes += response.counter_writes
        assert writes > 0

    def test_refresh_window_reset(self, config):
        tracker = HydraTracker(config)
        for _ in range(tracker.group_threshold + 1):
            tracker.on_activation(_row(row=0), 0.0)
        tracker.on_refresh_window(1, 0.0)
        assert tracker.on_activation(_row(row=0), 0.0).is_empty

    def test_storage_in_paper_ballpark(self, config):
        report = HydraTracker(config).storage_report()
        assert 30 <= report.sram_kb <= 90


class TestStart:
    def test_reserves_half_of_llc(self, config):
        from repro.cache.llc import SharedLLC

        tracker = StartTracker(config)
        llc = SharedLLC(config.llc)
        tracker.configure_llc(llc)
        assert llc.reserved_ways == config.llc.ways // 2

    def test_counter_cache_miss_costs_dram_traffic(self, config):
        tracker = StartTracker(config)
        first = tracker.on_activation(_row(row=0), 0.0)
        assert first.counter_reads == 1
        again = tracker.on_activation(_row(row=0), 0.0)
        assert again.counter_reads == 0

    def test_counters_in_same_line_share_fetch(self, config):
        tracker = StartTracker(config)
        tracker.on_activation(_row(row=0), 0.0)
        neighbour = tracker.on_activation(_row(row=1), 0.0)
        assert neighbour.counter_reads == 0

    def test_mitigation_at_threshold(self, config):
        tracker = StartTracker(config)
        responses = [
            tracker.on_activation(_row(row=3), 0.0)
            for _ in range(config.rowhammer.mitigation_threshold)
        ]
        assert any(response.mitigations for response in responses)

    def test_streaming_evicts_counter_lines(self):
        import dataclasses

        from repro.config import CacheConfig

        # Shrink the LLC so the reserved counter region holds only 2K lines;
        # streaming over more distinct counter lines than that must evict the
        # victim row's counter line and force a re-fetch.
        small_llc = dataclasses.replace(
            baseline_config(nrh=500), llc=CacheConfig(size_bytes=256 * 1024)
        )
        tracker = StartTracker(small_llc)
        tracker.on_activation(_row(row=0), 0.0)
        capacity_lines = tracker._counter_cache.num_entries
        rows_per_bank = small_llc.dram.rows_per_bank
        lines_per_bank = rows_per_bank // StartTracker.COUNTERS_PER_LINE
        for i in range(capacity_lines + 64):
            bank_local = (i // lines_per_bank) % 32
            row = (i % lines_per_bank) * StartTracker.COUNTERS_PER_LINE
            tracker.on_activation(
                _row(row=row, bank=bank_local % 4, bank_group=bank_local // 4), 0.0
            )
        revisit = tracker.on_activation(_row(row=0), 0.0)
        assert revisit.counter_reads == 1


class TestCoMeT:
    def test_benign_row_needs_threshold_activations(self, config):
        tracker = CoMeTTracker(config)
        responses = [
            tracker.on_activation(_row(row=11), 0.0) for _ in range(tracker.ct_threshold)
        ]
        assert any(r.mitigations for r in responses)
        assert not any(r.blackouts for r in responses)

    def test_rat_suppresses_repeated_mitigations(self, config):
        tracker = CoMeTTracker(config)
        for _ in range(tracker.ct_threshold):
            tracker.on_activation(_row(row=11), 0.0)
        # The sketch is saturated for this row, but the RAT now tracks it
        # precisely, so the very next activation must not mitigate again.
        response = tracker.on_activation(_row(row=11), 0.0)
        assert not response.mitigations

    def test_rat_thrashing_triggers_early_reset(self, config):
        tracker = CoMeTTracker(config)
        rows = list(range(400))                       # far more than 128 RAT entries
        blackouts = []
        for _ in range(tracker.ct_threshold + 2):
            for row in rows:
                response = tracker.on_activation(_row(row=row), 1000.0)
                blackouts.extend(response.blackouts)
            if blackouts:
                break
        assert blackouts
        assert blackouts[0].scope is MitigationScope.RANK
        assert tracker.stats.structure_resets >= 1

    def test_periodic_reset_clears_sketch(self, config):
        tracker = CoMeTTracker(config)
        for _ in range(tracker.ct_threshold - 1):
            tracker.on_activation(_row(row=5), 0.0)
        late = config.timings.trefw_ns / 3 + 1.0
        response = tracker.on_activation(_row(row=5), late)
        assert not response.mitigations
        assert tracker.stats.periodic_resets >= 1


class TestAbacus:
    def test_entry_counts_match_paper(self):
        assert misra_gries_entries(500) == 2466
        assert misra_gries_entries(1000) == 1233
        assert misra_gries_entries(125) == 9783

    def test_entry_count_scales_with_refresh_window(self):
        scaled = misra_gries_entries(500, trefw_ns=2_000_000.0)
        assert scaled < 2466

    def test_sibling_activations_do_not_overcount(self, config):
        tracker = AbacusTracker(config)
        for bank in range(4):
            response = tracker.on_activation(_row(row=9, bank=bank), 0.0)
            assert response.is_empty

    def test_hammering_one_row_triggers_mitigation(self, config):
        tracker = AbacusTracker(config)
        responses = [
            tracker.on_activation(_row(row=9), 0.0)
            for _ in range(config.rowhammer.mitigation_threshold + 2)
        ]
        assert any(r.mitigations for r in responses)

    def test_spillover_overflow_resets_channel(self):
        config = baseline_config(nrh=500).with_refresh_window_scale(1 / 64)
        tracker = AbacusTracker(config)
        blackout_seen = False
        row_id = 0
        for _ in range(tracker.entries * (config.rowhammer.mitigation_threshold + 20)):
            response = tracker.on_activation(
                _row(row=row_id % config.dram.rows_per_bank, bank=row_id % 4), 0.0
            )
            row_id += 1
            if response.blackouts:
                assert response.blackouts[0].scope is MitigationScope.CHANNEL
                blackout_seen = True
                break
        assert blackout_seen


class TestBlockHammer:
    def test_benign_rows_not_throttled(self, config):
        tracker = BlockHammerTracker(config)
        assert tracker.throttle_delay_ns(_row(row=1), 0.0) == 0.0

    def test_hot_row_gets_throttled(self, config):
        tracker = BlockHammerTracker(config)
        row = _row(row=77)
        for _ in range(tracker.blacklist_threshold + 1):
            tracker.on_activation(row, 0.0)
        first = tracker.throttle_delay_ns(row, 0.0)
        second = tracker.throttle_delay_ns(row, 0.0)
        assert first >= 0.0
        assert second > 0.0
        assert tracker.stats.throttled_requests >= 1

    def test_throttle_enforces_minimum_spacing(self, config):
        tracker = BlockHammerTracker(config)
        row = _row(row=77)
        for _ in range(tracker.blacklist_threshold + 1):
            tracker.on_activation(row, 0.0)
        tracker.throttle_delay_ns(row, 0.0)
        delay = tracker.throttle_delay_ns(row, 0.0)
        assert delay >= tracker.throttle_interval_ns * 0.5

    def test_never_issues_refreshes(self, config):
        tracker = BlockHammerTracker(config)
        for i in range(1000):
            assert not tracker.on_activation(_row(row=i % 50), 0.0).mitigations

    def test_epoch_rotation_clears_blacklist(self, config):
        tracker = BlockHammerTracker(config)
        row = _row(row=77)
        for _ in range(tracker.blacklist_threshold + 1):
            tracker.on_activation(row, 0.0)
        later = config.timings.trefw_ns   # past the half-window epoch
        assert tracker.throttle_delay_ns(row, later) == 0.0


class TestProbabilisticAndPrac:
    def test_para_mitigation_rate_tracks_probability(self, config):
        tracker = ParaTracker(config)
        total = 20_000
        mitigations = sum(
            bool(tracker.on_activation(_row(row=i % 100), 0.0).mitigations)
            for i in range(total)
        )
        expected = tracker.probability * total
        assert 0.5 * expected < mitigations < 1.5 * expected

    def test_para_probability_scales_inversely_with_nrh(self):
        low = ParaTracker(baseline_config(nrh=125)).probability
        high = ParaTracker(baseline_config(nrh=4000)).probability
        assert low > high

    def test_pride_paces_mitigations_per_bank(self, config):
        tracker = PrideTracker(config)
        mitigations = 0
        for i in range(tracker.activations_per_mitigation * 4):
            if tracker.on_activation(_row(row=i % 64), 0.0).mitigations:
                mitigations += 1
        assert mitigations == 4

    def test_prac_extends_every_activation(self, config):
        tracker = PracTracker(config)
        assert tracker.activation_extension_ns() > 0.0

    def test_prac_mitigates_at_threshold_exactly_once(self, config):
        tracker = PracTracker(config)
        mitigations = 0
        for _ in range(config.rowhammer.mitigation_threshold):
            if tracker.on_activation(_row(row=4), 0.0).mitigations:
                mitigations += 1
        assert mitigations == 1

    def test_storage_reports_exist_for_all(self, config):
        for cls in (ParaTracker, PrideTracker, PracTracker, BlockHammerTracker):
            report = cls(config).storage_report()
            assert report.sram_bytes >= 0
