"""Pinned multi-tREFW horizon behaviour, under the scalar and event engines.

A run sized by the ``multi-refresh-window`` family must actually cross the
requested number of refresh windows, and crossing a window must do the two
things the paper's long-horizon experiments depend on: the controller books
the window (and the energy model the elapsed auto-refresh REF commands), and
the tracker runs its periodic epoch reset.  Both engines must agree on all
of it bit-for-bit -- the event engine's zero-cost idle time is only useful
if a multi-window horizon means the same thing there.
"""

import json

import pytest

from repro.scenarios import family_by_name
from repro.sim.experiment import run_workload

WINDOWS = 2


def _spec(tracker="graphene", windows=WINDOWS):
    return family_by_name("multi-refresh-window").expand(
        {
            "tracker": tracker,
            "workload": "453.povray",
            "windows": windows,
            "trefw_scale": 1.0 / 256.0,
            "geometry": "reduced",
            "nrh": 500,
        }
    )[0]


def _run(spec, engine):
    return run_workload(
        config=spec.config,
        tracker=spec.tracker,
        workload=spec.workload,
        attack=spec.attack,
        requests_per_core=spec.requests_per_core,
        seed=spec.seed,
        attack_warmup_activations=spec.attack_warmup_activations,
        llc_warmup_accesses=spec.llc_warmup_accesses,
        core_plan=spec.core_plan,
        engine=engine,
    )


def _canon(result) -> dict:
    return json.loads(json.dumps(result.to_dict(), sort_keys=True, default=str))


class TestRefreshHorizon:
    @pytest.mark.parametrize("engine", ["scalar", "event"])
    def test_run_spans_requested_windows(self, engine):
        spec = _spec()
        result = _run(spec, engine)
        timings = spec.config.timings
        # The family sizes the budget so the issue stream alone spans the
        # horizon; the run must therefore cross at least WINDOWS boundaries.
        assert result.elapsed_ns >= WINDOWS * timings.trefw_ns
        assert result.controller_stats.refresh_windows >= WINDOWS

    @pytest.mark.parametrize("engine", ["scalar", "event"])
    def test_refresh_commands_match_elapsed_time(self, engine):
        spec = _spec()
        result = _run(spec, engine)
        timings = spec.config.timings
        org = spec.config.dram
        num_ranks = org.channels * org.ranks_per_channel
        # One REF per rank per elapsed tREFI: the energy model books exactly
        # the auto-refresh commands the horizon implies.
        expected = int(result.elapsed_ns // timings.trefi_ns) * num_ranks
        assert result.energy.command_counts["REF"] == expected
        assert expected >= WINDOWS * int(
            timings.trefw_ns // timings.trefi_ns
        ) * num_ranks

    @pytest.mark.parametrize("engine", ["scalar", "event"])
    def test_tracker_epoch_resets_once_per_window(self, engine):
        spec = _spec()
        result = _run(spec, engine)
        # Graphene resets its counter table on every on_refresh_window call,
        # and the controller makes exactly one call per crossed window.
        assert (
            result.tracker_stats.periodic_resets
            == result.controller_stats.refresh_windows
        )

    def test_engines_agree_bit_for_bit_on_the_horizon(self):
        spec = _spec()
        assert _canon(_run(spec, "event")) == _canon(_run(spec, "scalar"))

    def test_deeper_horizon_crosses_more_windows(self):
        two = _run(_spec(windows=2), "event")
        three = _run(_spec(windows=3), "event")
        assert (
            three.controller_stats.refresh_windows
            > two.controller_stats.refresh_windows
        )
        assert three.controller_stats.refresh_windows >= 3
