"""Tests for the low-latency block cipher and PRNGs."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.llbc import LowLatencyBlockCipher
from repro.crypto.prng import SplitMix64, XorShift64


class TestLLBC:
    def test_encrypt_decrypt_roundtrip(self):
        cipher = LowLatencyBlockCipher(block_bits=21, seed=7)
        for value in (0, 1, 12345, (1 << 21) - 1):
            assert cipher.decrypt(cipher.encrypt(value)) == value

    def test_is_a_permutation_on_small_domain(self):
        cipher = LowLatencyBlockCipher(block_bits=10, seed=3)
        images = {cipher.encrypt(value) for value in range(1 << 10)}
        assert len(images) == 1 << 10
        assert min(images) == 0 and max(images) == (1 << 10) - 1

    def test_rekey_changes_mapping(self):
        cipher = LowLatencyBlockCipher(block_bits=16, seed=11)
        before = [cipher.encrypt(v) for v in range(64)]
        cipher.rekey()
        after = [cipher.encrypt(v) for v in range(64)]
        assert before != after
        assert cipher.key_epoch == 2

    def test_rekey_preserves_bijectivity(self):
        cipher = LowLatencyBlockCipher(block_bits=9, seed=5)
        cipher.rekey()
        images = {cipher.encrypt(value) for value in range(1 << 9)}
        assert len(images) == 1 << 9

    def test_same_seed_same_mapping(self):
        a = LowLatencyBlockCipher(block_bits=12, seed=42)
        b = LowLatencyBlockCipher(block_bits=12, seed=42)
        assert [a.encrypt(v) for v in range(100)] == [b.encrypt(v) for v in range(100)]

    def test_different_seeds_differ(self):
        a = LowLatencyBlockCipher(block_bits=12, seed=42)
        b = LowLatencyBlockCipher(block_bits=12, seed=43)
        assert [a.encrypt(v) for v in range(100)] != [b.encrypt(v) for v in range(100)]

    def test_out_of_range_rejected(self):
        cipher = LowLatencyBlockCipher(block_bits=8, seed=1)
        with pytest.raises(ValueError):
            cipher.encrypt(256)
        with pytest.raises(ValueError):
            cipher.decrypt(-1)

    def test_odd_width_supported(self):
        cipher = LowLatencyBlockCipher(block_bits=17, seed=9)
        for value in (0, 1, 2 ** 17 - 1, 99_999):
            assert cipher.decrypt(cipher.encrypt(value)) == value

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LowLatencyBlockCipher(block_bits=1, seed=0)
        with pytest.raises(ValueError):
            LowLatencyBlockCipher(block_bits=8, seed=0, rounds=1)

    def test_mixing_moves_values(self):
        cipher = LowLatencyBlockCipher(block_bits=21, seed=99)
        unchanged = sum(1 for v in range(1000) if cipher.encrypt(v) == v)
        assert unchanged < 10

    @settings(max_examples=200, deadline=None)
    @given(value=st.integers(0, (1 << 21) - 1), seed=st.integers(0, 2 ** 32))
    def test_roundtrip_property(self, value, seed):
        cipher = LowLatencyBlockCipher(block_bits=21, seed=seed)
        assert cipher.decrypt(cipher.encrypt(value)) == value


class TestPRNG:
    def test_splitmix_deterministic(self):
        assert SplitMix64(1).next() == SplitMix64(1).next()
        assert SplitMix64(1).next() != SplitMix64(2).next()

    def test_splitmix_derive_labels(self):
        base = SplitMix64(123)
        assert base.derive(0) != base.derive(1)

    def test_xorshift_range(self):
        rng = XorShift64(5)
        for _ in range(1000):
            value = rng.next_float()
            assert 0.0 <= value < 1.0

    def test_xorshift_below(self):
        rng = XorShift64(5)
        values = {rng.next_below(10) for _ in range(500)}
        assert values <= set(range(10))
        assert len(values) == 10

    def test_xorshift_bits(self):
        rng = XorShift64(5)
        value = rng.next_bits(80)
        assert 0 <= value < (1 << 80)

    def test_xorshift_zero_seed_is_valid(self):
        rng = XorShift64(0)
        assert rng.next_u64() != 0

    def test_invalid_arguments(self):
        rng = XorShift64(1)
        with pytest.raises(ValueError):
            rng.next_below(0)
        with pytest.raises(ValueError):
            rng.next_bits(0)

    def test_uniformity_rough(self):
        rng = XorShift64(77)
        buckets = [0] * 8
        for _ in range(8000):
            buckets[rng.next_below(8)] += 1
        assert min(buckets) > 800
